"""Micro-benchmark: serial vs batched vs parallel design evaluation.

Measures designs/second through the three evaluation paths every optimizer
now shares:

* ``serial``  — one ``evaluate_sizing`` call per design (the pre-batch-API
  behaviour),
* ``batched`` — one ``evaluate_sizings`` call through a ``LocalEvaluator``,
* ``parallel`` — one batch through a ``ParallelEvaluator`` process pool.

Raise ``REPRO_BENCH_EVAL_DESIGNS`` / ``REPRO_BENCH_EVAL_WORKERS`` to stress
larger batches.  The parallel-speedup assertion only applies on machines
with 2+ cores (process pools cannot beat serial execution on one core).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.env import SizingEnvironment, default_fom_config
from repro.eval import LocalEvaluator, ParallelEvaluator

from bench_report import record_backend
from conftest import _bench_int, run_once

#: Timing-sensitive: runs in the dedicated CI throughput job (by filename),
#: not in every tier-1 matrix cell, so a loaded runner cannot flake tier-1.
pytestmark = pytest.mark.slow

NUM_DESIGNS = _bench_int("REPRO_BENCH_EVAL_DESIGNS", 64)
NUM_WORKERS = _bench_int("REPRO_BENCH_EVAL_WORKERS", min(4, os.cpu_count() or 1))


@pytest.fixture(scope="module")
def circuit():
    return get_circuit("two_tia")


@pytest.fixture(scope="module")
def batch(circuit):
    """A fixed batch of random refined sizings shared by every mode."""
    rng = np.random.default_rng(7)
    return [circuit.random_sizing(rng) for _ in range(NUM_DESIGNS)]


def _fresh_env(circuit, evaluator=None):
    return SizingEnvironment(circuit, default_fom_config(circuit), evaluator=evaluator)


def _designs_per_second(fn, count):
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    return count / max(elapsed, 1e-9)


def test_serial_scalar_throughput(benchmark, circuit, batch):
    env = _fresh_env(circuit)

    def serial():
        for sizing in batch:
            env.evaluate_sizing(sizing)
        return len(env.history)

    assert run_once(benchmark, serial) == NUM_DESIGNS


def test_batched_local_throughput(benchmark, circuit, batch):
    env = _fresh_env(circuit)
    assert len(run_once(benchmark, env.evaluate_sizings, batch)) == NUM_DESIGNS


def test_batched_parallel_throughput(benchmark, circuit, batch):
    with ParallelEvaluator(circuit, max_workers=NUM_WORKERS) as pool:
        env = _fresh_env(circuit, evaluator=pool)
        # Pay pool start-up before timing, as a long optimization run would.
        pool.evaluate_batch(batch[:NUM_WORKERS])
        env.reset_history()
        assert len(run_once(benchmark, env.evaluate_sizings, batch)) == NUM_DESIGNS


def test_parallel_speedup_summary(circuit, batch, capsys):
    """Designs/sec summary; asserts a real speedup on 2+ core machines."""
    serial_env = _fresh_env(circuit)
    serial_rate = _designs_per_second(
        lambda: [serial_env.evaluate_sizing(s) for s in batch], len(batch)
    )
    batched_env = _fresh_env(circuit)
    batched_rate = _designs_per_second(
        lambda: batched_env.evaluate_sizings(batch), len(batch)
    )
    with ParallelEvaluator(circuit, max_workers=NUM_WORKERS) as pool:
        pool.evaluate_batch(batch[:NUM_WORKERS])  # warm the pool up
        parallel_env = _fresh_env(circuit, evaluator=pool)
        parallel_rate = _designs_per_second(
            lambda: parallel_env.evaluate_sizings(batch), len(batch)
        )
        pool_degraded = pool.degraded
    record_backend("serial_scalar", serial_rate, 1)
    record_backend("batched_local", batched_rate, len(batch))
    record_backend(
        "parallel",
        parallel_rate,
        len(batch),
        extra={"workers": NUM_WORKERS, "degraded": pool_degraded},
    )
    with capsys.disabled():
        print(
            f"\n[evaluator-throughput] designs={len(batch)} "
            f"workers={NUM_WORKERS} serial={serial_rate:.1f}/s "
            f"batched={batched_rate:.1f}/s parallel={parallel_rate:.1f}/s "
            f"speedup={parallel_rate / serial_rate:.2f}x"
        )
    rewards_serial = [h.reward for h in serial_env.history]
    rewards_parallel = [h.reward for h in parallel_env.history]
    assert rewards_parallel == rewards_serial
    if pool_degraded:
        pytest.skip("process pool unavailable in this environment (serial fallback)")
    if (os.cpu_count() or 1) >= 2 and NUM_WORKERS >= 2:
        # >1 designs/sec of headroom over serial, per the acceptance bar.
        assert parallel_rate > serial_rate + 1.0
