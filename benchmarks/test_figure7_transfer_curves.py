"""Benchmark F7 — Figure 7: technology-transfer learning curves on Three-TIA.

The paper shows, for each target node (250/130/65/45nm), the max-FoM curve of
the transferred agent rising faster after the shared warm-up phase and
converging above the non-transferred agent.  This benchmark regenerates the
transfer / no-transfer curve pair per node and checks the curve invariants.
"""

import numpy as np
import pytest

from conftest import run_once

#: Paper-artifact benchmark: excluded from the fast tier-1 CI matrix.
pytestmark = pytest.mark.slow


from repro.experiments import figure7_technology_transfer_curves


def test_figure7_transfer_curves(benchmark, bench_settings):
    figures = run_once(
        benchmark, figure7_technology_transfer_curves, bench_settings
    )
    print()
    for node, figure in figures.items():
        print(figure.render_ascii())
        print()
    assert set(figures) == set(bench_settings.transfer_targets)
    for figure in figures.values():
        assert set(figure.series) == {"Transfer", "No transfer"}
        for curve in figure.series.values():
            assert len(curve) == bench_settings.transfer_steps
            assert np.all(np.diff(curve) >= -1e-12)
