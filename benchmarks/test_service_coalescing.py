"""Micro-benchmark: cross-client batch coalescing in the optimization service.

Fans N concurrent clients out against an in-process :class:`ServerThread`
and measures how many simulator batches their evaluate traffic collapses
into.  The acceptance bar is a mean coalescing factor >= 2 designs per
issued batch (strictly fewer batches than requests); the result is recorded
as the ``service`` backend in ``BENCH_evaluator.json`` and the hard gate is
enforced by ``check_bench_gate.py --min-coalescing`` in CI.

Raise ``REPRO_BENCH_SERVICE_CLIENTS`` / ``REPRO_BENCH_SERVICE_DESIGNS`` to
stress more concurrency.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.service import ServerThread, ServiceClient, ServiceConfig

from bench_report import record_backend
from conftest import _bench_int

#: Timing-sensitive: runs in the dedicated CI throughput job (by filename),
#: not in every tier-1 matrix cell, so a loaded runner cannot flake tier-1.
pytestmark = pytest.mark.slow

NUM_CLIENTS = _bench_int("REPRO_BENCH_SERVICE_CLIENTS", 8)
DESIGNS_PER_CLIENT = _bench_int("REPRO_BENCH_SERVICE_DESIGNS", 4)
#: In-test sanity bar (the CI gate enforces the real >= 2x acceptance margin).
MIN_FACTOR_IN_TEST = 1.5


def test_service_coalescing_factor(capsys):
    circuit = get_circuit("two_tia")
    rng = np.random.default_rng(17)
    chunks = [
        [circuit.random_sizing(rng) for _ in range(DESIGNS_PER_CLIENT)]
        for _ in range(NUM_CLIENTS)
    ]
    total_designs = NUM_CLIENTS * DESIGNS_PER_CLIENT

    # A generous linger window: the benchmark measures the funnel's best
    # case (all clients arrive inside one window), which is also the regime
    # a saturated server converges to.
    with ServerThread(ServiceConfig(port=0, linger_ms=200.0)) as server:
        barrier = threading.Barrier(NUM_CLIENTS)
        errors = []

        def worker(index: int):
            try:
                with ServiceClient(port=server.port) as client:
                    barrier.wait(timeout=60)
                    client.evaluate("two_tia", chunks[index])
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(NUM_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        elapsed = time.perf_counter() - start
        assert not errors, errors

        with ServiceClient(port=server.port) as client:
            stats = client.stats()["coalescer"]

    factor = stats["coalescing_factor"]
    rate = total_designs / max(elapsed, 1e-9)
    record_backend(
        "service",
        rate,
        total_designs,
        extra={
            "coalescing_factor": factor,
            "clients": NUM_CLIENTS,
            "requests": stats["requests"],
            "batches_issued": stats["batches_issued"],
        },
    )
    with capsys.disabled():
        print(
            f"\n[service-coalescing] clients={NUM_CLIENTS} "
            f"designs={total_designs} batches={stats['batches_issued']} "
            f"factor={factor:.2f}x rate={rate:.1f}/s"
        )
    assert stats["batches_issued"] < stats["requests"]
    assert factor > MIN_FACTOR_IN_TEST
