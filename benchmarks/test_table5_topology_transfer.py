"""Benchmark E5 — Table V: topology transfer between Two-TIA and Three-TIA.

Paper reference (fine-tune budget 300 steps):

    arm               Two-TIA -> Three-TIA   Three-TIA -> Two-TIA
    No Transfer       0.63 +- 0.07           2.37 +- 0.01
    NG-RL Transfer    0.62 +- 0.09           2.40 +- 0.07
    GCN-RL Transfer   0.78 +- 0.12           2.45 +- 0.02

The reproduced claim: GCN-RL transfer is at least as good as NG-RL transfer
(the GCN is what extracts topology-independent knowledge), and transferring
never does much worse than training from scratch.
"""

import pytest

from conftest import run_once

#: Paper-artifact benchmark: excluded from the fast tier-1 CI matrix.
pytestmark = pytest.mark.slow


from repro.experiments import table5_topology_transfer


def test_table5_topology_transfer(benchmark, bench_settings):
    table = run_once(benchmark, table5_topology_transfer, bench_settings)
    print()
    print(table.render())
    assert table.row_labels == ["No Transfer", "NG-RL Transfer", "GCN-RL Transfer"]
    assert len(table.column_labels) == 2
    for row in table.row_labels:
        for column in table.column_labels:
            assert table.get(row, column) != ""
