"""Benchmark F8 — Figure 8: topology-transfer learning curves.

The paper shows that after the warm-up phase the GCN-RL transferred agent's
max-FoM curve rises above both the NG-RL transferred agent and the
from-scratch agent, in both transfer directions (Two-TIA <-> Three-TIA).
This benchmark regenerates the three-curve panel for each direction.
"""

import numpy as np
import pytest

from conftest import run_once

#: Paper-artifact benchmark: excluded from the fast tier-1 CI matrix.
pytestmark = pytest.mark.slow


from repro.experiments import figure8_topology_transfer_curves


def test_figure8_topology_transfer_curves(benchmark, bench_settings):
    figures = run_once(benchmark, figure8_topology_transfer_curves, bench_settings)
    print()
    for direction, figure in figures.items():
        print(figure.render_ascii())
        print()
    assert set(figures) == {"two_tia_to_three_tia", "three_tia_to_two_tia"}
    for figure in figures.values():
        assert set(figure.series) == {
            "GCN-RL transfer",
            "NG-RL transfer",
            "No transfer",
        }
        for curve in figure.series.values():
            assert len(curve) == bench_settings.transfer_steps
            assert np.all(np.diff(curve) >= -1e-12)
