"""Benchmark E3 — Table III: Two-Volt amplifier metric breakdown.

Paper reference (180nm): GCN-RL achieves the best common-mode and
differential phase margins and the second-highest gain and GBW while keeping
power moderate.  The benchmark regenerates the per-method metric breakdown
(bandwidth, CPM, DPM, power, noise, gain, GBW) plus the aggregate FoM.
"""

import pytest

from conftest import run_once

#: Paper-artifact benchmark: excluded from the fast tier-1 CI matrix.
pytestmark = pytest.mark.slow


from repro.experiments import table3_two_volt


def test_table3_two_volt_metrics(benchmark, bench_settings):
    table = run_once(benchmark, table3_two_volt, bench_settings)
    print()
    print(table.render())
    assert len(table.row_labels) == len(bench_settings.methods)
    dpm_column = next(c for c in table.column_labels if c.startswith("dpm"))
    for row in table.row_labels:
        assert table.get(row, dpm_column) != ""
        assert table.get(row, "FoM") != ""
