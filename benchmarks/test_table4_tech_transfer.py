"""Benchmark E4 — Table IV: technology-node transfer (180nm -> 250/130/65/45nm).

Paper reference (300-step budget: 100 warm-up + 200 exploration):

    circuit                         250nm        130nm        65nm         45nm
    Two-TIA   no transfer           2.36+-0.05   2.43+-0.03   2.36+-0.09   2.36+-0.06
    Two-TIA   transfer from 180nm   2.55+-0.01   2.56+-0.02   2.52+-0.04   2.51+-0.04
    Three-TIA no transfer           0.69+-0.25   0.65+-0.14   0.55+-0.03   0.53+-0.05
    Three-TIA transfer from 180nm   1.27+-0.02   1.29+-0.05   1.20+-0.09   1.06+-0.07

The reproduced claim: with the same (small) fine-tuning budget, the agent that
inherits 180nm-pretrained weights reaches a FoM at least as high as training
from scratch on most target nodes.
"""

import pytest

from conftest import run_once

#: Paper-artifact benchmark: excluded from the fast tier-1 CI matrix.
pytestmark = pytest.mark.slow


from repro.experiments import aggregate, table4_technology_transfer
from repro.experiments.transfer import technology_transfer_experiment


def test_table4_technology_transfer(benchmark, bench_settings):
    table = run_once(benchmark, table4_technology_transfer, bench_settings)
    print()
    print(table.render())
    assert len(table.row_labels) == 4  # two circuits x (transfer, no transfer)
    for row in table.row_labels:
        for column in table.column_labels:
            assert table.get(row, column) != ""


def test_transfer_beats_scratch_on_majority_of_nodes(bench_settings, benchmark):
    """Directional check of the paper's headline transfer claim (Two-TIA)."""

    def experiment():
        return technology_transfer_experiment("two_tia", bench_settings)

    result = run_once(benchmark, experiment)
    wins = 0
    for target in bench_settings.transfer_targets:
        transfer = aggregate(result.transfer[target]).mean
        scratch = aggregate(result.no_transfer[target]).mean
        wins += int(transfer >= scratch - 0.05)
    # Transfer should help (or at least not hurt) on most target nodes.
    assert wins >= len(bench_settings.transfer_targets) // 2
