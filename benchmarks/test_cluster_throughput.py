"""Throughput benchmark: serial campaign sweep vs a 2-worker cluster sweep.

Runs the same small method grid twice against fresh jsonl stores — once
with the in-process serial ``Campaign.run()`` loop and once through
``Campaign.run(workers=2)`` (two ``repro.experiments worker`` subprocesses
coordinating over leases) — and records both rates as the
``campaign_serial`` / ``campaign_workers`` backends in
``BENCH_evaluator.json``.  ``bench_report.py`` derives
``campaign_parallel_speedup`` from the pair.

The correctness bar is unconditional: the cluster sweep must record
**zero duplicated simulations** (every cell stored exactly once, total
recorded evaluations exactly the grid budget) and this is asserted here
*and* gated in CI by ``check_bench_gate.py``.  The >= 1.5x parallel
speedup is only gated when the machine reports more than one CPU core —
on a single-core box the two workers time-slice one core and the number
is recorded for the trajectory, not enforced.

Raise ``REPRO_BENCH_CLUSTER_STEPS`` / ``REPRO_BENCH_CLUSTER_SEEDS`` to
stress larger grids.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.experiments import ExperimentSettings
from repro.store import open_run_store
from repro.store.campaign import Campaign, CampaignSpec
from repro.store.jsonl import LOG_NAME

from bench_report import record_backend
from conftest import _bench_int

#: Timing-sensitive: runs in the dedicated CI throughput job (by filename),
#: not in every tier-1 matrix cell, so a loaded runner cannot flake tier-1.
pytestmark = pytest.mark.slow

CLUSTER_STEPS = _bench_int("REPRO_BENCH_CLUSTER_STEPS", 40)
CLUSTER_SEEDS = _bench_int("REPRO_BENCH_CLUSTER_SEEDS", 2)
WORKERS = 2


def _settings() -> ExperimentSettings:
    settings = ExperimentSettings()
    settings.circuits = ["two_tia"]
    settings.methods = ["es", "random", "human"]
    settings.steps = CLUSTER_STEPS
    settings.seeds = CLUSTER_SEEDS
    return settings


def _grid_budget(campaign: Campaign) -> int:
    """Exact number of simulator evaluations the grid costs to fill."""
    return sum(
        1 if request.method == "human" else request.steps
        for request in campaign.requests()
    )


def _recorded_evaluations(campaign: Campaign) -> int:
    campaign.store.refresh()
    total = 0
    for request in campaign.requests():
        record = campaign.store.get(campaign.key_for(request))
        assert record is not None, f"missing cell {request}"
        total += sum(record.step_evaluations)
    return total


def test_campaign_cluster_throughput(tmp_path, capsys):
    settings = _settings()
    spec = CampaignSpec.from_settings(settings)

    # Serial reference sweep.
    serial_dir = tmp_path / "serial-store"
    with open_run_store("jsonl", serial_dir) as store:
        campaign = Campaign(spec, store, settings=settings)
        budget = _grid_budget(campaign)
        cells = len(campaign.requests())
        start = time.perf_counter()
        report = campaign.run()
        serial_elapsed = time.perf_counter() - start
        assert report.executed == cells
        assert _recorded_evaluations(campaign) == budget
    serial_rate = budget / max(serial_elapsed, 1e-9)

    # Distributed sweep: two worker subprocesses over a shared store.
    cluster_dir = tmp_path / "cluster-store"
    with open_run_store("jsonl", cluster_dir) as store:
        campaign = Campaign(spec, store, settings=settings)
        start = time.perf_counter()
        report = campaign.run(workers=WORKERS, checkpoint_every=1)
        cluster_elapsed = time.perf_counter() - start
        assert not report.interrupted
        assert report.executed + report.skipped == cells

        # Zero-duplication audit: each cell appended exactly once to the
        # log, and the recorded evaluations sum to the grid budget exactly
        # (a resumed cell's record carries its full history, so any re-run
        # simulation would show up as an excess here).
        log_lines = [
            line
            for line in (cluster_dir / LOG_NAME).read_text().splitlines()
            if line.strip()
        ]
        duplicated_rows = len(log_lines) - cells
        duplicated_evals = _recorded_evaluations(campaign) - budget
        duplicated = duplicated_rows + duplicated_evals
    cluster_rate = budget / max(cluster_elapsed, 1e-9)

    record_backend(
        "campaign_serial",
        serial_rate,
        batch_size=1,
        extra={"cells": cells, "evaluations": budget},
    )
    path = record_backend(
        "campaign_workers",
        cluster_rate,
        batch_size=1,
        extra={
            "workers": WORKERS,
            "cells": cells,
            "evaluations": budget,
            "duplicated_simulations": duplicated,
        },
    )
    speedup = cluster_rate / serial_rate
    with capsys.disabled():
        print(
            f"\n[campaign-cluster] cells={cells} evaluations={budget} "
            f"serial={serial_rate:.1f}/s workers{WORKERS}={cluster_rate:.1f}/s "
            f"speedup={speedup:.2f}x duplicated={duplicated}"
        )
        print(json.dumps(json.loads(path.read_text()).get("backends", {}).get(
            "campaign_workers", {}
        )))

    # The correctness bar is unconditional; the speedup bar lives in
    # check_bench_gate.py and only fires on multi-core machines.
    assert duplicated == 0
