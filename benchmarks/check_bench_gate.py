#!/usr/bin/env python
"""CI benchmark gate for the evaluator and RL-training throughput report.

Reads the ``BENCH_evaluator.json`` produced by the throughput benchmarks and
fails (exit code 1) when any of:

* the vectorized SPICE backend does not beat serial evaluation by the
  acceptance margin (``--min-speedup``, default 3x on the 32-design Two-TIA
  batch),
* the cross-topology mixed workload (a uniform two_tia/three_tia/two_volt
  request mix through one unbound evaluator) does not beat its serial
  reference by ``--min-mixed-speedup`` (default 3x), or any design of the
  mix left the vectorized fast path (``scalar_fallback_designs`` must be 0
  — the batched homotopy retires the per-design scalar bail-out),
* the batched RL critic update does not beat the per-sample update loop by
  ``--min-rl-speedup`` (default 3x designs-trained/sec at batch size 48),
* the optimization service's cross-client batch coalescing averages fewer
  than ``--min-coalescing`` designs per issued simulator batch (default 2x
  under 8 concurrent clients),
* the distributed campaign sweep duplicated any simulator evaluation
  (``campaign_workers.duplicated_simulations`` must be 0 — gated
  unconditionally), or its parallel speedup over the serial sweep fell
  below ``--min-campaign-speedup`` (default 1.5x; only enforced when the
  report's machine has more than one CPU core — two workers time-slicing
  a single core cannot beat serial, so the number is recorded there,
  not gated), or
* vectorized / batched-RL throughput regressed below
  ``--regression-factor`` times the committed baseline
  (``benchmarks/BENCH_evaluator.json``).  The factor is deliberately
  generous because absolute rates vary across runner hardware; the speedup
  *ratios* are the portable signal.

Usage:
    python benchmarks/check_bench_gate.py REPORT [--baseline BASELINE]
        [--min-speedup 3.0] [--min-mixed-speedup 3.0] [--min-rl-speedup 3.0]
        [--min-coalescing 2.0] [--min-campaign-speedup 1.5]
        [--regression-factor 0.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path, help="freshly produced report")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_evaluator.json",
        help="committed baseline report (default: benchmarks/BENCH_evaluator.json)",
    )
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--min-mixed-speedup", type=float, default=3.0)
    parser.add_argument("--min-rl-speedup", type=float, default=3.0)
    parser.add_argument("--min-coalescing", type=float, default=2.0)
    parser.add_argument("--min-campaign-speedup", type=float, default=1.5)
    parser.add_argument("--regression-factor", type=float, default=0.5)
    args = parser.parse_args(argv)

    report = _load(args.report)
    backends = report.get("backends", {})
    baseline = _load(args.baseline) if args.baseline.exists() else {}
    baseline_backends = baseline.get("backends", {})
    if not args.baseline.exists():
        print(
            f"note: no committed baseline at {args.baseline}; "
            "skipping regression checks"
        )
    failures = []

    serial = backends.get("serial", {}).get("designs_per_sec")
    vectorized = backends.get("vectorized", {}).get("designs_per_sec")
    if not serial or not vectorized:
        failures.append(
            "report is missing serial and/or vectorized throughput "
            f"(backends present: {sorted(backends)})"
        )
    else:
        speedup = vectorized / serial
        print(
            f"serial={serial:.1f}/s vectorized={vectorized:.1f}/s "
            f"speedup={speedup:.2f}x (required: {args.min_speedup:.1f}x)"
        )
        if speedup < args.min_speedup:
            failures.append(
                f"vectorized speedup {speedup:.2f}x is below the acceptance "
                f"margin of {args.min_speedup:.1f}x over serial"
            )

    mixed_serial = backends.get("mixed_serial", {}).get("designs_per_sec")
    mixed_entry = backends.get("mixed_workload", {})
    mixed = mixed_entry.get("designs_per_sec")
    if not mixed_serial or not mixed:
        failures.append(
            "report is missing mixed_serial and/or mixed_workload throughput "
            f"(backends present: {sorted(backends)})"
        )
    else:
        fallbacks = mixed_entry.get("scalar_fallback_designs")
        if fallbacks is None:
            failures.append(
                "mixed_workload entry has no scalar_fallback_designs count"
            )
        elif fallbacks != 0:
            # Unconditional: a fallback means a design left the vectorized
            # fast path — the batched homotopy must cover the whole mix.
            failures.append(
                f"mixed workload pushed {fallbacks} design(s) onto the "
                "scalar fallback path; the batched homotopy must cover all"
            )
        mixed_speedup = mixed / mixed_serial
        print(
            f"mixed serial={mixed_serial:.1f}/s vectorized={mixed:.1f}/s "
            f"speedup={mixed_speedup:.2f}x fallbacks="
            f"{mixed_entry.get('scalar_fallback_designs', '?')} "
            f"(required: {args.min_mixed_speedup:.1f}x)"
        )
        if mixed_speedup < args.min_mixed_speedup:
            failures.append(
                f"mixed-workload speedup {mixed_speedup:.2f}x is below the "
                f"acceptance margin of {args.min_mixed_speedup:.1f}x over "
                "serial"
            )

    rl_loop = backends.get("rl_update_loop", {}).get("designs_per_sec")
    rl_batched = backends.get("rl_update_batched", {}).get("designs_per_sec")
    if not rl_loop or not rl_batched:
        failures.append(
            "report is missing rl_update_loop and/or rl_update_batched "
            f"throughput (backends present: {sorted(backends)})"
        )
    else:
        rl_speedup = rl_batched / rl_loop
        print(
            f"rl_update loop={rl_loop:.1f}/s batched={rl_batched:.1f}/s "
            f"speedup={rl_speedup:.2f}x (required: {args.min_rl_speedup:.1f}x)"
        )
        if rl_speedup < args.min_rl_speedup:
            failures.append(
                f"batched RL update speedup {rl_speedup:.2f}x is below the "
                f"acceptance margin of {args.min_rl_speedup:.1f}x over the "
                "per-sample loop"
            )

    service = backends.get("service", {})
    coalescing = service.get("coalescing_factor")
    if not coalescing:
        failures.append(
            "report is missing the service coalescing entry "
            f"(backends present: {sorted(backends)})"
        )
    else:
        print(
            f"service coalescing={coalescing:.2f}x designs/batch over "
            f"{service.get('clients', '?')} clients "
            f"(required: {args.min_coalescing:.1f}x)"
        )
        if coalescing < args.min_coalescing:
            failures.append(
                f"service coalescing factor {coalescing:.2f}x is below the "
                f"acceptance margin of {args.min_coalescing:.1f}x designs "
                "per simulator batch"
            )

    campaign_serial = backends.get("campaign_serial", {}).get("designs_per_sec")
    campaign_workers = backends.get("campaign_workers", {})
    campaign_rate = campaign_workers.get("designs_per_sec")
    if not campaign_serial or not campaign_rate:
        failures.append(
            "report is missing campaign_serial and/or campaign_workers "
            f"throughput (backends present: {sorted(backends)})"
        )
    else:
        duplicated = campaign_workers.get("duplicated_simulations")
        if duplicated is None:
            failures.append(
                "campaign_workers entry has no duplicated_simulations count"
            )
        elif duplicated != 0:
            # Unconditional: a duplicated simulation means the lease
            # protocol double-executed a cell — wrong on any hardware.
            failures.append(
                f"distributed sweep duplicated {duplicated} simulator "
                "evaluation(s); the lease protocol must guarantee zero"
            )
        campaign_speedup = campaign_rate / campaign_serial
        cpu_count = report.get("machine", {}).get("cpu_count") or 1
        print(
            f"campaign serial={campaign_serial:.1f}/s "
            f"workers={campaign_rate:.1f}/s "
            f"speedup={campaign_speedup:.2f}x duplicated="
            f"{campaign_workers.get('duplicated_simulations', '?')} "
            f"cpu_count={cpu_count}"
        )
        if cpu_count > 1:
            if campaign_speedup < args.min_campaign_speedup:
                failures.append(
                    f"campaign parallel speedup {campaign_speedup:.2f}x is "
                    "below the acceptance margin of "
                    f"{args.min_campaign_speedup:.1f}x over the serial sweep"
                )
        else:
            print(
                f"campaign speedup {campaign_speedup:.2f}x recorded, "
                "not gated (single core)"
            )

    for backend_name, measured in (
        ("vectorized", vectorized),
        ("rl_update_batched", rl_batched),
    ):
        if not measured:
            continue
        baseline_rate = baseline_backends.get(backend_name, {}).get(
            "designs_per_sec"
        )
        if not baseline_rate:
            continue
        floor = args.regression_factor * baseline_rate
        print(
            f"baseline {backend_name}={baseline_rate:.1f}/s "
            f"regression floor={floor:.1f}/s measured={measured:.1f}/s"
        )
        if measured < floor:
            failures.append(
                f"{backend_name} throughput {measured:.1f}/s regressed below "
                f"{args.regression_factor:.2f}x the committed baseline "
                f"({baseline_rate:.1f}/s)"
            )

    if failures:
        for failure in failures:
            print(f"BENCH GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
