#!/usr/bin/env python
"""CI benchmark gate for the evaluator throughput report.

Reads the ``BENCH_evaluator.json`` produced by the throughput benchmarks and
fails (exit code 1) when either:

* the vectorized backend does not beat serial evaluation by the acceptance
  margin (``--min-speedup``, default 3x on the 32-design Two-TIA batch), or
* vectorized designs/sec regressed below ``--regression-factor`` times the
  committed baseline (``benchmarks/BENCH_evaluator.json``).  The factor is
  deliberately generous because absolute rates vary across runner hardware;
  the speedup *ratio* is the portable signal.

Usage:
    python benchmarks/check_bench_gate.py REPORT [--baseline BASELINE]
        [--min-speedup 3.0] [--regression-factor 0.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path, help="freshly produced report")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_evaluator.json",
        help="committed baseline report (default: benchmarks/BENCH_evaluator.json)",
    )
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--regression-factor", type=float, default=0.5)
    args = parser.parse_args(argv)

    report = _load(args.report)
    backends = report.get("backends", {})
    failures = []

    serial = backends.get("serial", {}).get("designs_per_sec")
    vectorized = backends.get("vectorized", {}).get("designs_per_sec")
    if not serial or not vectorized:
        failures.append(
            "report is missing serial and/or vectorized throughput "
            f"(backends present: {sorted(backends)})"
        )
    else:
        speedup = vectorized / serial
        print(
            f"serial={serial:.1f}/s vectorized={vectorized:.1f}/s "
            f"speedup={speedup:.2f}x (required: {args.min_speedup:.1f}x)"
        )
        if speedup < args.min_speedup:
            failures.append(
                f"vectorized speedup {speedup:.2f}x is below the acceptance "
                f"margin of {args.min_speedup:.1f}x over serial"
            )

    if args.baseline.exists() and vectorized:
        baseline = _load(args.baseline)
        baseline_vec = (
            baseline.get("backends", {}).get("vectorized", {}).get("designs_per_sec")
        )
        if baseline_vec:
            floor = args.regression_factor * baseline_vec
            print(
                f"baseline vectorized={baseline_vec:.1f}/s "
                f"regression floor={floor:.1f}/s measured={vectorized:.1f}/s"
            )
            if vectorized < floor:
                failures.append(
                    f"vectorized throughput {vectorized:.1f}/s regressed below "
                    f"{args.regression_factor:.2f}x the committed baseline "
                    f"({baseline_vec:.1f}/s)"
                )
    elif not args.baseline.exists():
        print(f"note: no committed baseline at {args.baseline}; skipping regression check")

    if failures:
        for failure in failures:
            print(f"BENCH GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
