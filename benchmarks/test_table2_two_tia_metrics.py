"""Benchmark E2 — Table II: Two-TIA metric breakdown and weighted-FoM variants.

The paper reports (180nm): GCN-RL reaching the highest transimpedance GBW and
FoM while balancing bandwidth, gain, power, noise and peaking, and five extra
rows (GCN-RL-1..5) where a 10x weight on one metric drives that single metric
to its best value.  The benchmark regenerates the same table: the metric rows
for every method and the five emphasis variants.
"""

import pytest

from conftest import run_once

#: Paper-artifact benchmark: excluded from the fast tier-1 CI matrix.
pytestmark = pytest.mark.slow


from repro.experiments import table2_two_tia
from repro.experiments.tables import TABLE2_EMPHASIS


def test_table2_two_tia_metrics(benchmark, bench_settings):
    table = run_once(benchmark, table2_two_tia, bench_settings)
    print()
    print(table.render())
    # The five emphasis rows of the paper must be present.
    for row in TABLE2_EMPHASIS:
        assert row in table.row_labels
    # Every method row reports a gain and a FoM cell.
    gain_column = next(c for c in table.column_labels if c.startswith("gain"))
    for row in table.row_labels:
        assert table.get(row, gain_column) != ""
