"""Micro-benchmark: batched vs per-sample GCN critic updates.

The batched DDPG critic update pushes the whole replay batch through the
7-layer GCN stack as stacked ``(B, n, F)`` tensors — a handful of large
matmuls — where the per-sample reference path runs ``batch_size`` sequential
single-graph forward/backward passes in a Python loop.  This module measures
both paths on the paper configuration (7 GCN layers, hidden 64,
``batch_size=48``, Two-TIA), reports **designs-trained/sec** (replay samples
consumed per wall-clock second of critic updating), and records the rates
into ``BENCH_evaluator.json`` (see ``bench_report.py``).

The acceptance bar — batched >= 3x the per-sample loop — is enforced by
``check_bench_gate.py`` in CI; the in-test assertion uses a lower bar so a
noisy machine cannot flake the test suite itself.  Rates are medians over
interleaved measurement rounds, so a transient load spike cannot skew one
side of the comparison.

Raise ``REPRO_BENCH_RL_ROUNDS`` / ``REPRO_BENCH_RL_UPDATES`` for tighter
statistics.
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.env import SizingEnvironment
from repro.rl import AgentConfig, GCNRLAgent

from bench_report import record_backend
from conftest import _bench_int

#: Timing-sensitive: runs in the dedicated CI throughput job (by filename),
#: not in every tier-1 matrix cell, so a loaded runner cannot flake tier-1.
pytestmark = pytest.mark.slow

#: Paper configuration: replay samples per critic update (``Ns``).
BATCH_SIZE = _bench_int("REPRO_BENCH_RL_BATCH", 48)
#: Interleaved measurement rounds (median over rounds is reported).
ROUNDS = _bench_int("REPRO_BENCH_RL_ROUNDS", 5)
#: Batched updates timed per round (the loop path runs proportionally fewer).
UPDATES_PER_ROUND = _bench_int("REPRO_BENCH_RL_UPDATES", 20)
#: In-test sanity bar (the CI gate enforces the real 3x acceptance margin).
MIN_SPEEDUP_IN_TEST = 1.5


def _prepared_agent(seed: int = 0) -> GCNRLAgent:
    """Paper-config agent with a filled replay buffer, ready to update."""
    environment = SizingEnvironment(get_circuit("two_tia"))
    agent = GCNRLAgent(
        environment, AgentConfig(batch_size=BATCH_SIZE, warmup=1), seed=seed
    )
    states, _ = environment.observe()
    rng = np.random.default_rng(seed)
    for _ in range(max(64, BATCH_SIZE)):
        actions = rng.uniform(
            -1.0, 1.0, size=(environment.num_components, agent.action_dim)
        )
        agent.replay_buffer.add(states, actions, float(rng.uniform()))
    agent.reward_baseline = 0.5
    return agent


def _rate(update, num_updates: int) -> float:
    """Designs-trained/sec of ``num_updates`` back-to-back critic updates."""
    start = time.perf_counter()
    for _ in range(num_updates):
        update()
    elapsed = time.perf_counter() - start
    return num_updates * BATCH_SIZE / max(elapsed, 1e-9)


def test_batched_critic_update_throughput(capsys):
    """Critic-update microbenchmark: stacked tensors vs the per-sample loop.

    Times the critic update itself (replay sample, forward/backward over the
    batch, clip, Adam step) — the phase the batched tensor path vectorizes.
    The actor ascent step is a single-graph pass shared verbatim by both
    paths; its (identical) cost is reported separately via the full-update
    rates stored in the report entries.
    """
    agent = _prepared_agent()
    adjacency = agent.environment.circuit.normalized_adjacency()
    type_indices = agent._type_indices()
    batched = lambda: agent._update_critic_batched(adjacency, type_indices)  # noqa: E731
    loop = lambda: agent._update_critic_loop(adjacency, type_indices)  # noqa: E731
    batched()  # warm-up (allocates the persistent batched workspaces)
    loop()

    loop_updates = max(UPDATES_PER_ROUND // 4, 2)
    batched_rates, loop_rates = [], []
    for _ in range(ROUNDS):
        batched_rates.append(_rate(batched, UPDATES_PER_ROUND))
        loop_rates.append(_rate(loop, loop_updates))
    batched_rate = statistics.median(batched_rates)
    loop_rate = statistics.median(loop_rates)
    speedup = batched_rate / loop_rate

    # Full-update rates (critic + shared actor step) for context.
    agent._update_networks()
    agent._update_networks_loop()
    full_batched = _rate(agent._update_networks, UPDATES_PER_ROUND)
    full_loop = _rate(agent._update_networks_loop, loop_updates)

    record_backend(
        "rl_update_loop",
        loop_rate,
        BATCH_SIZE,
        extra={
            "updates_per_sec": round(loop_rate / BATCH_SIZE, 2),
            "full_update_designs_per_sec": round(full_loop, 2),
        },
    )
    record_backend(
        "rl_update_batched",
        batched_rate,
        BATCH_SIZE,
        extra={
            "updates_per_sec": round(batched_rate / BATCH_SIZE, 2),
            "full_update_designs_per_sec": round(full_batched, 2),
        },
    )
    with capsys.disabled():
        print(
            f"\n[rl-throughput] batch={BATCH_SIZE} "
            f"critic-update loop={loop_rate:.0f} batched={batched_rate:.0f} "
            f"designs/s speedup={speedup:.2f}x "
            f"(full update incl. actor step: {full_loop:.0f} -> "
            f"{full_batched:.0f} designs/s)"
        )
    assert speedup > MIN_SPEEDUP_IN_TEST


def test_batched_and_loop_updates_agree(capsys):
    """A fast wrong update is worthless: both paths must land on the same
    weights (to stacked-reduction precision) from identical agent states."""
    batched_agent = _prepared_agent(seed=3)
    loop_agent = _prepared_agent(seed=3)
    losses = []
    for _ in range(10):
        loss_batched = batched_agent._update_networks()
        loss_loop = loop_agent._update_networks_loop()
        losses.append((loss_batched, loss_loop))
    state_b = batched_agent.state_dict()
    state_l = loop_agent.state_dict()
    max_diff = max(
        float(np.max(np.abs(state_b[net][key] - state_l[net][key])))
        for net in state_b
        for key in state_b[net]
    )
    with capsys.disabled():
        print(f"\n[rl-throughput] parity after 10 updates: {max_diff:.2e}")
    assert max_diff <= 1e-9
    for loss_batched, loss_loop in losses:
        assert loss_batched == pytest.approx(loss_loop, abs=1e-9)
