"""Micro-benchmark: vectorized (stacked-solve) vs serial design evaluation.

The acceptance bar for the vectorized backend is >= 3x serial designs/sec on
a 32-design Two-TIA batch; this module measures both paths on identical
batches, verifies the results agree, and records the rates into
``BENCH_evaluator.json`` (see ``bench_report.py``).  The hard >= 3x gate is
enforced by ``check_bench_gate.py`` in CI — the in-test assertion uses a
lower bar so a noisy machine cannot flake the test suite itself.

Raise ``REPRO_BENCH_VEC_DESIGNS`` to stress larger batches.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.env import default_fom_config
from repro.eval import LocalEvaluator, VectorizedEvaluator

from bench_report import record_backend
from conftest import _bench_int

#: Timing-sensitive: runs in the dedicated CI throughput job (by filename),
#: not in every tier-1 matrix cell, so a loaded runner cannot flake tier-1.
pytestmark = pytest.mark.slow

NUM_DESIGNS = _bench_int("REPRO_BENCH_VEC_DESIGNS", 32)
#: In-test sanity bar (the CI gate enforces the real 3x acceptance margin).
MIN_SPEEDUP_IN_TEST = 1.5


@pytest.fixture(scope="module")
def circuit():
    return get_circuit("two_tia")


@pytest.fixture(scope="module")
def batch(circuit):
    rng = np.random.default_rng(7)
    return [circuit.random_sizing(rng) for _ in range(NUM_DESIGNS)]


def _rate(evaluator, batch):
    evaluator.evaluate_batch(batch[: min(4, len(batch))])  # warm-up
    start = time.perf_counter()
    results = evaluator.evaluate_batch(batch)
    elapsed = time.perf_counter() - start
    return len(batch) / max(elapsed, 1e-9), results


def test_vectorized_vs_serial_throughput(circuit, batch, capsys):
    serial_rate, serial_results = _rate(LocalEvaluator(circuit), batch)
    vectorized_rate, vectorized_results = _rate(VectorizedEvaluator(circuit), batch)
    speedup = vectorized_rate / serial_rate

    # Parity first: a fast wrong answer is worthless.
    fom = default_fom_config(circuit)
    for reference, result in zip(serial_results, vectorized_results):
        assert fom.compute(result.metrics) == pytest.approx(
            fom.compute(reference.metrics), rel=1e-9, abs=1e-9
        )

    record_backend("serial", serial_rate, NUM_DESIGNS)
    record_backend("vectorized", vectorized_rate, NUM_DESIGNS)
    with capsys.disabled():
        print(
            f"\n[vectorized-throughput] designs={NUM_DESIGNS} "
            f"serial={serial_rate:.1f}/s vectorized={vectorized_rate:.1f}/s "
            f"speedup={speedup:.2f}x"
        )
    assert speedup > MIN_SPEEDUP_IN_TEST


def test_mixed_workload_throughput(capsys):
    """Cross-topology batching: one mixed evaluate_requests vs serial.

    A uniform two_tia/three_tia/two_volt mix, interleaved, through one
    unbound evaluator — the traffic shape the service coalescer and the
    campaign's shared evaluator produce.  The vectorized backend must bucket
    the mix into three stacked solves and beat the serial reference >= 3x
    (CI gate), with zero designs leaving the vectorized fast path.
    """
    from repro.eval import EvalRequest

    circuits = ["two_tia", "three_tia", "two_volt"]
    per_circuit = max(NUM_DESIGNS // len(circuits), 4)
    rng = np.random.default_rng(13)
    requests = []
    for name in circuits:
        design = get_circuit(name)
        requests.extend(
            EvalRequest(name, "180nm", design.random_sizing(rng))
            for _ in range(per_circuit)
        )
    order = rng.permutation(len(requests))
    requests = [requests[i] for i in order]
    warmup = [requests[i] for i in range(0, len(requests), per_circuit)]

    def rate(evaluator):
        evaluator.evaluate_requests(warmup)
        start = time.perf_counter()
        results = evaluator.evaluate_requests(requests)
        return len(requests) / max(time.perf_counter() - start, 1e-9), results

    serial_rate, serial_results = rate(LocalEvaluator())
    vectorized = VectorizedEvaluator()
    vectorized_rate, vectorized_results = rate(vectorized)
    speedup = vectorized_rate / serial_rate

    for request, reference, result in zip(requests, serial_results, vectorized_results):
        fom = default_fom_config(get_circuit(request.circuit, request.technology))
        assert fom.compute(result.metrics) == pytest.approx(
            fom.compute(reference.metrics), rel=1e-9, abs=1e-9
        )

    record_backend("mixed_serial", serial_rate, len(requests), circuit="mixed")
    record_backend(
        "mixed_workload",
        vectorized_rate,
        len(requests),
        circuit="mixed",
        extra={
            "circuits": circuits,
            "scalar_fallback_designs": vectorized.stats.scalar_fallbacks,
        },
    )
    with capsys.disabled():
        print(
            f"\n[mixed-workload] designs={len(requests)} "
            f"serial={serial_rate:.1f}/s vectorized={vectorized_rate:.1f}/s "
            f"speedup={speedup:.2f}x "
            f"fallbacks={vectorized.stats.scalar_fallbacks}"
        )
    assert vectorized.stats.scalar_fallbacks == 0
    assert speedup > MIN_SPEEDUP_IN_TEST


def test_vectorized_scales_with_batch_size(circuit, batch):
    """Stacked solves amortise: bigger batches must not get slower per design."""
    sizes = [size for size in (8, NUM_DESIGNS) if size <= len(batch)]
    rates = {}
    evaluator = VectorizedEvaluator(circuit)
    for size in sizes:
        start = time.perf_counter()
        evaluator.evaluate_batch(batch[:size])
        rates[size] = size / max(time.perf_counter() - start, 1e-9)
    record_backend(
        "vectorized_scaling",
        rates[sizes[-1]],
        sizes[-1],
        extra={"rates_by_batch_size": {str(k): round(v, 2) for k, v in rates.items()}},
    )
    # Generous factor: absolute rates are noisy, the trend must hold.
    assert rates[sizes[-1]] > 0.5 * rates[sizes[0]]
