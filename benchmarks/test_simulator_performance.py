"""Micro-benchmarks of the simulation substrate.

The paper notes that "circuit simulation time accounts for over 95% of the
total runtime"; these benchmarks measure the cost of one full evaluation of
each benchmark circuit and of the individual analyses, which is what
determines how far the search budgets can be scaled.
"""

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.spice import ac_analysis, dc_operating_point, noise_analysis
from repro.spice.ac import logspace_frequencies


@pytest.fixture(scope="module")
def two_tia_setup():
    circuit_design = get_circuit("two_tia")
    sizing = circuit_design.expert_sizing()
    netlist = circuit_design.build_circuit(sizing)
    op = dc_operating_point(netlist)
    return circuit_design, sizing, netlist, op


def test_bench_two_tia_full_evaluation(benchmark):
    circuit = get_circuit("two_tia")
    sizing = circuit.expert_sizing()
    metrics = benchmark(circuit.evaluate, sizing)
    assert metrics["simulation_failed"] == 0.0


def test_bench_two_volt_full_evaluation(benchmark):
    circuit = get_circuit("two_volt")
    sizing = circuit.expert_sizing()
    metrics = benchmark(circuit.evaluate, sizing)
    assert metrics["simulation_failed"] == 0.0


def test_bench_three_tia_full_evaluation(benchmark):
    circuit = get_circuit("three_tia")
    sizing = circuit.expert_sizing()
    metrics = benchmark(circuit.evaluate, sizing)
    assert metrics["simulation_failed"] == 0.0


def test_bench_ldo_full_evaluation(benchmark):
    circuit = get_circuit("ldo")
    sizing = circuit.expert_sizing()
    metrics = benchmark(circuit.evaluate, sizing)
    assert metrics["simulation_failed"] == 0.0


def test_bench_dc_operating_point(benchmark, two_tia_setup):
    _, _, netlist, _ = two_tia_setup
    op = benchmark(dc_operating_point, netlist)
    assert op.converged


def test_bench_ac_analysis(benchmark, two_tia_setup):
    _, _, netlist, op = two_tia_setup
    freqs = logspace_frequencies(1e4, 1e10, 6)
    solution = benchmark(ac_analysis, netlist, op, freqs)
    assert np.all(np.isfinite(solution.x))


def test_bench_noise_analysis(benchmark, two_tia_setup):
    _, _, netlist, op = two_tia_setup
    freqs = logspace_frequencies(1e5, 1e9, 3)
    solution = benchmark(noise_analysis, netlist, op, "vout", freqs)
    assert np.all(solution.output_psd >= 0)


def test_bench_rl_policy_update(benchmark):
    """Cost of one DDPG update step (critic batch + actor step), no simulator."""
    from repro.rl import AgentConfig, GCNRLAgent
    from repro.rl.replay_buffer import ReplayBuffer
    from repro.env import SizingEnvironment

    env = SizingEnvironment(get_circuit("two_tia"))
    config = AgentConfig(num_gcn_layers=4, hidden_dim=48, batch_size=48, warmup=1)
    agent = GCNRLAgent(env, config, seed=0)
    states, _ = env.observe()
    rng = np.random.default_rng(0)
    for _ in range(64):
        agent.replay_buffer.add(
            states, rng.uniform(-1, 1, size=(env.num_components, 3)), rng.uniform()
        )
    agent.reward_baseline = 0.5
    loss = benchmark(agent._update_networks)
    assert np.isfinite(loss)
