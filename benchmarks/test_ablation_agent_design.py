"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not tables from the paper; they probe the ingredients of the GCN-RL
agent that the paper argues for implicitly:

* GCN depth — the paper stacks 7 layers for a global receptive field.
* Graph aggregation — GCN-RL vs NG-RL on a reward that depends on neighbour
  agreement (only the GCN can see neighbours).
* Reward baseline — the exponential-moving-average baseline of Algorithm 1.

Each ablation uses a fast synthetic reward on the real Two-TIA topology so
the comparison isolates the agent machinery from simulator noise.
"""

import numpy as np
import pytest
from conftest import run_once

#: Paper-artifact benchmark: excluded from the fast tier-1 CI matrix.
pytestmark = pytest.mark.slow


from repro.circuits import get_circuit
from repro.env import SizingEnvironment
from repro.env.environment import StepResult
from repro.rl import AgentConfig, GCNRLAgent


class NeighbourAgreementEnvironment(SizingEnvironment):
    """Reward is high when adjacent components choose similar actions.

    This synthetic objective is deliberately graph-structured: the optimal
    action of a component depends on its neighbours, so an agent that sees
    the adjacency (GCN-RL) has an advantage over one that does not (NG-RL).
    """

    def __init__(self, circuit):
        super().__init__(circuit)
        self._adjacency = circuit.adjacency()
        rng = np.random.default_rng(7)
        self._targets = rng.uniform(-0.6, 0.6, size=circuit.num_components)

    def step(self, actions) -> StepResult:
        actions = np.asarray(actions, dtype=float)
        mean_action = actions.mean(axis=1)
        mismatch = 0.0
        edges = 0
        n = len(mean_action)
        for i in range(n):
            for j in range(i + 1, n):
                if self._adjacency[i, j] > 0:
                    target_gap = self._targets[i] - self._targets[j]
                    mismatch += (mean_action[i] - mean_action[j] - target_gap) ** 2
                    edges += 1
        reward = 1.0 - mismatch / max(edges, 1)
        index = len(self.history)
        self._record(reward, {"synthetic": reward}, {})
        return StepResult(reward=reward, metrics={}, sizing={}, step_index=index)


def _train(env, use_gcn, num_layers, episodes, baseline_decay=0.95, seed=0):
    config = AgentConfig(
        use_gcn=use_gcn,
        num_gcn_layers=num_layers,
        hidden_dim=32,
        warmup=20,
        batch_size=32,
        updates_per_episode=3,
        reward_baseline_decay=baseline_decay,
    )
    agent = GCNRLAgent(env, config, seed=seed)
    agent.train(episodes)
    return env.best_reward


EPISODES = 120


def test_ablation_gcn_depth(benchmark):
    """Deeper GCN stacks should not hurt on the graph-structured objective."""

    def run():
        results = {}
        for depth in (1, 4, 7):
            env = NeighbourAgreementEnvironment(get_circuit("two_tia"))
            results[depth] = _train(env, True, depth, EPISODES)
        return results

    results = run_once(benchmark, run)
    print()
    for depth, best in results.items():
        print(f"  GCN depth {depth}: best synthetic reward {best:.3f}")
    assert max(results.values()) > 0.5
    # The deepest stack should be competitive with the shallowest.
    assert results[7] >= results[1] - 0.15


def test_ablation_gcn_vs_ng_on_graph_objective(benchmark):
    """GCN-RL should match or beat NG-RL when the reward is graph-structured."""

    def run():
        gcn_env = NeighbourAgreementEnvironment(get_circuit("two_tia"))
        ng_env = NeighbourAgreementEnvironment(get_circuit("two_tia"))
        return {
            "gcn": _train(gcn_env, True, 4, EPISODES),
            "ng": _train(ng_env, False, 4, EPISODES),
        }

    results = run_once(benchmark, run)
    print()
    print(f"  GCN-RL {results['gcn']:.3f} vs NG-RL {results['ng']:.3f}")
    assert results["gcn"] >= results["ng"] - 0.1


def test_ablation_reward_baseline(benchmark):
    """The EMA reward baseline should not degrade final performance."""

    class QuadraticEnvironment(SizingEnvironment):
        def __init__(self, circuit):
            super().__init__(circuit)

        def step(self, actions) -> StepResult:
            actions = np.asarray(actions, dtype=float)
            reward = 1.0 - float(np.mean((actions - 0.35) ** 2))
            index = len(self.history)
            self._record(reward, {}, {})
            return StepResult(reward=reward, metrics={}, sizing={}, step_index=index)

    def run():
        with_baseline = _train(
            QuadraticEnvironment(get_circuit("two_tia")), True, 3, EPISODES,
            baseline_decay=0.95,
        )
        without_baseline = _train(
            QuadraticEnvironment(get_circuit("two_tia")), True, 3, EPISODES,
            baseline_decay=0.0,
        )
        return {"with": with_baseline, "without": without_baseline}

    results = run_once(benchmark, run)
    print()
    print(f"  with baseline {results['with']:.3f}, without {results['without']:.3f}")
    assert results["with"] > 0.5
