"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  The default
budgets are scaled down so the whole suite finishes in minutes on a laptop;
raise them with the ``REPRO_BENCH_*`` environment variables (or the
``REPRO_*`` variables used by :class:`repro.experiments.ExperimentSettings`)
to approach the paper's 10,000-step protocol.

Runs are cached in-process, so benchmarks that share experiments (e.g.
Table I and Figure 5) only pay for the simulations once per session.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentSettings


def _bench_int(name: str, default: int) -> int:
    try:
        return max(int(os.environ.get(name, default)), 1)
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Experiment settings used by every table/figure benchmark."""
    settings = ExperimentSettings()
    settings.steps = _bench_int("REPRO_BENCH_STEPS", 40)
    settings.seeds = _bench_int("REPRO_BENCH_SEEDS", 1)
    settings.pretrain_steps = _bench_int("REPRO_BENCH_PRETRAIN_STEPS", 60)
    settings.transfer_steps = _bench_int("REPRO_BENCH_TRANSFER_STEPS", 40)
    settings.transfer_warmup = _bench_int("REPRO_BENCH_TRANSFER_WARMUP", 15)
    return settings


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
