"""Benchmark trajectory recording: merge results into ``BENCH_evaluator.json``.

Throughput benchmarks call :func:`record_backend` as they run; every call
merges one backend's numbers into a single JSON report (path from
``REPRO_BENCH_OUTPUT``, default ``BENCH_evaluator.json`` at the repository
root).  CI uploads the report as an artifact and gates it against the
committed baseline with ``check_bench_gate.py``, so the repository carries a
designs/sec trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Dict, Optional

#: Report schema version (bump when the layout changes).
BENCH_SCHEMA = 1

#: The committed trajectory baseline CI gates against.  Never written by
#: default — refreshing it is an explicit act (REPRO_BENCH_OUTPUT=<here>).
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_evaluator.json"


def bench_output_path() -> Path:
    """Where the merged benchmark report is written.

    Defaults to ``BENCH_evaluator.json`` at the repository root (gitignored)
    regardless of the working directory, so running the benchmarks can never
    silently rewrite the committed baseline.
    """
    override = os.environ.get("REPRO_BENCH_OUTPUT")
    if override:
        return Path(override)
    return BASELINE_PATH.parent.parent / "BENCH_evaluator.json"


def _load_report(path: Path) -> Dict:
    report = {"schema": BENCH_SCHEMA, "backends": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if existing.get("schema") == BENCH_SCHEMA:
                report = existing
        except (json.JSONDecodeError, OSError):
            pass
    # Provenance always describes the machine of the *latest* run.
    report["machine"] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    return report


def record_backend(
    backend: str,
    designs_per_sec: float,
    batch_size: int,
    circuit: str = "two_tia",
    extra: Optional[Dict] = None,
) -> Path:
    """Merge one backend's throughput into the benchmark report.

    Args:
        backend: Backend label (``serial``, ``batched``, ``parallel``,
            ``vectorized``, ...).
        designs_per_sec: Measured evaluation throughput.
        batch_size: Designs per ``evaluate_batch`` call during the run.
        circuit: Benchmark circuit the rate was measured on.
        extra: Optional additional fields stored verbatim.

    Returns:
        The path the report was written to.
    """
    path = bench_output_path()
    report = _load_report(path)
    entry = {
        "designs_per_sec": round(float(designs_per_sec), 2),
        "batch_size": int(batch_size),
        "circuit": circuit,
    }
    if extra:
        entry.update(extra)
    report["backends"][backend] = entry
    serial = report["backends"].get("serial", {}).get("designs_per_sec")
    vectorized = report["backends"].get("vectorized", {}).get("designs_per_sec")
    if serial and vectorized:
        report["vectorized_speedup_over_serial"] = round(vectorized / serial, 2)
    mixed_serial = report["backends"].get("mixed_serial", {}).get("designs_per_sec")
    mixed = report["backends"].get("mixed_workload", {}).get("designs_per_sec")
    if mixed_serial and mixed:
        report["mixed_workload_speedup_over_serial"] = round(
            mixed / mixed_serial, 2
        )
    rl_loop = report["backends"].get("rl_update_loop", {}).get("designs_per_sec")
    rl_batched = report["backends"].get("rl_update_batched", {}).get(
        "designs_per_sec"
    )
    if rl_loop and rl_batched:
        report["rl_update_speedup_over_loop"] = round(rl_batched / rl_loop, 2)
    coalescing = report["backends"].get("service", {}).get("coalescing_factor")
    if coalescing:
        report["service_coalescing_factor"] = round(float(coalescing), 2)
    campaign_serial = report["backends"].get("campaign_serial", {}).get(
        "designs_per_sec"
    )
    campaign_workers = report["backends"].get("campaign_workers", {}).get(
        "designs_per_sec"
    )
    if campaign_serial and campaign_workers:
        report["campaign_parallel_speedup"] = round(
            campaign_workers / campaign_serial, 2
        )
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
