"""Benchmark F5 — Figure 5: best-FoM learning curves on the four circuits.

The paper plots, for each circuit, the running-maximum FoM of every method
over 10,000 simulation steps, with GCN-RL converging fastest and highest.
This benchmark regenerates the same series (at the scaled-down budget),
prints an ASCII sketch of each panel, and checks the basic learning-curve
invariants (monotone non-decreasing, one point per simulation step).
"""

import numpy as np
import pytest

from conftest import run_once

#: Paper-artifact benchmark: excluded from the fast tier-1 CI matrix.
pytestmark = pytest.mark.slow


from repro.experiments import figure5_learning_curves


def test_figure5_learning_curves(benchmark, bench_settings):
    figures = run_once(benchmark, figure5_learning_curves, bench_settings)
    print()
    for circuit, figure in figures.items():
        print(figure.render_ascii())
        print()
    assert set(figures) == set(bench_settings.circuits)
    for figure in figures.values():
        for name, curve in figure.series.items():
            assert len(curve) == bench_settings.steps, name
            assert np.all(np.diff(curve) >= -1e-12), name
