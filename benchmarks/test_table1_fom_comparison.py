"""Benchmark E1 — Table I: FoM comparison of all methods on all four circuits.

Paper reference values (180nm, 10,000 steps, 3 seeds):

    method    Two-TIA      Two-Volt     Three-TIA    LDO
    Human     2.32         2.02         1.15         0.61
    Random    2.46+-0.02   1.74+-0.06   0.74+-0.03   0.27+-0.03
    ES        2.66+-0.03   1.91+-0.02   1.30+-0.03   0.40+-0.07
    BO        2.48+-0.03   1.85+-0.19   1.24+-0.14   0.45+-0.05
    MACE      2.54+-0.01   1.70+-0.08   1.27+-0.04   0.58+-0.04
    NG-RL     2.59+-0.06   1.98+-0.12   1.39+-0.01   0.71+-0.05
    GCN-RL    2.69+-0.03   2.23+-0.11   1.40+-0.01   0.79+-0.02

The reproduced absolute values differ (synthetic PDK, square-law simulator,
scaled-down budgets) but the qualitative claim under test is the same: the
learning-based methods should sit at or above the best black-box baseline on
most circuits, and every optimizer should clear the human reference design.
"""

import pytest

from conftest import run_once

#: Paper-artifact benchmark: excluded from the fast tier-1 CI matrix.
pytestmark = pytest.mark.slow


from repro.experiments import table1_fom_comparison


def test_table1_fom_comparison(benchmark, bench_settings):
    table = run_once(benchmark, table1_fom_comparison, bench_settings)
    print()
    print(table.render())
    # Structural checks: every (method, circuit) cell was produced.
    assert len(table.row_labels) == len(bench_settings.methods)
    for row in table.row_labels:
        for column in table.column_labels:
            assert table.get(row, column) != ""
