"""Quickstart: size the two-stage transimpedance amplifier with GCN-RL.

Runs a short GCN-RL search on the Two-TIA benchmark circuit at 180nm, then
prints the best Figure of Merit, the corresponding performance metrics and
the physical transistor sizes the agent chose.

Usage:
    python examples/quickstart.py [--steps 150]
"""

from __future__ import annotations

import argparse

from repro.circuits import get_circuit
from repro.env import SizingEnvironment, default_fom_config
from repro.rl import AgentConfig, GCNRLAgent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=150, help="simulation budget")
    parser.add_argument("--circuit", default="two_tia", help="benchmark circuit name")
    parser.add_argument("--technology", default="180nm", help="technology node")
    args = parser.parse_args()

    # 1) Pick a circuit and a technology node and wrap them in an environment.
    circuit = get_circuit(args.circuit, args.technology)
    print(circuit.describe())
    environment = SizingEnvironment(circuit, default_fom_config(circuit))

    # 2) The human-expert reference design gives a baseline FoM.
    expert = environment.evaluate_sizing(circuit.expert_sizing())
    print(f"\nHuman expert reference FoM: {expert.reward:.3f}")

    # 3) Train the GCN-RL agent (DDPG with a GCN actor-critic).
    config = AgentConfig(warmup=max(10, args.steps // 4))
    agent = GCNRLAgent(environment, config, seed=0)
    print(f"\nTraining GCN-RL for {args.steps} steps...")
    for record in agent.train(args.steps):
        if (record.episode + 1) % 25 == 0:
            print(
                f"  step {record.episode + 1:4d}  reward {record.reward:6.3f}  "
                f"best {record.best_reward:6.3f}"
            )

    # 4) Report the best design found.
    print(f"\nBest FoM found: {environment.best_reward:.3f}")
    print("Best design metrics:")
    for definition in circuit.metric_definitions():
        value = environment.best_metrics[definition.name] * definition.display_scale
        print(f"  {definition.name:>12s}: {value:10.4g} {definition.unit}")
    print("\nBest transistor sizes:")
    for name, params in environment.best_sizing.items():
        pretty = ", ".join(f"{k}={v:.3g}" for k, v in params.items())
        print(f"  {name:>4s}: {pretty}")


if __name__ == "__main__":
    main()
