"""Quickstart: size the two-stage transimpedance amplifier with GCN-RL.

Runs a short GCN-RL search on the Two-TIA benchmark circuit at 180nm, then
prints the best Figure of Merit, the corresponding performance metrics and
the physical transistor sizes the agent chose.  Also demonstrates the batch
evaluation API (``evaluate_normalized_batch``), the evaluator configuration
every simulator call goes through, and a store-backed campaign sweep that
persists runs and resumes without re-executing finished cells.

Usage:
    python examples/quickstart.py [--steps 150] [--workers 4] [--cache-size 256]
    python examples/quickstart.py --eval-backend vectorized   # stacked solves
    python examples/quickstart.py --store-dir runs   # persist the demo sweep
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro.circuits import get_circuit
from repro.env import SizingEnvironment, default_fom_config
from repro.eval import EvaluatorConfig
from repro.rl import AgentConfig, GCNRLAgent
from repro.store import Campaign, CampaignSpec, open_run_store


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=150, help="simulation budget")
    parser.add_argument("--circuit", default="two_tia", help="benchmark circuit name")
    parser.add_argument("--technology", default="180nm", help="technology node")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="evaluate batches on a process pool of this size (0 = serial)",
    )
    parser.add_argument(
        "--eval-backend",
        choices=["local", "thread", "process", "vectorized"],
        default=None,
        help="evaluation backend; 'vectorized' stamps whole batches into "
        "stacked matrices and solves them with single LAPACK calls "
        "(default: local, or process when --workers is set)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=0, help="LRU design cache (0 = off)"
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="persist the demo sweep here (default: a temporary directory)",
    )
    args = parser.parse_args()

    # 1) Pick a circuit and a technology node and wrap them in an environment.
    #    Every simulator call goes through one Evaluator: serial by default,
    #    a process pool and/or an LRU cache when requested.
    circuit = get_circuit(args.circuit, args.technology)
    print(circuit.describe())
    backend = args.eval_backend or ("process" if args.workers else "local")
    evaluator = EvaluatorConfig(
        backend=backend,
        max_workers=args.workers or None,
        cache_size=args.cache_size,
    ).build(circuit)
    print(f"Evaluator: {evaluator.describe()}")
    environment = SizingEnvironment(
        circuit, default_fom_config(circuit), evaluator=evaluator
    )

    # 2) The human-expert reference design gives a baseline FoM.
    expert = environment.evaluate_sizing(circuit.expert_sizing())
    print(f"\nHuman expert reference FoM: {expert.reward:.3f}")

    # 3) Batch API: score a whole population of normalised designs in one
    #    call — this is the path every black-box baseline uses internally.
    population = np.random.default_rng(0).uniform(
        -1.0, 1.0, size=(16, environment.parameter_dimension)
    )
    batch = environment.evaluate_normalized_batch(population)
    print(
        f"Random population of {len(batch)}: "
        f"best FoM {max(r.reward for r in batch):.3f}"
    )
    environment.reset_history()

    # 4) Train the GCN-RL agent (DDPG with a GCN actor-critic).
    config = AgentConfig(warmup=max(10, args.steps // 4))
    agent = GCNRLAgent(environment, config, seed=0)
    print(f"\nTraining GCN-RL for {args.steps} steps...")
    for record in agent.train(args.steps):
        if (record.episode + 1) % 25 == 0:
            print(
                f"  step {record.episode + 1:4d}  reward {record.reward:6.3f}  "
                f"best {record.best_reward:6.3f}"
            )

    # 5) Report the best design found.
    print(f"\nBest FoM found: {environment.best_reward:.3f}")
    print("Best design metrics:")
    for definition in circuit.metric_definitions():
        value = environment.best_metrics[definition.name] * definition.display_scale
        print(f"  {definition.name:>12s}: {value:10.4g} {definition.unit}")
    print("\nBest transistor sizes:")
    for name, params in environment.best_sizing.items():
        pretty = ", ".join(f"{k}={v:.3g}" for k, v in params.items())
        print(f"  {name:>4s}: {pretty}")

    stats = evaluator.stats
    print(
        f"\nEvaluator served {stats.num_designs} designs in "
        f"{stats.num_batches} batches ({stats.num_simulations} simulations, "
        f"{stats.cache_hits} cache hits)"
    )
    evaluator.close()

    # 6) Store-backed sweeps: a Campaign expands a grid spec, persists every
    #    completed run in a RunStore under its canonical key, and skips cells
    #    already present — so a killed sweep resumes exactly where it stopped
    #    (re-run with the same --store-dir to see everything skipped).
    store_dir = args.store_dir or tempfile.mkdtemp(prefix="repro-quickstart-")
    store = open_run_store("jsonl", store_dir)
    spec = CampaignSpec(
        methods=["human", "random"],
        circuits=[args.circuit],
        technologies=[args.technology],
        seeds=2,
        steps=20,
    )
    campaign = Campaign(spec, store)
    print(f"\nCampaign sweep into {store_dir}:")
    print("  " + campaign.run().summary())
    print("  " + campaign.run().summary() + "  <- resumed: nothing re-executed")
    best = max(store.query(circuit=args.circuit), key=lambda r: r.best_reward)
    print(f"  best stored run: {best.method} (FoM {best.best_reward:.3f})")
    store.close()


if __name__ == "__main__":
    main()
