"""Design porting: transfer sizing knowledge from 180nm to a new node.

Reproduces the paper's technology-transfer workflow (Section III-E, Table IV)
on a small budget: a GCN-RL agent is trained on the Two-TIA at 180nm, its
actor-critic weights are saved, and the same agent is then fine-tuned on the
45nm version of the circuit.  A second agent trained from scratch with the
same target-node budget provides the "no transfer" comparison.

Usage:
    python examples/design_porting.py [--target 45nm]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.rl import (
    AgentConfig,
    GCNRLAgent,
    load_agent_weights,
    make_environment,
    save_agent_weights,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="two_tia")
    parser.add_argument("--source", default="180nm")
    parser.add_argument("--target", default="45nm")
    parser.add_argument("--pretrain-steps", type=int, default=120)
    parser.add_argument("--transfer-steps", type=int, default=60)
    args = parser.parse_args()

    # 1) Train the source agent at the source technology node.
    print(f"Pre-training GCN-RL on {args.circuit} @ {args.source} "
          f"({args.pretrain_steps} steps)...")
    source_env = make_environment(args.circuit, args.source)
    agent = GCNRLAgent(source_env, AgentConfig(warmup=30), seed=0)
    agent.train(args.pretrain_steps)
    print(f"  source-node best FoM: {source_env.best_reward:.3f}")

    # 2) Persist the learned weights (this is the transferable knowledge).
    weights_path = Path(tempfile.gettempdir()) / "gcn_rl_two_tia_180nm.pkl"
    save_agent_weights(agent, weights_path)
    print(f"  saved actor-critic weights to {weights_path}")

    # 3) Fine-tune the pretrained agent on the target node.
    print(f"\nPorting the design to {args.target} "
          f"({args.transfer_steps} fine-tuning steps)...")
    target_env = make_environment(args.circuit, args.target)
    transfer_agent = GCNRLAgent(
        target_env, AgentConfig(warmup=15), seed=1
    )
    load_agent_weights(transfer_agent, weights_path)
    transfer_agent.train(args.transfer_steps)

    # 4) Train a fresh agent on the target node with the same budget.
    scratch_env = make_environment(args.circuit, args.target)
    scratch_agent = GCNRLAgent(scratch_env, AgentConfig(warmup=15), seed=1)
    scratch_agent.train(args.transfer_steps)

    print("\nResults on the target node (same fine-tuning budget):")
    print(f"  with knowledge transfer : FoM {target_env.best_reward:.3f}")
    print(f"  trained from scratch    : FoM {scratch_env.best_reward:.3f}")
    if target_env.best_reward >= scratch_env.best_reward:
        print("  -> transfer matched or beat from-scratch training, as in the paper")
    else:
        print("  -> from-scratch won this run; increase the budgets to reduce noise")


if __name__ == "__main__":
    main()
