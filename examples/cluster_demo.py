"""Distributed-sweep demo: kill a worker mid-method and watch the steal.

Builds a small campaign grid over a shared jsonl store, launches one
worker subprocess (exactly what ``python -m repro.experiments worker``
runs), and SIGKILLs it the moment its first mid-method driver checkpoint
lands — no graceful shutdown of any kind.  A second, in-process worker
then joins the same store: it claims the untouched cells, waits out the
dead worker's lease, **steals** the orphaned cell, and resumes it from
the checkpoint mid-method.

The punchline is printed at the end: every cell is stored exactly once,
the total recorded evaluations equal the grid's budget exactly (the
steal re-paid nothing), and the sweep's records are bit-identical to an
uninterrupted serial run — the same invariants the ``cluster-smoke`` CI
job enforces.

Run with:
    PYTHONPATH=src python examples/cluster_demo.py [--steps 200]
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

from repro.cluster import CampaignWorker, ClusterLauncher, cell_states, lease_store_for
from repro.experiments import ExperimentSettings
from repro.store import open_run_store
from repro.store.campaign import Campaign, CampaignSpec


def _settings(steps: int) -> ExperimentSettings:
    settings = ExperimentSettings()
    settings.circuits = ["two_tia"]
    settings.methods = ["es", "human", "random"]
    settings.steps = steps
    settings.seeds = 1
    return settings


def _print_states(campaign: Campaign) -> None:
    lease_store = lease_store_for(campaign.store)
    now = lease_store.now()
    for state in cell_states(campaign, lease_store):
        print(f"  {state.describe(now)}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--steps", type=int, default=200,
        help="budget per cell (bigger = wider mid-method kill window)",
    )
    args = parser.parse_args()

    settings = _settings(args.steps)
    spec = CampaignSpec.from_settings(settings)
    budget = args.steps + 1 + args.steps  # es + human (1 eval) + random

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = os.path.join(tmp, "store")

        # --- 1. a worker subprocess starts the sweep ------------------------
        launcher = ClusterLauncher(
            spec, store_dir, workers=1, settings=settings,
            ttl=1.0, checkpoint_every=1, poll_interval=0.05,
            worker_prefix="victim",
        )
        victim = launcher.spawn()[0]
        print(f"victim worker started (pid {victim.pid})")

        # --- 2. kill -9 at the first mid-method checkpoint ------------------
        checkpoint_dir = os.path.join(store_dir, "checkpoints")
        deadline = time.time() + 120.0
        while time.time() < deadline:
            if victim.poll() is not None:
                raise SystemExit("victim finished before the kill; lower --steps?")
            if os.path.isdir(checkpoint_dir) and any(
                name.endswith(".ckpt") for name in os.listdir(checkpoint_dir)
            ):
                break
            time.sleep(0.005)
        victim.kill()
        victim.wait()
        print("victim SIGKILLed mid-method; its lease and checkpoint remain:")

        with open_run_store("jsonl", store_dir) as store:
            campaign = Campaign(spec, store, settings=settings)
            _print_states(campaign)

            # --- 3. a second worker joins, steals, and finishes -------------
            survivor = CampaignWorker(
                campaign, worker_id="survivor", ttl=1.0,
                checkpoint_every=1, poll_interval=0.05,
                progress=lambda assignment, outcome: print(
                    f"  survivor: {outcome} {assignment.request.method}"
                    + (" (stolen)" if assignment.stolen else "")
                    + (" (resumed mid-method)" if assignment.resumed else "")
                ),
            )
            print("survivor worker joining the sweep...")
            report = survivor.run()
            print(report.summary())
            _print_states(campaign)

            # --- 4. the zero-duplication audit ------------------------------
            store.refresh()
            rows = sum(
                1 for line in open(os.path.join(store_dir, "runs.jsonl"))
                if line.strip()
            )
            recorded = sum(
                sum(store.get(campaign.key_for(request)).step_evaluations)
                for request in campaign.requests()
            )
            print(
                f"store rows={rows} (cells={len(campaign.requests())}), "
                f"recorded evaluations={recorded} (budget={budget})"
            )
            assert rows == len(campaign.requests()) and recorded == budget
            print("zero duplicated simulations — the steal re-paid nothing")


if __name__ == "__main__":
    main()
