"""Optimization-as-a-service demo: shared simulator batches + a streamed run.

Starts an in-process server (:class:`ServerThread`), fans a fleet of
concurrent clients out against it, and prints what the coalescing funnel
did to their traffic: N evaluate requests collapse into a handful of shared
simulator batches (the *coalescing factor*), repeat submissions are served
from the design cache without a single new simulation, and a full
optimization run streams per-step progress over the same connection.

The same server is what ``python -m repro.experiments serve`` starts as a
standalone process — point ``ServiceClient`` (or ``curl``) at it from as
many processes or machines as you like; they all share one simulator
funnel, one design cache and one run store.

Run with:
    PYTHONPATH=src python examples/serve_demo.py [--clients 8] [--designs 4]
"""

from __future__ import annotations

import argparse
import threading

import numpy as np

from repro.circuits import get_circuit
from repro.service import ServerThread, ServiceClient, ServiceConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--designs", type=int, default=4, help="designs per client")
    parser.add_argument("--steps", type=int, default=30, help="run budget")
    args = parser.parse_args()

    circuit = get_circuit("two_tia")
    rng = np.random.default_rng(42)
    chunks = [
        [circuit.random_sizing(rng) for _ in range(args.designs)]
        for _ in range(args.clients)
    ]

    # A wide linger window makes the demo deterministic: every client's
    # designs land inside one coalescing window.
    with ServerThread(ServiceConfig(port=0, linger_ms=200.0)) as server:
        print(f"server listening on 127.0.0.1:{server.port}")

        # --- 1. concurrent evaluate traffic shares simulator batches --------
        barrier = threading.Barrier(args.clients)

        def worker(index: int) -> None:
            with ServiceClient(port=server.port) as client:
                barrier.wait(timeout=60)
                client.evaluate("two_tia", chunks[index])

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        with ServiceClient(port=server.port) as client:
            stats = client.stats()["coalescer"]
            print(
                f"{stats['requests']} evaluate requests "
                f"({stats['designs_submitted']} designs) -> "
                f"{stats['batches_issued']} simulator batches: "
                f"coalescing factor {stats['coalescing_factor']:.1f}x"
            )

            # --- 2. repeats never re-simulate -------------------------------
            before = client.stats()["evaluator"]["num_simulations"]
            client.evaluate("two_tia", chunks[0])
            after = client.stats()["evaluator"]["num_simulations"]
            print(
                f"repeat request: {args.designs} designs served from cache, "
                f"{int(after - before)} new simulations"
            )

            # --- 3. a full optimization run, streamed -----------------------
            print(f"streaming an ES run ({args.steps}-evaluation budget)...")
            record = client.run(
                "es",
                "two_tia",
                steps=args.steps,
                seed=0,
                on_progress=lambda frame: print(
                    f"  step {frame['step']}: evaluated={frame['evaluated']} "
                    f"best={frame['best_reward']:.4f}"
                ),
            )
            print(f"run done: best FoM {record['best_reward']:.4f}")


if __name__ == "__main__":
    main()
