"""Topology transfer: reuse knowledge from the Two-TIA on the Three-TIA.

Reproduces the paper's topology-transfer experiment (Section III-E, Table V)
at a small budget.  Both environments use the dimension-independent state
encoding (scalar component index instead of a one-hot), so the same GCN
actor-critic can process either topology graph.  The example compares three
agents fine-tuned on the Three-TIA with the same budget:

* GCN-RL initialised from Two-TIA weights (the paper's method),
* NG-RL (no graph aggregation) initialised from Two-TIA weights, and
* GCN-RL trained from scratch.

Usage:
    python examples/topology_transfer.py
"""

from __future__ import annotations

import argparse

from repro.rl import AgentConfig, GCNRLAgent, make_environment


def train_source(use_gcn: bool, circuit: str, steps: int, seed: int = 0):
    environment = make_environment(circuit, "180nm", transferable_state=True)
    config = AgentConfig(use_gcn=use_gcn, warmup=min(30, steps // 3))
    agent = GCNRLAgent(environment, config, seed=seed)
    agent.train(steps)
    return agent.state_dict(), environment.best_reward


def finetune(target: str, steps: int, use_gcn: bool, weights=None, seed: int = 1):
    environment = make_environment(target, "180nm", transferable_state=True)
    config = AgentConfig(use_gcn=use_gcn, warmup=min(15, steps // 3))
    agent = GCNRLAgent(environment, config, seed=seed)
    if weights is not None:
        agent.load_state_dict(weights)
    agent.train(steps)
    return environment.best_reward


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--source", default="two_tia")
    parser.add_argument("--target", default="three_tia")
    parser.add_argument("--pretrain-steps", type=int, default=120)
    parser.add_argument("--transfer-steps", type=int, default=60)
    args = parser.parse_args()

    print(f"Pre-training on {args.source} @ 180nm ({args.pretrain_steps} steps)...")
    gcn_weights, gcn_src_fom = train_source(True, args.source, args.pretrain_steps)
    ng_weights, ng_src_fom = train_source(False, args.source, args.pretrain_steps)
    print(f"  source FoM: GCN-RL {gcn_src_fom:.3f}, NG-RL {ng_src_fom:.3f}")

    print(f"\nFine-tuning on {args.target} ({args.transfer_steps} steps each)...")
    gcn_transfer = finetune(args.target, args.transfer_steps, True, gcn_weights)
    ng_transfer = finetune(args.target, args.transfer_steps, False, ng_weights)
    scratch = finetune(args.target, args.transfer_steps, True, None)

    print("\nThree-TIA results with the same fine-tuning budget (Table V protocol):")
    print(f"  GCN-RL transfer : {gcn_transfer:.3f}")
    print(f"  NG-RL transfer  : {ng_transfer:.3f}")
    print(f"  no transfer     : {scratch:.3f}")
    print(
        "\nThe paper's claim: the GCN is what makes topology transfer work — "
        "NG-RL transfer should sit near the no-transfer level while GCN-RL "
        "transfer converges higher."
    )


if __name__ == "__main__":
    main()
