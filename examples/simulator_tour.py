"""Tour of the analog-simulation substrate (no RL involved).

Builds a two-stage Miller op-amp netlist directly with the spice API and runs
every analysis the sizing environment relies on: DC operating point, AC
transfer function, output noise and a transient step response.  Useful as a
starting point for users who want to add new circuits or new measurements.

Usage:
    python examples/simulator_tour.py
"""

from __future__ import annotations

from repro.circuits import get_circuit
from repro.spice import (
    ac_analysis,
    dc_operating_point,
    noise_analysis,
    transient_analysis,
)
from repro.spice import measurements as meas
from repro.spice.ac import logspace_frequencies
from repro.spice.transient import step_waveform


def main() -> None:
    # Reuse the Two-Volt benchmark topology with its expert sizing.
    design = get_circuit("two_volt", "180nm")
    sizing = design.expert_sizing()
    circuit = design.build_circuit(sizing)
    print(circuit.summary())

    # --- DC operating point -------------------------------------------------
    op = dc_operating_point(circuit)
    print(f"\nDC operating point converged: {op.converged} "
          f"({op.iterations} Newton iterations)")
    for node in ("vout", "n1", "vbn"):
        print(f"  V({node}) = {op.voltage(node):.4f} V")
    print(f"  supply power = {op.supply_power() * 1e3:.3f} mW")
    for name, device in sorted(op.device_ops.items()):
        print(f"  {name}: region={device.region:<10s} Id={device.ids * 1e6:8.2f} uA "
              f"gm={device.gm * 1e3:.3f} mS")

    # --- AC analysis ---------------------------------------------------------
    freqs = logspace_frequencies(1e2, 1e9, 10)
    ac = ac_analysis(circuit, op, freqs)
    closed_loop = ac.voltage("vout")
    print("\nClosed-loop AC response:")
    print(f"  DC gain      : {meas.dc_gain_db(freqs, closed_loop):.2f} dB")
    print(f"  -3dB bandwidth: {meas.bandwidth_3db(freqs, closed_loop) / 1e6:.2f} MHz")
    print(f"  peaking      : {meas.gain_peaking_db(freqs, closed_loop):.2f} dB")

    # --- Noise analysis -------------------------------------------------------
    noise = noise_analysis(circuit, op, "vout", logspace_frequencies(1e3, 1e8, 4))
    print("\nOutput noise:")
    print(f"  spot density @100kHz: {noise.spot_density(1e5) * 1e9:.2f} nV/sqrt(Hz)")
    top = max(noise.contributions.items(), key=lambda kv: kv[1][0])
    print(f"  dominant contributor at low frequency: {top[0]}")

    # --- Transient analysis ----------------------------------------------------
    circuit["VIN"].waveform = step_waveform(2e-7, 0.9, 1.0, rise_time=1e-9)
    tran = transient_analysis(circuit, t_stop=2e-6, dt=2e-9)
    vout = tran.voltage("vout")
    settle = meas.settling_time(tran.times, vout, 2e-7, tolerance=0.01)
    print("\nTransient step response:")
    print(f"  output moves {abs(vout[-1] - vout[0]) * 1e3:.1f} mV, "
          f"settles in {settle * 1e9:.0f} ns (1% band)")


if __name__ == "__main__":
    main()
