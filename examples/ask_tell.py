"""Ask/tell quickstart: a custom 20-line strategy + mid-run kill & resume.

Every optimization method in this repo — random search, ES, BO, MACE, the
human expert and the GCN-RL agents — speaks the same stepwise protocol:
``ask()`` proposes candidate designs, the ``OptimizationDriver`` evaluates
them through the environment's evaluator, and ``tell()`` feeds the outcomes
back.  This demo shows the two things that buys you:

1. writing a brand-new method is ~20 lines (a (1+λ)-style hill climber),
   and it immediately gets batch evaluation, budget accounting, per-step
   callbacks and checkpointing for free;
2. any strategy can be killed mid-run and resumed from its last store
   checkpoint, finishing bit-identically to an uninterrupted run.

Run with:
    PYTHONPATH=src python examples/ask_tell.py [--budget 48]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments import OptimizationDriver, build_environment
from repro.optim import Strategy, get_strategy, register_strategy
from repro.store import MemoryStore, make_run_key


@register_strategy
class HillClimber(Strategy):
    """(1+λ) hill climber: sample around the incumbent, keep the best."""

    name = "hill_climber"

    def __init__(self, environment, seed: int = 0, step_size: float = 0.15):
        super().__init__(environment, seed)
        self.step_size = step_size
        self.center = np.zeros(self.dimension)
        self.best = -np.inf

    def ask(self) -> list:
        batch = min(8, self.budget_remaining())
        offsets = self.rng.standard_normal((batch, self.dimension))
        return self.vector_proposals(self.center + self.step_size * offsets)

    def tell(self, proposals, results) -> None:
        rewards = self.rewards_of(results)
        if rewards.max() > self.best:
            self.best = float(rewards.max())
            self.center = proposals[int(rewards.argmax())].vector

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(center=self.center.copy(), best=self.best)
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.center = np.asarray(state["center"], dtype=float).copy()
        self.best = float(state["best"])


def demo_custom_strategy(budget: int) -> None:
    print(f"=== custom ask/tell strategy ({budget} evaluations) ===")
    environment = build_environment("two_tia", "180nm")
    try:
        driver = OptimizationDriver(
            HillClimber(environment, seed=0),
            budget=budget,
            callbacks=[
                lambda event: print(
                    f"  step {event.step:2d}: {event.evaluated:3d}/{event.budget} evals, "
                    f"best FoM {event.best_reward:+.4f} ({event.wall_time_s:.2f}s)"
                )
            ],
        )
        result = driver.run()
        print(f"best FoM {result.best_reward:+.4f} in {result.wall_time_s:.2f}s")
    finally:
        environment.evaluator.close()


def demo_kill_and_resume(budget: int) -> None:
    print(f"\n=== mid-run kill & resume (ES, {budget} evaluations) ===")
    store = MemoryStore()
    key = make_run_key("es", "two_tia", "180nm", budget, 0)

    # First "process": checkpoint every step, killed after 2 ask/tell steps.
    environment = build_environment("two_tia", "180nm")
    try:
        driver = OptimizationDriver(
            get_strategy("es", environment, seed=0),
            budget=budget,
            store=store,
            run_key=key,
            checkpoint_every=1,
        )
        partial = driver.run(max_steps=2)
        if driver.finished:
            print(
                f"budget of {budget} fits in 2 ask/tell steps — nothing to "
                "kill; raise --budget to see a real mid-run pause"
            )
        else:
            print(
                f"killed after step {len(partial.step_evaluations)}: "
                f"{partial.num_evaluations}/{budget} evals, checkpoint saved"
            )
    finally:
        environment.evaluator.close()

    # Second "process": a *fresh* strategy + environment resume from the
    # stored checkpoint (strategy state + history + RNG stream) and finish.
    environment = build_environment("two_tia", "180nm")
    try:
        driver = OptimizationDriver(
            get_strategy("es", environment, seed=0),
            budget=budget,
            store=store,
            run_key=key,
        )
        resumed = driver.run()
        print(f"resumed (resumed={driver.resumed}) and finished: "
              f"{resumed.num_evaluations}/{budget} evals, best {resumed.best_reward:+.4f}")
    finally:
        environment.evaluator.close()

    # Reference: the same run uninterrupted — learning curves must match
    # bit for bit (same asks, same RNG stream, same evaluator batches).
    environment = build_environment("two_tia", "180nm")
    try:
        reference = OptimizationDriver(
            get_strategy("es", environment, seed=0), budget=budget
        ).run()
    finally:
        environment.evaluator.close()
    identical = np.array_equal(np.asarray(resumed.rewards), np.asarray(reference.rewards))
    print(f"bit-identical to an uninterrupted run: {identical}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=48, help="evaluations per demo")
    args = parser.parse_args()
    demo_custom_strategy(args.budget)
    demo_kill_and_resume(args.budget)


if __name__ == "__main__":
    main()
