"""Define a custom circuit and optimize it with every method in the library.

Shows the full extension workflow a downstream user would follow:

1. describe a new topology as a :class:`CircuitDesign` subclass (components,
   metrics, netlist builder, evaluation, expert reference),
2. register it so the experiment harness can find it by name, and
3. compare random search, Bayesian optimization and GCN-RL on it.

The example circuit is a simple five-transistor OTA driving a capacitive
load — small enough to run in seconds, but exercising the same machinery as
the paper's benchmark circuits.

Usage:
    python examples/custom_circuit.py [--steps 60]
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro.circuits import ComponentType, get_circuit, mosfet
from repro.circuits.base import CircuitDesign, MetricDef
from repro.circuits.builders import add_sized_components, mos_sizing
from repro.circuits.library import register_circuit
from repro.circuits.parameters import Sizing
from repro.env import SizingEnvironment, default_fom_config
from repro.optim import BayesianOptimization, RandomSearch
from repro.rl import AgentConfig, GCNRLAgent
from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
)
from repro.spice import measurements as meas
from repro.spice.ac import logspace_frequencies


class FiveTransistorOTA(CircuitDesign):
    """Classic 5T operational transconductance amplifier in unity feedback."""

    name = "five_t_ota"
    title = "Five-Transistor OTA"

    LOAD_CAPACITANCE = 1e-12
    BIAS_CURRENT = 20e-6
    FREQUENCIES = logspace_frequencies(1e3, 1e10, 6)

    def _define_components(self) -> List[mosfet]:
        nmos, pmos = ComponentType.NMOS, ComponentType.PMOS
        return [
            # M1 (drain at the mirror diode) is the non-inverting input; the
            # output at M2's drain feeds back to M2's gate for unity gain.
            mosfet("M1", nmos, "nd1", "vin", "ntail", "0", match_group="pair"),
            mosfet("M2", nmos, "vout_i", "vout", "ntail", "0", match_group="pair"),
            mosfet("M3", pmos, "nd1", "nd1", "vdd", "vdd", match_group="mirror"),
            mosfet("M4", pmos, "vout_i", "nd1", "vdd", "vdd", match_group="mirror"),
            mosfet("M5", nmos, "ntail", "vbn", "0", "0"),
            mosfet("M6", nmos, "vbn", "vbn", "0", "0"),
        ]

    def metric_definitions(self) -> List[MetricDef]:
        return [
            MetricDef("gain", "V/V", True, 1.0, "DC gain of the buffer stage"),
            MetricDef("bandwidth", "MHz", True, 1e-6, "-3dB bandwidth"),
            MetricDef("power", "uW", False, 1e6, "supply power"),
        ]

    def build_circuit(self, sizing: Sizing) -> Circuit:
        tech = self.technology
        circuit = Circuit(self.name)
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        circuit.add(
            VoltageSource("VIN", "vin", "0", dc=0.5 * tech.vdd, ac=1.0)
        )
        circuit.add(CurrentSource("IB", "vdd", "vbn", dc=self.BIAS_CURRENT))
        circuit.add(Capacitor("CL", "vout_i", "0", self.LOAD_CAPACITANCE))
        # Unity feedback: the amplifier output drives the inverting input M1.
        circuit.add(VoltageSource("VSHORT", "vout", "vout_i", dc=0.0))
        add_sized_components(circuit, self.components, sizing, tech)
        return circuit

    def evaluate(self, sizing: Sizing) -> Dict[str, float]:
        netlist = self.build_circuit(sizing)
        op = dc_operating_point(netlist)
        if not op.converged:
            return self.failure_metrics()
        ac = ac_analysis(netlist, op, self.FREQUENCIES)
        buffer_gain = ac.voltage("vout_i")
        return {
            "gain": meas.dc_gain(self.FREQUENCIES, buffer_gain),
            "bandwidth": meas.bandwidth_3db(self.FREQUENCIES, buffer_gain),
            "power": op.supply_power(),
            "simulation_failed": 0.0,
        }

    def expert_sizing(self) -> Sizing:
        f = self.technology.feature_size
        return self.parameter_space.apply_matching(
            {
                "M1": mos_sizing(100 * f, 2 * f, 2),
                "M2": mos_sizing(100 * f, 2 * f, 2),
                "M3": mos_sizing(50 * f, 4 * f, 1),
                "M4": mos_sizing(50 * f, 4 * f, 1),
                "M5": mos_sizing(60 * f, 4 * f, 2),
                "M6": mos_sizing(30 * f, 4 * f, 1),
            }
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=60)
    args = parser.parse_args()

    # Register the custom circuit so it can also be used by name elsewhere.
    register_circuit(FiveTransistorOTA)
    circuit = get_circuit("five_t_ota", "65nm")
    print(circuit.describe())

    fom = default_fom_config(circuit, num_calibration_samples=50)
    print("\nOptimizing with three different methods "
          f"({args.steps} simulations each):")

    results = {}
    for label, factory in (
        ("random search", lambda env: RandomSearch(env, seed=0)),
        ("bayesian opt.", lambda env: BayesianOptimization(env, seed=0)),
    ):
        environment = SizingEnvironment(circuit, fom)
        results[label] = factory(environment).run(args.steps).best_reward

    environment = SizingEnvironment(circuit, fom)
    agent = GCNRLAgent(
        environment, AgentConfig(warmup=max(10, args.steps // 3)), seed=0
    )
    agent.train(args.steps)
    results["GCN-RL"] = environment.best_reward

    print()
    for label, best in results.items():
        print(f"  {label:>14s}: best FoM {best:.3f}")
    print("\nBest GCN-RL metrics:")
    for name, value in (environment.best_metrics or {}).items():
        if name != "simulation_failed":
            print(f"  {name:>10s}: {value:.4g}")


if __name__ == "__main__":
    main()
