"""Tests for the vectorized batch MNA engine (``repro.spice.batch``)."""

import logging

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.spice import linalg
from repro.spice.ac import ac_analysis
from repro.spice.batch import (
    BatchIncompatibleError,
    BatchTemplate,
    batch_ac_analysis,
    batch_dc_operating_point,
    batch_noise_analysis,
    batch_small_signal_params,
)
from repro.spice.dc import dc_operating_point
from repro.spice.elements import Resistor
from repro.spice.noise import noise_analysis
from repro.technology.mosfet_model import small_signal_params


def _random_circuits(design, count, seed=42):
    rng = np.random.default_rng(seed)
    sizings = [design.random_sizing(rng) for _ in range(count)]
    return sizings, [design.build_circuit(s) for s in sizings]


class TestVectorizedModel:
    """The array model must match the scalar square-law model per element."""

    @pytest.mark.parametrize("flavour", ["nmos", "pmos"])
    def test_matches_scalar_model_across_regions(self, tech_180, flavour):
        card = getattr(tech_180, flavour)
        rng = np.random.default_rng(0)
        n = 256
        width = rng.uniform(0.2e-6, 100e-6, n)
        length = rng.uniform(0.18e-6, 2e-6, n)
        # Bias grid straddling cutoff, triode and saturation.
        vgs = rng.uniform(-0.5, 1.8, n)
        vds = rng.uniform(0.0, 1.8, n)
        vsb = rng.uniform(0.0, 0.9, n)
        batch = batch_small_signal_params(card, width, length, vgs, vds, vsb)
        regions = set()
        for i in range(n):
            scalar = small_signal_params(
                card, width[i], length[i], vgs[i], vds[i], vsb[i]
            )
            regions.add(scalar.region)
            for attr in ("ids", "gm", "gds", "gmb", "cgs", "cgd", "cdb"):
                assert getattr(batch, attr)[i] == pytest.approx(
                    getattr(scalar, attr), rel=1e-12, abs=1e-30
                ), f"{attr} mismatch at sample {i} ({scalar.region})"
        assert regions == {"cutoff", "triode", "saturation"}


class TestBatchTemplate:
    def test_rejects_mismatched_topologies(self, two_tia):
        sizings, circuits = _random_circuits(two_tia, 2)
        circuits[1].add(Resistor("Rextra", "vout", "0", 1e3))
        with pytest.raises(BatchIncompatibleError):
            BatchTemplate(circuits)

    def test_rejects_empty_batch(self):
        with pytest.raises(BatchIncompatibleError):
            BatchTemplate([])

    def test_subset_preserves_structure(self, two_tia):
        _, circuits = _random_circuits(two_tia, 5)
        template = BatchTemplate(circuits)
        sub = template.subset([0, 3])
        assert sub.batch_size == 2
        assert sub.num_unknowns == template.num_unknowns


class TestBatchDC:
    @pytest.mark.parametrize("name", ["two_tia", "three_tia", "two_volt"])
    def test_matches_scalar_newton(self, name):
        design = get_circuit(name)
        sizings, circuits = _random_circuits(design, 8)
        batch_ops = batch_dc_operating_point(circuits)
        for sizing, batch_op in zip(sizings, batch_ops):
            scalar_op = dc_operating_point(design.build_circuit(sizing))
            assert batch_op.converged == scalar_op.converged
            if scalar_op.converged:
                assert np.allclose(batch_op.x, scalar_op.x, rtol=1e-9, atol=1e-12)

    def test_device_ops_match_scalar_model(self, two_tia):
        _, circuits = _random_circuits(two_tia, 4)
        ops = batch_dc_operating_point(circuits)
        for circuit, op in zip(circuits, ops):
            for mosfet in circuit.mosfets():
                expected = mosfet.operating_point(op.x)
                got = op.device_ops[mosfet.name]
                assert got.gm == expected.gm
                assert got.ids == expected.ids

    def test_unconverged_designs_use_scalar_fallback(self, two_tia):
        """With a 1-iteration budget every design exercises the fallback path."""
        sizings, circuits = _random_circuits(two_tia, 3)
        batch_ops = batch_dc_operating_point(circuits, max_iterations=1)
        for sizing, batch_op in zip(sizings, batch_ops):
            scalar_op = dc_operating_point(
                two_tia.build_circuit(sizing), max_iterations=1
            )
            assert batch_op.converged == scalar_op.converged
            assert np.allclose(batch_op.x, scalar_op.x, rtol=1e-9, atol=1e-12)

    def test_one_hard_design_does_not_perturb_the_batch(self, two_tia, rng):
        """Convergence masks: results are independent of batch composition."""
        sizings = [two_tia.random_sizing(rng) for _ in range(4)]
        # An extreme corner design (all parameters at the lower bound).
        hard = two_tia.parameter_space.vector_to_sizing(
            [d.lower for d in two_tia.parameter_space.definitions]
        )
        alone = batch_dc_operating_point(
            [two_tia.build_circuit(s) for s in sizings]
        )
        mixed = batch_dc_operating_point(
            [two_tia.build_circuit(s) for s in sizings + [hard]]
        )
        for a, b in zip(alone, mixed[:-1]):
            assert a.converged == b.converged
            assert np.array_equal(a.x, b.x)


class TestBatchACNoise:
    def test_ac_matches_scalar_sweep(self, two_tia):
        _, circuits = _random_circuits(two_tia, 6)
        ops = batch_dc_operating_point(circuits)
        batch_acs = batch_ac_analysis(circuits, ops, two_tia.FREQUENCIES)
        for circuit, op, batch_ac in zip(circuits, ops, batch_acs):
            scalar_ac = ac_analysis(circuit, op, two_tia.FREQUENCIES)
            assert np.allclose(batch_ac.x, scalar_ac.x, rtol=1e-9, atol=1e-18)

    def test_noise_matches_scalar_adjoint(self, two_tia):
        _, circuits = _random_circuits(two_tia, 4)
        ops = batch_dc_operating_point(circuits)
        batch_noises = batch_noise_analysis(
            circuits, ops, "vout", two_tia.NOISE_FREQUENCIES
        )
        for circuit, op, batch_noise in zip(circuits, ops, batch_noises):
            scalar_noise = noise_analysis(
                circuit, op, "vout", two_tia.NOISE_FREQUENCIES
            )
            assert np.allclose(
                batch_noise.output_psd, scalar_noise.output_psd, rtol=1e-9
            )
            assert batch_noise.contributions.keys() == scalar_noise.contributions.keys()

    def test_differential_noise_output(self, tech_180):
        design = get_circuit("three_tia", tech_180)
        _, circuits = _random_circuits(design, 3)
        ops = batch_dc_operating_point(circuits)
        batch_noises = batch_noise_analysis(
            circuits, ops, "vouta", design.FREQUENCIES, output_node_neg="voutb"
        )
        for circuit, op, batch_noise in zip(circuits, ops, batch_noises):
            scalar_noise = noise_analysis(
                circuit, op, "vouta", design.FREQUENCIES, output_node_neg="voutb"
            )
            assert np.allclose(
                batch_noise.output_psd, scalar_noise.output_psd, rtol=1e-9
            )


class TestSolveStacked:
    def test_exact_solutions_for_regular_stack(self, rng):
        matrices = rng.normal(size=(5, 4, 4)) + np.eye(4) * 4
        rhs = rng.normal(size=(5, 4))
        got = linalg.solve_stacked(matrices, rhs)
        for i in range(5):
            assert np.array_equal(got[i], np.linalg.solve(matrices[i], rhs[i]))

    def test_singular_slice_falls_back_and_logs_once(self, rng, caplog):
        matrices = np.stack([np.eye(3), np.zeros((3, 3)), np.eye(3) * 2.0])
        rhs = np.ones((3, 3))
        linalg._fallback_logged = False
        with caplog.at_level(logging.WARNING, logger="repro.spice"):
            got = linalg.solve_stacked(matrices, rhs)
            linalg.solve_stacked(matrices, rhs)  # second call must stay silent
        warnings = [r for r in caplog.records if "singular MNA matrix" in r.message]
        assert len(warnings) == 1
        # Regular slices keep their exact solutions around the singular one.
        assert np.allclose(got[0], np.ones(3))
        assert np.allclose(got[2], 0.5 * np.ones(3))
        # The singular slice gets the minimum-norm least-squares answer.
        assert np.allclose(got[1], np.linalg.lstsq(matrices[1], rhs[1], rcond=None)[0])
