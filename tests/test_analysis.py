"""Tests for the ``repro.analysis`` static analyzer.

Each rule gets inline-source fixtures: a positive case (the violation is
found), a negative case (the sanctioned idiom is clean), a pragma case
(per-line suppression works) and a baseline case (grandfathered findings
don't fail strict runs).  The integration tests assert the real tree is
clean under ``--strict`` and that re-seeding one violation of each rule
flips the exit code — the property CI actually relies on.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import Baseline, run_analysis
from repro.analysis.cli import main
from repro.analysis.framework import Finding, SourceFile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_module(root, relpath, source):
    """Write dedented ``source`` at ``root/relpath`` and return its dir."""
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def findings_for(root, rule, relpath, source):
    write_module(root, relpath, source)
    findings, _ = run_analysis([str(root)], select=[rule])
    return [f for f in findings if f.rule == rule]


# --- framework ---------------------------------------------------------------------


class TestFramework:
    def test_pragma_parsing_specific_and_bare(self):
        source = SourceFile(
            "x.py",
            "a = 1  # repro-lint: ignore[rule-a, rule-b]\n"
            "b = 2  # repro-lint: ignore\n"
            "c = '# repro-lint: ignore'\n",
            tree=__import__("ast").parse("a = 1\nb = 2\nc = 'x'\n"),
        )
        assert source.ignored("rule-a", 1)
        assert source.ignored("rule-b", 1)
        assert not source.ignored("rule-c", 1)
        assert source.ignored("anything", 2)
        # Pragma text inside a string literal is not a pragma.
        assert not source.ignored("rule-a", 3)

    def test_guarded_by_annotation_extraction(self):
        import ast

        source = SourceFile(
            "x.py",
            "a = 1  # guarded-by: self._lock\n",
            tree=ast.parse("a = 1\n"),
        )
        assert source.guarded_by[1] == "self._lock"

    def test_finding_render_and_baseline_key(self):
        finding = Finding(rule="r", path="p.py", line=3, message="m")
        assert finding.render() == "p.py:3: [r] m"
        assert finding.baseline_key == ("r", "p.py", "m")

    def test_baseline_split_with_multiplicity_and_stale(self, tmp_path):
        f1 = Finding(rule="r", path="p.py", line=1, message="m")
        f2 = Finding(rule="r", path="p.py", line=9, message="m")  # same key
        baseline = Baseline.from_findings([f1])
        new, baselined, stale = baseline.split([f1, f2])
        # One entry covers one occurrence; the duplicate is new.
        assert len(baselined) == 1 and len(new) == 1
        # Round-trips through disk.
        path = tmp_path / "baseline.json"
        baseline.save(str(path))
        reloaded = Baseline.load(str(path))
        assert reloaded.counts == baseline.counts
        # A baselined finding that disappeared is reported stale.
        _, _, stale = reloaded.split([])
        assert stale == [("r", "p.py", "m")]

    def test_parse_error_becomes_finding(self, tmp_path):
        write_module(tmp_path, "bad.py", "def broken(:\n")
        findings, _ = run_analysis([str(tmp_path)])
        assert [f.rule for f in findings] == ["parse-error"]


# --- lock-discipline ---------------------------------------------------------------

THREADED_COUNTER = """
    import threading

    class Worker:
        def __init__(self):
            self.count = 0
            self._lock = threading.Lock()

        def start(self):
            threading.Thread(target=self._work).start()

        def _work(self):
            {mutation}

        def snapshot(self):
            return self.count
"""


class TestLockDiscipline:
    def test_unguarded_thread_mutation_found(self, tmp_path):
        findings = findings_for(
            tmp_path, "lock-discipline", "mod.py",
            THREADED_COUNTER.format(mutation="self.count += 1"),
        )
        assert len(findings) == 1
        assert "self.count" in findings[0].message

    def test_with_lock_is_clean(self, tmp_path):
        mutation = "with self._lock:\n                self.count += 1"
        findings = findings_for(
            tmp_path, "lock-discipline", "mod.py",
            THREADED_COUNTER.format(mutation=mutation),
        )
        assert findings == []

    def test_guarded_by_annotation_is_clean(self, tmp_path):
        findings = findings_for(
            tmp_path, "lock-discipline", "mod.py",
            THREADED_COUNTER.format(
                mutation="self.count += 1  # guarded-by: single-writer"
            ),
        )
        assert findings == []

    def test_executor_submit_is_an_entry_point(self, tmp_path):
        findings = findings_for(
            tmp_path, "lock-discipline", "mod.py",
            """
            from concurrent.futures import ThreadPoolExecutor

            class Pooled:
                def __init__(self):
                    self.done = 0

                def kick(self, pool: ThreadPoolExecutor):
                    pool.submit(self._job)

                def _job(self):
                    self.done += 1

                def report(self):
                    return self.done
            """,
        )
        assert len(findings) == 1

    def test_thread_subclass_run_is_an_entry_point(self, tmp_path):
        write_module(
            tmp_path, "mod.py",
            """
            import threading

            class Beat(threading.Thread):
                def __init__(self):
                    super().__init__()
                    self.lost = False

                def run(self):
                    self.lost = True
            """,
        )
        # Nobody on the main path touches ``lost``: thread-private, clean.
        findings, _ = run_analysis([str(tmp_path)], select=["lock-discipline"])
        assert findings == []
        # A cross-module reader makes it shared state.
        write_module(
            tmp_path, "mod2.py",
            """
            def watch(beat):
                return beat.lost
            """,
        )
        findings, _ = run_analysis([str(tmp_path)], select=["lock-discipline"])
        assert len(findings) == 1
        assert "self.lost" in findings[0].message

    def test_main_only_mutation_is_clean(self, tmp_path):
        findings = findings_for(
            tmp_path, "lock-discipline", "mod.py",
            """
            class Plain:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
            """,
        )
        assert findings == []


# --- determinism -------------------------------------------------------------------


class TestDeterminism:
    def test_global_np_random_in_scoped_module_found(self, tmp_path):
        findings = findings_for(
            tmp_path, "determinism", "repro/store/keys.py",
            """
            import numpy as np

            def jitter():
                return np.random.rand()
            """,
        )
        assert len(findings) == 1
        assert "np.random.rand" in findings[0].message

    def test_seeded_generator_is_clean(self, tmp_path):
        findings = findings_for(
            tmp_path, "determinism", "repro/store/keys.py",
            """
            import numpy as np
            import time

            def sample(seed):
                rng = np.random.default_rng(seed)
                started = time.perf_counter()
                return rng.standard_normal(), started
            """,
        )
        assert findings == []

    def test_wall_clock_in_scoped_module_found(self, tmp_path):
        findings = findings_for(
            tmp_path, "determinism", "repro/eval/keys.py",
            """
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """,
        )
        assert len(findings) == 2

    def test_out_of_scope_module_ignored(self, tmp_path):
        findings = findings_for(
            tmp_path, "determinism", "repro/cluster/jitterer.py",
            """
            import random

            def backoff():
                return random.random()
            """,
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = findings_for(
            tmp_path, "determinism", "repro/eval/keys.py",
            """
            import time

            def telemetry():
                return time.time()  # repro-lint: ignore[determinism]
            """,
        )
        assert findings == []


# --- failure-taxonomy --------------------------------------------------------------


class TestFailureTaxonomy:
    def test_unclassified_raise_on_eval_path_found(self, tmp_path):
        findings = findings_for(
            tmp_path, "failure-taxonomy", "repro/eval/backend.py",
            """
            def simulate():
                raise RuntimeError("solver exploded")
            """,
        )
        assert len(findings) == 1
        assert "RuntimeError" in findings[0].message

    def test_classified_exception_is_clean(self, tmp_path):
        findings = findings_for(
            tmp_path, "failure-taxonomy", "repro/eval/backend.py",
            """
            class SolverError(RuntimeError):
                failure_kind = "simulator_error"

            class DeepError(SolverError):
                pass

            def simulate():
                raise SolverError("np")

            def simulate_deep():
                raise DeepError("inherited kind still counts")
            """,
        )
        assert findings == []

    def test_reraise_and_validation_in_init_are_clean(self, tmp_path):
        findings = findings_for(
            tmp_path, "failure-taxonomy", "repro/eval/backend.py",
            """
            class Config:
                def __init__(self, n):
                    if n < 0:
                        raise ValueError("n must be >= 0")

            def forward():
                try:
                    return 1
                except Exception as error:
                    raise
            """,
        )
        assert findings == []

    def test_validation_outside_constructor_found(self, tmp_path):
        findings = findings_for(
            tmp_path, "failure-taxonomy", "repro/eval/backend.py",
            """
            def evaluate(x):
                raise ValueError("mid-evaluation validation")
            """,
        )
        assert len(findings) == 1

    def test_out_of_scope_path_ignored(self, tmp_path):
        findings = findings_for(
            tmp_path, "failure-taxonomy", "repro/optim/search.py",
            """
            def step():
                raise RuntimeError("optimizer internals may raise freely")
            """,
        )
        assert findings == []


# --- checkpoint-completeness -------------------------------------------------------


class TestCheckpointCompleteness:
    def test_uncovered_mutable_attr_found(self, tmp_path):
        findings = findings_for(
            tmp_path, "checkpoint-completeness", "mod.py",
            """
            class Strategy:
                def __init__(self):
                    self.step = 0
                    self.history = []

                def tell(self, r):
                    self.step += 1
                    self.history.append(r)

                def state_dict(self):
                    return {"step": self.step}
            """,
        )
        assert len(findings) == 1
        assert "self.history" in findings[0].message

    def test_covered_and_config_attrs_are_clean(self, tmp_path):
        findings = findings_for(
            tmp_path, "checkpoint-completeness", "mod.py",
            """
            class Strategy:
                def __init__(self, budget):
                    self.budget = budget      # never mutated: config
                    self.step = 0

                def tell(self, r):
                    self.step += 1

                def state_dict(self):
                    return {"step": self.step}
            """,
        )
        assert findings == []

    def test_pragma_on_assignment_exempts_attr(self, tmp_path):
        findings = findings_for(
            tmp_path, "checkpoint-completeness", "mod.py",
            """
            class Strategy:
                def __init__(self):
                    self.step = 0
                    self._cache = {}  # repro-lint: ignore[checkpoint-completeness]

                def tell(self, r):
                    self.step += 1
                    self._cache[r] = r

                def state_dict(self):
                    return {"step": self.step}
            """,
        )
        assert findings == []

    def test_pragma_on_state_dict_exempts_class(self, tmp_path):
        findings = findings_for(
            tmp_path, "checkpoint-completeness", "mod.py",
            """
            class WeightsOnly:
                def __init__(self):
                    self.weights = {}
                    self.log = []

                def train(self):
                    self.log.append(1)

                def state_dict(self):  # repro-lint: ignore[checkpoint-completeness]
                    return {"weights": self.weights}
            """,
        )
        assert findings == []


# --- CLI ---------------------------------------------------------------------------


class TestCli:
    def test_strict_fails_on_new_finding_and_baseline_absorbs(
        self, tmp_path, monkeypatch, capsys
    ):
        write_module(
            tmp_path, "repro/eval/backend.py",
            """
            def simulate():
                raise RuntimeError("boom")
            """,
        )
        monkeypatch.chdir(tmp_path)
        assert main([str(tmp_path), "--strict"]) == 1
        # Grandfather it, then the same tree passes.
        assert main([str(tmp_path), "--update-baseline"]) == 0
        assert main([str(tmp_path), "--strict"]) == 0

    def test_json_report_shape(self, tmp_path, monkeypatch, capsys):
        write_module(
            tmp_path, "repro/eval/backend.py",
            """
            def simulate():
                raise RuntimeError("boom")
            """,
        )
        monkeypatch.chdir(tmp_path)
        assert main([str(tmp_path), "--no-baseline", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1
        assert payload["new"][0]["rule"] == "failure-taxonomy"

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "no-such-rule", "src"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "lock-discipline",
            "determinism",
            "failure-taxonomy",
            "checkpoint-completeness",
        ):
            assert rule in out


# --- integration against the real tree ---------------------------------------------


def run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


class TestRealTree:
    def test_src_is_strict_clean(self):
        result = run_cli("src", "--strict")
        assert result.returncode == 0, result.stdout + result.stderr

    @pytest.mark.parametrize(
        "relpath,source,rule",
        [
            (
                "src/repro/eval/_seeded_lock_violation.py",
                """
                import threading

                class Counter:
                    def __init__(self):
                        self.hits = 0

                    def go(self):
                        threading.Thread(target=self._work).start()

                    def _work(self):
                        self.hits += 1

                    def read(self):
                        return self.hits
                """,
                "lock-discipline",
            ),
            (
                "src/repro/eval/_seeded_determinism_violation.py",
                """
                import numpy as np

                def key():
                    return np.random.rand()
                """,
                "determinism",
            ),
            (
                "src/repro/eval/_seeded_taxonomy_violation.py",
                """
                def evaluate():
                    raise RuntimeError("kindless")
                """,
                "failure-taxonomy",
            ),
            (
                "src/repro/eval/_seeded_checkpoint_violation.py",
                """
                class S:
                    def __init__(self):
                        self.step = 0
                        self.trace = []

                    def tell(self):
                        self.step += 1
                        self.trace.append(1)

                    def state_dict(self):
                        return {"step": self.step}
                """,
                "checkpoint-completeness",
            ),
        ],
        ids=["lock", "determinism", "taxonomy", "checkpoint"],
    )
    def test_seeded_violation_fails_strict(self, relpath, source, rule):
        """Re-introducing one violation of each rule flips --strict to 1."""
        path = os.path.join(REPO_ROOT, relpath)
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(textwrap.dedent(source))
            result = run_cli("src", "--strict")
            assert result.returncode == 1, result.stdout + result.stderr
            assert rule in result.stdout
        finally:
            os.remove(path)
