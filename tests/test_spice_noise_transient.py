"""Tests for the noise and transient analyses and the measurement helpers."""

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    MOSFET,
    Resistor,
    VoltageSource,
    dc_operating_point,
    noise_analysis,
    transient_analysis,
)
from repro.spice import measurements as meas
from repro.spice.elements import BOLTZMANN, ROOM_TEMPERATURE
from repro.spice.transient import pulse_waveform, step_waveform


class TestNoiseAnalysis:
    def test_resistor_divider_thermal_noise(self):
        # Two equal resistors from a zero-impedance source: the output noise
        # is that of the parallel combination, 4kT(R1 || R2).
        r = 10e3
        circuit = Circuit("noise_divider")
        circuit.add(VoltageSource("V1", "in", "0", dc=1.0))
        circuit.add(Resistor("R1", "in", "out", r))
        circuit.add(Resistor("R2", "out", "0", r))
        op = dc_operating_point(circuit)
        freqs = [1e3, 1e6]
        noise = noise_analysis(circuit, op, "out", freqs)
        expected = 4 * BOLTZMANN * ROOM_TEMPERATURE * (r / 2)
        assert noise.output_psd[0] == pytest.approx(expected, rel=1e-3)
        assert noise.output_psd[1] == pytest.approx(expected, rel=1e-3)

    def test_noise_contributions_sum_to_total(self):
        circuit = Circuit("noise_sum")
        circuit.add(VoltageSource("V1", "in", "0", dc=1.0))
        circuit.add(Resistor("R1", "in", "out", 5e3))
        circuit.add(Resistor("R2", "out", "0", 20e3))
        op = dc_operating_point(circuit)
        noise = noise_analysis(circuit, op, "out", [1e4])
        total = sum(v[0] for v in noise.contributions.values())
        assert total == pytest.approx(noise.output_psd[0], rel=1e-9)

    def test_mosfet_adds_flicker_noise_at_low_frequency(self, tech_180):
        circuit = Circuit("mos_noise")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(VoltageSource("VG", "g", "0", dc=0.7))
        circuit.add(Resistor("RD", "vdd", "d", 10e3))
        circuit.add(MOSFET("M1", "d", "g", "0", "0", tech_180.nmos, 20e-6, 0.36e-6))
        op = dc_operating_point(circuit)
        noise = noise_analysis(circuit, op, "d", [10.0, 1e7])
        # 1/f noise makes the low-frequency density larger.
        assert noise.output_psd[0] > noise.output_psd[1]

    def test_integrated_noise_positive_and_spot_interpolation(self):
        circuit = Circuit("integrated")
        circuit.add(VoltageSource("V1", "in", "0", dc=1.0))
        circuit.add(Resistor("R1", "in", "out", 1e4))
        circuit.add(Capacitor("C1", "out", "0", 1e-12))
        op = dc_operating_point(circuit)
        noise = noise_analysis(circuit, op, "out", np.logspace(2, 8, 13))
        assert noise.integrated_output_noise() > 0
        assert noise.spot_density(1e5) > 0

    def test_input_referred_psd_scaling(self):
        circuit = Circuit("inref")
        circuit.add(VoltageSource("V1", "in", "0", dc=1.0))
        circuit.add(Resistor("R1", "in", "out", 1e4))
        circuit.add(Resistor("R2", "out", "0", 1e4))
        op = dc_operating_point(circuit)
        noise = noise_analysis(circuit, op, "out", [1e4])
        gain = np.array([0.5])
        assert noise.input_referred_psd(gain)[0] == pytest.approx(
            noise.output_psd[0] / 0.25, rel=1e-9
        )


class TestTransientAnalysis:
    def test_rc_step_response_time_constant(self):
        r, c = 1e3, 1e-9  # tau = 1 us
        circuit = Circuit("rc_step")
        circuit.add(
            VoltageSource(
                "VIN", "in", "0", dc=0.0, waveform=step_waveform(0.0, 0.0, 1.0, 1e-9)
            )
        )
        circuit.add(Resistor("R1", "in", "out", r))
        circuit.add(Capacitor("C1", "out", "0", c))
        tran = transient_analysis(circuit, t_stop=5e-6, dt=2e-8)
        assert tran.converged
        vout = tran.voltage("out")
        # After one time constant the output should be near 63% of the step.
        index_tau = int(1e-6 / 2e-8)
        assert vout[index_tau] == pytest.approx(0.63, abs=0.05)
        assert tran.final_voltage("out") == pytest.approx(1.0, abs=0.02)

    def test_dc_circuit_stays_at_operating_point(self):
        circuit = Circuit("static")
        circuit.add(VoltageSource("V1", "in", "0", dc=1.0))
        circuit.add(Resistor("R1", "in", "out", 1e3))
        circuit.add(Resistor("R2", "out", "0", 1e3))
        tran = transient_analysis(circuit, t_stop=1e-6, dt=1e-7)
        vout = tran.voltage("out")
        assert np.allclose(vout, 0.5, atol=1e-6)

    def test_current_source_pulse_into_rc(self):
        circuit = Circuit("ipulse")
        circuit.add(
            CurrentSource(
                "I1",
                "0",
                "out",
                dc=0.0,
                waveform=pulse_waveform(1e-6, 2e-6, 0.0, 1e-3, edge_time=1e-8),
            )
        )
        circuit.add(Resistor("R1", "out", "0", 1e3))
        circuit.add(Capacitor("C1", "out", "0", 1e-10))
        tran = transient_analysis(circuit, t_stop=5e-6, dt=5e-8)
        vout = tran.voltage("out")
        mid = int(2.5e-6 / 5e-8)
        assert vout[mid] == pytest.approx(1.0, abs=0.05)
        assert abs(vout[-1]) < 0.05

    def test_mosfet_source_follower_tracks_step(self, tech_180):
        circuit = Circuit("follower")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(
            VoltageSource(
                "VG",
                "g",
                "0",
                dc=1.2,
                waveform=step_waveform(1e-6, 1.2, 1.4, 1e-8),
            )
        )
        circuit.add(MOSFET("M1", "vdd", "g", "s", "0", tech_180.nmos, 50e-6, 0.36e-6))
        circuit.add(Resistor("RS", "s", "0", 10e3))
        circuit.add(Capacitor("CL", "s", "0", 1e-12))
        tran = transient_analysis(circuit, t_stop=3e-6, dt=2e-8)
        vs = tran.voltage("s")
        assert vs[-1] > vs[0] + 0.1  # output follows the gate step upward


class TestMeasurements:
    def test_settling_time_of_exponential(self):
        times = np.linspace(0, 10e-6, 1001)
        tau = 1e-6
        waveform = 1.0 - np.exp(-(times - 1e-6).clip(0) / tau)
        settle = meas.settling_time(times, waveform, t_event=1e-6, tolerance=0.01)
        # 1% settling of a first-order system takes ~4.6 tau.
        assert settle == pytest.approx(4.6e-6, rel=0.1)

    def test_settling_time_zero_for_flat_waveform(self):
        times = np.linspace(0, 1e-6, 100)
        waveform = np.ones_like(times)
        assert meas.settling_time(times, waveform, 1e-7) == 0.0

    def test_overshoot_measurement(self):
        times = np.linspace(0, 1.0, 101)
        waveform = np.ones_like(times)
        waveform[50] = 1.5
        assert meas.overshoot(times, waveform, 0.0) == pytest.approx(0.5)

    def test_phase_margin_of_single_pole_system(self):
        freqs = np.logspace(0, 8, 400)
        pole = 1e3
        gain = 1000.0 / (1 + 1j * freqs / pole)
        pm = meas.phase_margin(freqs, gain)
        assert pm == pytest.approx(90.0, abs=3.0)

    def test_phase_margin_of_two_pole_system_is_smaller(self):
        freqs = np.logspace(0, 8, 400)
        gain = 1000.0 / ((1 + 1j * freqs / 1e3) * (1 + 1j * freqs / 1e5))
        pm = meas.phase_margin(freqs, gain)
        # Analytic phase margin of this two-pole loop gain is ~18 degrees.
        assert pm == pytest.approx(18.0, abs=5.0)
        assert pm < 90.0

    def test_unity_gain_frequency(self):
        freqs = np.logspace(0, 8, 400)
        gain = 1000.0 / (1 + 1j * freqs / 1e3)
        fu = meas.unity_gain_frequency(freqs, gain)
        assert fu == pytest.approx(1e6, rel=0.1)

    def test_gain_peaking_detects_resonance(self):
        freqs = np.logspace(0, 6, 200)
        flat = np.ones_like(freqs)
        assert meas.gain_peaking_db(freqs, flat) == 0.0
        peaked = flat.copy()
        peaked[100] = 2.0
        assert meas.gain_peaking_db(freqs, peaked) == pytest.approx(6.02, abs=0.1)

    def test_psrr_computation(self):
        freqs = np.array([1.0, 10.0])
        signal = np.array([100.0, 100.0])
        supply = np.array([0.1, 1.0])
        assert meas.psrr_db(freqs, signal, supply) == pytest.approx(60.0, abs=0.1)

    def test_load_and_line_regulation(self):
        assert meas.load_regulation(1.0, 0.9, 1e-3, 5e-3) == pytest.approx(25.0)
        assert meas.line_regulation(1.0, 1.01, 1.8, 2.0) == pytest.approx(0.05)
        assert meas.load_regulation(1.0, 1.0, 1e-3, 1e-3) == 0.0

    def test_bandwidth_of_flat_response_is_sweep_end(self):
        freqs = np.logspace(0, 6, 50)
        gain = np.ones_like(freqs)
        assert meas.bandwidth_3db(freqs, gain) == pytest.approx(1e6)

    def test_crossover_frequencies(self):
        freqs = np.logspace(0, 6, 200)
        gain = 10.0 / (1 + 1j * freqs / 1e3)
        crossings = meas.crossover_frequencies(freqs, gain, level=1.0)
        assert len(crossings) == 1
        assert crossings[0] == pytest.approx(1e4, rel=0.1)

    def test_dc_gain_db(self):
        freqs = np.array([1.0, 10.0])
        gain = np.array([100.0, 100.0])
        assert meas.dc_gain_db(freqs, gain) == pytest.approx(40.0)
