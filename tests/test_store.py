"""Tests for the run store subsystem (repro.store).

Covers RunRecord/RunKey serialization round-trips, the backend conformance
contract (the same semantics for Memory/Jsonl/Sqlite), persistence across
reopen, the runner's store integration (including the evaluator-leak and
falsy-zero fixes), campaign expansion and kill-and-resume, and the store CLI.
"""

import json

import numpy as np
import pytest

from repro.experiments import (
    ExperimentSettings,
    RunRecord,
    run_key_for,
    run_method,
    run_methods,
)
from repro.experiments import runner as runner_module
from repro.experiments.__main__ import main as cli_main
from repro.store import (
    Campaign,
    CampaignSpec,
    JsonlStore,
    MemoryStore,
    RunKey,
    SqliteStore,
    STORE_BACKENDS,
    make_run_key,
    open_run_store,
)

PERSISTENT_BACKENDS = ("jsonl", "sqlite")


def sample_key(seed=0, method="random", **overrides):
    return make_run_key(
        method,
        "two_tia",
        "180nm",
        5,
        seed,
        weight_overrides=overrides or None,
        evaluator_key=("evaluator", "local", None, 0),
        extra={"warmup": 3},
    )


def sample_record(seed=0, best=1.5):
    return RunRecord(
        method="random",
        circuit="two_tia",
        technology="180nm",
        seed=seed,
        steps=5,
        best_reward=np.float64(best),
        best_metrics={"gain": np.float64(123.4), "power": 1e-3},
        rewards=[np.float64(0.1), np.float64(best)],
        extra={"note": "unit-test"},
    )


@pytest.fixture(params=STORE_BACKENDS)
def store(request, tmp_path):
    st = open_run_store(request.param, tmp_path / "store")
    yield st
    st.close()


class TestRunRecordRoundTrip:
    def test_to_dict_is_json_serializable(self):
        text = json.dumps(sample_record().to_dict())
        assert "unit-test" in text

    def test_round_trip_exact(self):
        record = sample_record()
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()
        assert clone.best_reward == record.best_reward
        assert clone.rewards == [float(r) for r in record.rewards]
        assert clone.best_metrics == {
            k: float(v) for k, v in record.best_metrics.items()
        }
        assert clone.extra == record.extra

    def test_round_trip_through_json_text(self):
        record = sample_record(best=-2.25)
        clone = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone.best_reward == -2.25
        np.testing.assert_array_equal(clone.best_so_far(), record.best_so_far())

    def test_extra_values_survive_persistence_unchanged(self, tmp_path):
        record = sample_record()
        record.extra = {"transfer": "gcn_transfer_from_two_tia"}
        for backend in STORE_BACKENDS:
            with open_run_store(backend, tmp_path / backend) as store:
                store.put(sample_key(), record)
                assert store.get(sample_key()).extra == record.extra

    def test_from_dict_tolerates_missing_optionals(self):
        clone = RunRecord.from_dict(
            {
                "method": "bo",
                "circuit": "ldo",
                "technology": "45nm",
                "seed": 1,
                "steps": 9,
                "best_reward": 0.5,
            }
        )
        assert clone.best_metrics == {} and clone.rewards == [] and clone.extra == {}


class TestRunKey:
    def test_override_order_does_not_change_key(self):
        a = make_run_key("gcn_rl", "two_tia", "180nm", 5, 0, weight_overrides={"gain": 10.0, "power": 2.0})
        b = make_run_key("gcn_rl", "two_tia", "180nm", 5, 0, weight_overrides={"power": 2.0, "gain": 10.0})
        assert a == b and a.key_id() == b.key_id()

    def test_distinct_coordinates_distinct_ids(self):
        ids = {sample_key(seed=s).key_id() for s in range(5)}
        assert len(ids) == 5
        assert sample_key().key_id() != sample_key(method="bo").key_id()

    def test_dict_round_trip(self):
        key = sample_key(gain=10.0)
        clone = RunKey.from_dict(json.loads(json.dumps(key.to_dict())))
        assert clone == key and clone.key_id() == key.key_id()

    def test_canonical_is_stable_json(self):
        key = sample_key()
        assert json.loads(key.canonical()) == key.to_dict()

    def test_runner_key_covers_rl_warmup(self):
        settings = ExperimentSettings()
        rl = run_key_for("gcn_rl", "two_tia", steps=30, settings=settings)
        assert ("warmup", settings.rl_warmup(30)) in rl.extra
        assert run_key_for("random", "two_tia", steps=30).extra == ()

    def test_transfer_key_covers_pretraining_source(self):
        from repro.experiments.transfer import transfer_run_key

        settings = ExperimentSettings()
        args = ("three_tia", "65nm", settings, 0, True, False, True, "transfer")
        from_180 = transfer_run_key(*args, source="180nm")
        from_250 = transfer_run_key(*args, source="250nm")
        assert from_180 != from_250
        # Scratch runs have no pretraining source, so it must not split keys.
        scratch = ("three_tia", "65nm", settings, 0, True, False, False, "no_transfer")
        assert transfer_run_key(*scratch, source="180nm") == transfer_run_key(
            *scratch, source="250nm"
        )


class TestStoreConformance:
    def test_put_get_contains_len(self, store):
        key, record = sample_key(), sample_record()
        assert store.get(key) is None and key not in store and len(store) == 0
        store.put(key, record)
        assert key in store and len(store) == 1
        got = store.get(key)
        assert got.to_dict() == record.to_dict()

    def test_latest_wins_on_duplicate_put(self, store):
        key = sample_key()
        store.put(key, sample_record(best=1.0))
        store.put(key, sample_record(best=9.0))
        assert len(store) == 1
        assert store.get(key).best_reward == 9.0

    def test_query_filters(self, store):
        for seed in range(3):
            store.put(sample_key(seed=seed), sample_record(seed=seed))
        other = make_run_key("bo", "ldo", "45nm", 5, 0)
        store.put(other, RunRecord("bo", "ldo", "45nm", 0, 5, 7.0))
        assert len(store.query()) == 4
        assert len(store.query(method="random")) == 3
        assert len(store.query(circuit="ldo")) == 1
        assert len(store.query(technology="180nm")) == 3
        assert len(store.query(seed=1)) == 1
        assert store.query(method="random", seed=2)[0].seed == 2
        assert store.query(method="es") == []

    def test_items_and_keys(self, store):
        key, record = sample_key(), sample_record()
        store.put(key, record)
        stored = list(store.items())
        assert len(stored) == 1
        assert stored[0].key == key
        assert stored[0].record.best_reward == record.best_reward
        assert store.keys() == [key]

    def test_clear(self, store):
        store.put(sample_key(), sample_record())
        store.clear()
        assert len(store) == 0 and store.get(sample_key()) is None

    def test_context_manager_and_describe(self, store):
        with store as st:
            st.put(sample_key(), sample_record())
            assert "1" in st.describe()

    def test_refresh_is_safe_on_every_backend(self, store):
        store.put(sample_key(), sample_record())
        store.refresh()
        assert len(store) == 1


class TestJsonlRefresh:
    """refresh() makes other handles' appends visible (cluster workers)."""

    def test_refresh_sees_sibling_appends(self, tmp_path):
        first = JsonlStore(tmp_path)
        second = JsonlStore(tmp_path)
        second.put(sample_key(seed=1), sample_record(seed=1))
        # The sibling's append is invisible until the stale handle refreshes.
        assert first.get(sample_key(seed=1)) is None
        first.refresh()
        assert first.get(sample_key(seed=1)) is not None
        first.close(), second.close()

    def test_refresh_skips_torn_tail_without_truncating(self, tmp_path):
        store = JsonlStore(tmp_path)
        store.put(sample_key(seed=1), sample_record(seed=1))
        # Simulate another worker's append caught mid-write.
        with open(store.path, "a", encoding="utf-8") as log:
            log.write('{"key": {"meth')
        size_before = len(open(store.path).read())
        store.refresh()
        # The complete rows replay; the in-flight line is neither indexed
        # nor destroyed (a concurrent writer may still be finishing it).
        assert len(store) == 1
        assert len(open(store.path).read()) == size_before
        store.close()

    def test_refresh_still_raises_on_mid_log_corruption(self, tmp_path):
        store = JsonlStore(tmp_path)
        store.put(sample_key(seed=1), sample_record(seed=1))
        store.put(sample_key(seed=2), sample_record(seed=2))
        data = open(store.path).readlines()
        data[0] = data[0][:20] + "\n"  # damage a *middle* line
        open(store.path, "w").writelines(data)
        with pytest.raises(ValueError, match="corrupt"):
            store.refresh()
        store.close()


class TestCheckpointConformance:
    """Every backend speaks the same mid-run checkpoint contract."""

    def test_put_get_delete_round_trip(self, store):
        key = sample_key()
        assert store.get_checkpoint(key) is None
        store.put_checkpoint(key, b"state-1")
        assert store.get_checkpoint(key) == b"state-1"
        # Latest wins on re-put.
        store.put_checkpoint(key, b"state-2")
        assert store.get_checkpoint(key) == b"state-2"
        store.delete_checkpoint(key)
        assert store.get_checkpoint(key) is None
        # Deleting an absent checkpoint is a no-op.
        store.delete_checkpoint(key)

    def test_checkpoints_keyed_by_run_identity(self, store):
        store.put_checkpoint(sample_key(seed=0), b"zero")
        store.put_checkpoint(sample_key(seed=1), b"one")
        assert store.get_checkpoint(sample_key(seed=0)) == b"zero"
        assert store.get_checkpoint(sample_key(seed=1)) == b"one"

    def test_checkpoint_independent_of_final_record(self, store):
        key = sample_key()
        store.put_checkpoint(key, b"mid-run")
        store.put(key, sample_record())
        # Records and checkpoints are separate channels under one key.
        assert store.get(key) is not None
        assert store.get_checkpoint(key) == b"mid-run"

    def test_clear_drops_checkpoints(self, store):
        store.put_checkpoint(sample_key(), b"blob")
        store.clear()
        assert store.get_checkpoint(sample_key()) is None

    @pytest.mark.parametrize("backend", PERSISTENT_BACKENDS)
    def test_checkpoints_survive_reopen(self, backend, tmp_path):
        key = sample_key()
        with open_run_store(backend, tmp_path / "store") as store:
            store.put_checkpoint(key, b"durable")
        with open_run_store(backend, tmp_path / "store") as store:
            assert store.get_checkpoint(key) == b"durable"


class TestPersistence:
    @pytest.mark.parametrize("backend", PERSISTENT_BACKENDS)
    def test_reopen_sees_data(self, backend, tmp_path):
        directory = tmp_path / "store"
        key, record = sample_key(), sample_record()
        with open_run_store(backend, directory) as store:
            store.put(key, record)
        with open_run_store(backend, directory) as store:
            assert len(store) == 1
            assert store.get(key).to_dict() == record.to_dict()

    @pytest.mark.parametrize("backend", PERSISTENT_BACKENDS)
    def test_latest_wins_across_reopen(self, backend, tmp_path):
        directory = tmp_path / "store"
        key = sample_key()
        with open_run_store(backend, directory) as store:
            store.put(key, sample_record(best=1.0))
        with open_run_store(backend, directory) as store:
            store.put(key, sample_record(best=5.0))
        with open_run_store(backend, directory) as store:
            assert store.get(key).best_reward == 5.0 and len(store) == 1

    def test_jsonl_replay_skips_blank_lines(self, tmp_path):
        directory = tmp_path / "store"
        with open_run_store("jsonl", directory) as store:
            store.put(sample_key(), sample_record())
        with open((directory / "runs.jsonl"), "a", encoding="utf-8") as handle:
            handle.write("\n")
        with open_run_store("jsonl", directory) as store:
            assert len(store) == 1

    def test_jsonl_truncated_final_line_is_recovered(self, tmp_path):
        directory = tmp_path / "store"
        with open_run_store("jsonl", directory) as store:
            store.put(sample_key(), sample_record())
        # Simulate a process killed mid-append: a partial trailing line.
        with open(directory / "runs.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"key": {"method": "es", "circ')
        with open_run_store("jsonl", directory) as store:
            assert len(store) == 1
            store.put(sample_key(seed=1), sample_record(seed=1))
        # The partial line was trimmed, so the healed log replays cleanly.
        with open_run_store("jsonl", directory) as store:
            assert len(store) == 2

    def test_jsonl_mid_log_corruption_raises(self, tmp_path):
        directory = tmp_path / "store"
        with open_run_store("jsonl", directory) as store:
            store.put(sample_key(), sample_record())
        log = directory / "runs.jsonl"
        log.write_text("not json at all\n" + log.read_text())
        with pytest.raises(ValueError, match="corrupt run-store log"):
            open_run_store("jsonl", directory)

    def test_jsonl_complete_final_line_with_bad_schema_raises(self, tmp_path):
        # A newline-terminated, valid-JSON final line that merely fails to
        # deserialize is NOT a mid-append kill; it must never be deleted.
        directory = tmp_path / "store"
        with open_run_store("jsonl", directory) as store:
            store.put(sample_key(), sample_record())
        log = directory / "runs.jsonl"
        before = log.read_text()
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"key": {"method": "es"}}\n')
        with pytest.raises(ValueError, match="corrupt run-store log"):
            open_run_store("jsonl", directory)
        assert log.read_text().startswith(before)  # nothing was truncated

    def test_factory_rejects_unknown_backend_and_missing_dir(self, tmp_path):
        with pytest.raises(ValueError):
            open_run_store("redis", tmp_path)
        with pytest.raises(ValueError):
            open_run_store("jsonl")
        assert isinstance(open_run_store(), MemoryStore)
        assert isinstance(open_run_store("jsonl", tmp_path / "a"), JsonlStore)
        assert isinstance(open_run_store("sqlite", tmp_path / "b"), SqliteStore)


class TestRunnerStoreIntegration:
    def test_run_method_executes_once_per_store_key(self, tmp_path, monkeypatch):
        builds = []
        real_build = runner_module.build_environment

        def counting_build(*args, **kwargs):
            builds.append(args)
            return real_build(*args, **kwargs)

        monkeypatch.setattr(runner_module, "build_environment", counting_build)
        with open_run_store("jsonl", tmp_path / "store") as store:
            first = run_method("random", "two_tia", steps=3, seed=0, store=store)
            second = run_method("random", "two_tia", steps=3, seed=0, store=store)
        assert len(builds) == 1
        assert second.to_dict() == first.to_dict()

    def test_store_survives_process_boundary(self, tmp_path):
        directory = tmp_path / "store"
        with open_run_store("sqlite", directory) as store:
            first = run_method("random", "two_tia", steps=3, seed=1, store=store)
        # A "new process": a fresh store handle over the same directory.
        with open_run_store("sqlite", directory) as store:
            key = run_key_for("random", "two_tia", steps=3, seed=1)
            cached = store.get(key)
            assert cached is not None
            assert cached.best_reward == first.best_reward
            assert cached.rewards == [float(r) for r in first.rewards]

    def test_use_cache_false_still_writes_explicit_store(self, tmp_path):
        with open_run_store("jsonl", tmp_path / "store") as store:
            run_method("human", "two_tia", seed=0, store=store, use_cache=False)
            assert len(store) == 1

    def test_evaluator_closed_when_optimizer_raises(self, monkeypatch):
        closed = []
        real_build = runner_module.build_environment

        def tracking_build(*args, **kwargs):
            environment = real_build(*args, **kwargs)
            original_close = environment.evaluator.close

            def close():
                closed.append(True)
                original_close()

            environment.evaluator.close = close
            return environment

        def raising_strategy(*args, **kwargs):
            raise RuntimeError("optimizer exploded")

        monkeypatch.setattr(runner_module, "build_environment", tracking_build)
        monkeypatch.setattr(runner_module, "build_strategy", raising_strategy)
        with pytest.raises(RuntimeError, match="optimizer exploded"):
            run_method("random", "two_tia", steps=2, seed=0, use_cache=False)
        assert closed == [True]

    def test_run_methods_zero_seeds_not_replaced(self, monkeypatch):
        calls = []

        def fake_run_method(method, circuit_name, **kwargs):
            calls.append((method, kwargs["steps"], kwargs["seed"]))
            return RunRecord(method, circuit_name, "180nm", kwargs["seed"], 1, 0.0)

        monkeypatch.setattr(runner_module, "run_method", fake_run_method)
        results = run_methods(["random"], "two_tia", steps=0, seeds=0)
        assert results["random"] == [] and calls == []

    def test_run_methods_zero_steps_passed_through(self, monkeypatch):
        calls = []

        def fake_run_method(method, circuit_name, **kwargs):
            calls.append(kwargs["steps"])
            return RunRecord(method, circuit_name, "180nm", kwargs["seed"], 1, 0.0)

        monkeypatch.setattr(runner_module, "run_method", fake_run_method)
        # "human" always runs one seed, so steps=0 must reach run_method
        # instead of falling back to settings.steps.
        results = run_methods(["human"], "two_tia", steps=0, seeds=0)
        assert len(results["human"]) == 1 and calls == [0]


def tiny_spec(**overrides):
    spec = CampaignSpec(
        methods=["human", "random"],
        circuits=["two_tia"],
        technologies=["180nm"],
        seeds=2,
        steps=3,
    )
    for key, value in overrides.items():
        setattr(spec, key, value)
    return spec


class TestCampaign:
    def test_expand_grid_human_single_seed(self):
        requests = tiny_spec().expand()
        # human contributes 1 cell, random contributes seeds=2 cells.
        assert len(requests) == 3
        assert [r.seed for r in requests if r.method == "human"] == [0]
        assert [r.seed for r in requests if r.method == "random"] == [0, 1]

    def test_expand_weight_override_axis(self):
        spec = tiny_spec(
            methods=["gcn_rl"],
            weight_overrides=[None, {"gain": 10.0}],
            seeds=1,
        )
        requests = spec.expand()
        assert len(requests) == 2
        assert requests[0].weight_overrides is None
        assert requests[1].weight_overrides == {"gain": 10.0}

    def test_from_settings_matches_table1_grid(self):
        settings = ExperimentSettings()
        settings.methods = ["human", "random"]
        settings.circuits = ["two_tia", "ldo"]
        settings.seeds = 2
        settings.steps = 7
        spec = CampaignSpec.from_settings(settings)
        assert spec.technologies == ["180nm"]
        assert len(spec.expand()) == 2 * (1 + 2)

    def test_full_sweep_then_all_skipped(self, tmp_path):
        store = open_run_store("jsonl", tmp_path / "store")
        campaign = Campaign(tiny_spec(), store)
        report = campaign.run()
        assert report.total == 3 and report.executed == 3 and report.skipped == 0
        assert not report.interrupted and report.remaining == 0
        again = campaign.run()
        assert again.executed == 0 and again.skipped == 3
        assert campaign.status() == {
            "total": 3,
            "completed": 3,
            "pending": 0,
            "quarantined": 0,
        }
        store.close()

    def test_interrupted_campaign_resumes_bit_identical(self, tmp_path):
        spec = tiny_spec()
        # Uninterrupted reference sweep.
        with open_run_store("jsonl", tmp_path / "ref") as ref_store:
            reference = Campaign(spec, ref_store).run()

        # Sweep killed after one execution...
        with open_run_store("jsonl", tmp_path / "resume") as store:
            partial = Campaign(spec, store).run(max_runs=1)
            assert partial.interrupted
            assert partial.executed == 1 and partial.remaining == 2

        # ...then restarted against the same directory in a fresh handle.
        with open_run_store("jsonl", tmp_path / "resume") as store:
            resumed = Campaign(spec, store).run()
            assert resumed.executed == 2 and resumed.skipped == 1
            assert not resumed.interrupted

            final = Campaign(spec, store).run()
        assert final.executed == 0 and final.skipped == 3
        assert len(final.records) == len(reference.records) == 3
        for ours, theirs in zip(final.records, reference.records):
            assert ours.best_reward == theirs.best_reward
            assert ours.rewards == theirs.rewards
            assert ours.method == theirs.method and ours.seed == theirs.seed

    def test_mid_method_kill_resumes_bit_identical(self, tmp_path):
        # Kill *inside* a method (not between methods): after max_runs
        # completed cells the next cell runs max_steps ask/tell steps and
        # pauses with a checkpoint; the next sweep resumes it mid-run.
        spec = tiny_spec(methods=["human", "random", "es"], seeds=1, steps=20)

        with open_run_store("jsonl", tmp_path / "ref") as ref_store:
            reference = Campaign(spec, ref_store).run()

        with open_run_store("jsonl", tmp_path / "resume") as store:
            outcomes = []
            partial = Campaign(spec, store).run(
                max_runs=2,
                max_steps=1,
                checkpoint_every=1,
                progress=lambda request, outcome: outcomes.append(
                    (request.method, outcome)
                ),
            )
            assert partial.interrupted and partial.partial == 1
            assert partial.executed == 2
            assert outcomes[-1] == ("es", "interrupted")
            assert "partial=1" in partial.summary()
            # The es cell has no final record yet, but a checkpoint exists.
            es_key = spec.expand()[-1].key()
            assert store.get(es_key) is None
            assert store.get_checkpoint(es_key) is not None

        with open_run_store("jsonl", tmp_path / "resume") as store:
            resumed = Campaign(spec, store).run()
            assert resumed.executed == 1 and resumed.skipped == 2
            # The completed record superseded the mid-run checkpoint.
            assert store.get_checkpoint(spec.expand()[-1].key()) is None

        with open_run_store("jsonl", tmp_path / "resume") as store:
            final = Campaign(spec, store).run()
        assert final.executed == 0 and final.skipped == 3
        for ours, theirs in zip(final.records, reference.records):
            assert ours.method == theirs.method
            assert ours.rewards == theirs.rewards
            assert ours.best_reward == theirs.best_reward
            assert ours.step_evaluations == theirs.step_evaluations

    def test_max_steps_requires_max_runs(self, tmp_path):
        with open_run_store("jsonl", tmp_path / "store") as store:
            with pytest.raises(ValueError, match="max_runs"):
                Campaign(tiny_spec(), store).run(max_steps=1)

    def test_fully_stored_transfer_skips_pretraining(self, tmp_path, monkeypatch):
        from repro.experiments import clear_transfer_cache, transfer
        from repro.experiments.transfer import technology_transfer_experiment

        settings = ExperimentSettings()
        settings.pretrain_steps = 6
        settings.transfer_steps = 5
        settings.transfer_warmup = 2
        settings.seeds = 1
        settings.transfer_targets = ["250nm"]

        clear_transfer_cache()
        with open_run_store("jsonl", tmp_path / "store") as store:
            first = technology_transfer_experiment("two_tia", settings, store=store)

        # "New process": in-process caches gone, only the store remains —
        # and pretraining must not run when every finetune cell is stored.
        clear_transfer_cache()

        def no_pretrain(*args, **kwargs):
            raise AssertionError("pretrain_weights ran despite a full store")

        monkeypatch.setattr(transfer, "pretrain_weights", no_pretrain)
        with open_run_store("jsonl", tmp_path / "store") as store:
            second = technology_transfer_experiment("two_tia", settings, store=store)
        for target in settings.transfer_targets:
            for ours, theirs in zip(
                second.transfer[target] + second.no_transfer[target],
                first.transfer[target] + first.no_transfer[target],
            ):
                assert ours.best_reward == theirs.best_reward
                assert ours.rewards == [float(r) for r in theirs.rewards]
        clear_transfer_cache()

    def test_progress_callback_outcomes(self, tmp_path):
        outcomes = []
        with open_run_store("sqlite", tmp_path / "store") as store:
            campaign = Campaign(tiny_spec(seeds=1), store)
            campaign.run(progress=lambda request, outcome: outcomes.append(outcome))
            assert outcomes == ["executed", "executed"]
            outcomes.clear()
            campaign.run(progress=lambda request, outcome: outcomes.append(outcome))
            assert outcomes == ["skipped", "skipped"]


class TestStoreCLI:
    def _env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CIRCUITS", "two_tia")
        monkeypatch.setenv("REPRO_METHODS", "human,random")

    def test_sweep_interrupt_resume_and_zero_reexecution(
        self, tmp_path, capsys, monkeypatch
    ):
        self._env(monkeypatch)
        store_dir = str(tmp_path / "store")
        base = ["sweep", "--steps", "3", "--seeds", "1", "--store-dir", store_dir]
        assert cli_main(base + ["--max-runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "sweep interrupted: total=2 executed=1 skipped=0 remaining=1" in out

        assert cli_main(base) == 0
        out = capsys.readouterr().out
        assert "sweep complete: total=2 executed=1 skipped=1 remaining=0" in out

        assert cli_main(base) == 0
        out = capsys.readouterr().out
        assert "sweep complete: total=2 executed=0 skipped=2 remaining=0" in out

    def test_ls_and_export(self, tmp_path, capsys, monkeypatch):
        self._env(monkeypatch)
        store_dir = str(tmp_path / "store")
        assert (
            cli_main(["sweep", "--steps", "3", "--seeds", "1", "--store-dir", store_dir])
            == 0
        )
        capsys.readouterr()

        assert cli_main(["ls", "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out and "human" in out and "random" in out

        assert cli_main(["ls", "--store-dir", store_dir, "--method", "random"]) == 0
        out = capsys.readouterr().out
        assert "1 run(s)" in out

        output = tmp_path / "runs.json"
        assert (
            cli_main(
                ["export", "--store-dir", store_dir, "--output", str(output)]
            )
            == 0
        )
        rows = json.loads(output.read_text())
        assert len(rows) == 2
        assert {row["key"]["method"] for row in rows} == {"human", "random"}
        clone = RunRecord.from_dict(rows[0]["record"])
        assert np.isfinite(clone.best_reward)

    def test_ls_without_store_is_graceful(self, capsys):
        assert cli_main(["ls"]) == 0
        assert "no store configured" in capsys.readouterr().out

    def test_sweep_without_store_refuses(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["sweep", "--steps", "3", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "no store configured" in out and "sweep" not in out

    def test_persistent_backend_without_dir_fails_fast(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["ls", "--store-backend", "jsonl"])
        assert "requires --store-dir" in capsys.readouterr().err

    def test_env_store_dir_alone_implies_persistent_backend(
        self, tmp_path, capsys, monkeypatch
    ):
        self._env(monkeypatch)
        store_dir = tmp_path / "env-store"
        monkeypatch.setenv("REPRO_STORE_DIR", str(store_dir))
        assert cli_main(["sweep", "--steps", "3", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "sweep complete: total=2 executed=2" in out
        assert (store_dir / "runs.jsonl").exists()  # not a throwaway MemoryStore

    def test_table1_reuses_sweep_store(self, tmp_path, capsys, monkeypatch):
        self._env(monkeypatch)
        store_dir = str(tmp_path / "store")
        assert (
            cli_main(["sweep", "--steps", "3", "--seeds", "1", "--store-dir", store_dir])
            == 0
        )
        capsys.readouterr()
        builds = []
        real_build = runner_module.build_environment

        def counting_build(*args, **kwargs):
            builds.append(args)
            return real_build(*args, **kwargs)

        monkeypatch.setattr(runner_module, "build_environment", counting_build)
        assert (
            cli_main(
                ["table1", "--steps", "3", "--seeds", "1", "--store-dir", store_dir]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table I" in out
        # Every Table I cell was served from the persistent store.
        assert builds == []
