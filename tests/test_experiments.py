"""Tests for the experiment harness (runner, records, tables, figures)."""

import numpy as np
import pytest

from repro.experiments import (
    CIRCUIT_LABELS,
    ExperimentSettings,
    METHOD_LABELS,
    RunRecord,
    Table,
    aggregate,
    clear_run_cache,
    figure5_learning_curves,
    max_learning_curve,
    mean_learning_curve,
    run_method,
    run_methods,
    table1_fom_comparison,
)
from repro.experiments.__main__ import main as cli_main
from repro.experiments.figures import FigureData


def tiny_settings(**overrides):
    settings = ExperimentSettings()
    settings.steps = 6
    settings.seeds = 1
    settings.pretrain_steps = 6
    settings.transfer_steps = 5
    settings.transfer_warmup = 2
    settings.circuits = ["two_tia"]
    settings.methods = ["human", "random", "gcn_rl"]
    for key, value in overrides.items():
        setattr(settings, key, value)
    return settings


class TestSettings:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEPS", "123")
        assert ExperimentSettings().steps == 123

    def test_invalid_env_value_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEPS", "not_a_number")
        assert ExperimentSettings().steps == 80

    def test_rl_warmup_bounded(self):
        settings = ExperimentSettings()
        assert settings.rl_warmup(10) < 10
        assert settings.rl_warmup(10000) >= 5

    def test_labels_cover_all_defaults(self):
        settings = ExperimentSettings()
        assert set(settings.methods) <= set(METHOD_LABELS)
        assert set(settings.circuits) <= set(CIRCUIT_LABELS)


class TestRecords:
    def _records(self):
        return [
            RunRecord("random", "two_tia", "180nm", 0, 5, 1.0, rewards=[0.2, 1.0, 0.5]),
            RunRecord("random", "two_tia", "180nm", 1, 5, 2.0, rewards=[0.1, 2.0, 1.5]),
        ]

    def test_aggregate_mean_std(self):
        agg = aggregate(self._records())
        assert agg.mean == pytest.approx(1.5)
        assert agg.std == pytest.approx(0.5)
        assert "±" in str(agg)

    def test_aggregate_empty(self):
        agg = aggregate([])
        assert agg.count == 0

    def test_best_so_far_monotone(self):
        record = self._records()[0]
        curve = record.best_so_far()
        assert np.all(np.diff(curve) >= 0)

    def test_mean_and_max_learning_curves(self):
        records = self._records()
        mean_curve = mean_learning_curve(records)
        max_curve = max_learning_curve(records)
        assert len(mean_curve) == 3
        assert np.all(max_curve >= mean_curve - 1e-12)


class TestRunner:
    def test_human_method_single_evaluation(self):
        record = run_method("human", "two_tia", steps=10, use_cache=False)
        assert record.steps == 1
        assert record.best_metrics["gain"] > 0

    def test_random_method_runs_requested_steps(self):
        record = run_method("random", "two_tia", steps=4, seed=0, use_cache=False)
        assert len(record.rewards) == 4

    def test_rl_method_runs(self):
        settings = tiny_settings()
        record = run_method(
            "gcn_rl", "two_tia", steps=5, seed=0, settings=settings, use_cache=False
        )
        assert len(record.rewards) == 5
        assert np.isfinite(record.best_reward)

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            run_method("gradient_descent", "two_tia", use_cache=False)

    def test_run_cache_returns_same_object(self):
        clear_run_cache()
        first = run_method("random", "two_tia", steps=3, seed=7)
        second = run_method("random", "two_tia", steps=3, seed=7)
        assert first is second
        clear_run_cache()

    def test_run_methods_uses_single_seed_for_human(self):
        settings = tiny_settings(methods=["human", "random"], seeds=2)
        results = run_methods(settings.methods, "two_tia", settings)
        assert len(results["human"]) == 1
        assert len(results["random"]) == 2


class TestTablesAndFigures:
    def test_table_render_alignment(self):
        table = Table("T", ["row_a"], ["col"])
        table.set("row_a", "col", "1.0")
        text = table.render()
        assert "row_a" in text and "col" in text and "1.0" in text

    def test_table1_structure_with_tiny_budget(self):
        clear_run_cache()
        settings = tiny_settings()
        table = table1_fom_comparison(settings)
        assert table.row_labels == ["Human", "Random", "GCN-RL"]
        assert table.column_labels == ["Two-TIA"]
        assert table.get("Random", "Two-TIA") != ""
        clear_run_cache()

    def test_figure5_series_shapes(self):
        clear_run_cache()
        settings = tiny_settings(methods=["random", "gcn_rl"])
        figures = figure5_learning_curves(settings)
        figure = figures["two_tia"]
        assert set(figure.series) == {"Random", "GCN-RL"}
        for series in figure.series.values():
            assert len(series) == settings.steps
        clear_run_cache()

    def test_figure_csv_and_ascii_export(self):
        figure = FigureData("demo", "step", "fom")
        figure.add_series("A", np.array([0.0, 0.5, 1.0]))
        figure.add_series("B", np.array([0.1, 0.2, 0.3]))
        csv = figure.to_csv()
        assert csv.splitlines()[0] == "step,A,B"
        ascii_plot = figure.render_ascii(width=20, height=5)
        assert "legend" in ascii_plot

    def test_empty_figure_renders(self):
        figure = FigureData("empty", "x", "y")
        assert "no data" in figure.render_ascii()
        assert figure.to_csv().startswith("step")


class TestCLI:
    def test_cli_table1_smoke(self, capsys, monkeypatch):
        clear_run_cache()
        monkeypatch.setenv("REPRO_STEPS", "4")
        monkeypatch.setenv("REPRO_SEEDS", "1")
        monkeypatch.setenv("REPRO_CIRCUITS", "two_tia")
        monkeypatch.setenv("REPRO_METHODS", "human,random")
        exit_code = cli_main(["table1", "--steps", "4", "--seeds", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table I" in captured.out
        clear_run_cache()
