"""Tests for the component model and parameter spaces (incl. property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.components import (
    ComponentType,
    MAX_ACTION_DIM,
    TYPE_ORDER,
    capacitor,
    mosfet,
    resistor,
    validate_components,
)
from repro.circuits.parameters import ParameterDef, ParameterSpace
from repro.technology import get_node


class TestComponentSpecs:
    def test_mosfet_action_names(self):
        assert ComponentType.NMOS.action_names == ("w", "l", "m")
        assert ComponentType.PMOS.action_dim == 3

    def test_passive_action_names(self):
        assert ComponentType.RESISTOR.action_names == ("r",)
        assert ComponentType.CAPACITOR.action_names == ("c",)

    def test_max_action_dim_covers_all_types(self):
        assert MAX_ACTION_DIM == max(t.action_dim for t in TYPE_ORDER)

    def test_type_one_hot_is_valid(self):
        comp = mosfet("T1", ComponentType.PMOS, "d", "g", "s", "b")
        one_hot = comp.type_one_hot()
        assert sum(one_hot) == 1.0
        assert one_hot[TYPE_ORDER.index(ComponentType.PMOS)] == 1.0

    def test_mosfet_constructor_rejects_passive_type(self):
        with pytest.raises(ValueError):
            mosfet("T1", ComponentType.RESISTOR, "d", "g", "s", "b")

    def test_validate_rejects_duplicate_names(self):
        comps = [resistor("R1", "a", "b"), resistor("R1", "b", "c")]
        with pytest.raises(ValueError):
            validate_components(comps)

    def test_validate_rejects_mixed_type_match_group(self):
        comps = [
            resistor("R1", "a", "b", match_group="m"),
            capacitor("C1", "a", "b", match_group="m"),
        ]
        with pytest.raises(ValueError):
            validate_components(comps)

    def test_validate_accepts_consistent_group(self):
        comps = [
            mosfet("T1", ComponentType.NMOS, "d", "g", "s", "b", match_group="pair"),
            mosfet("T2", ComponentType.NMOS, "d2", "g2", "s", "b", match_group="pair"),
        ]
        validate_components(comps)


@pytest.fixture(scope="module")
def simple_space():
    tech = get_node("180nm")
    comps = [
        mosfet("T1", ComponentType.NMOS, "d", "g", "s", "b", match_group="pair"),
        mosfet("T2", ComponentType.NMOS, "d2", "g2", "s", "b", match_group="pair"),
        resistor("R1", "d", "out"),
        capacitor("C1", "out", "0"),
    ]
    return ParameterSpace(comps, tech)


class TestParameterDef:
    def test_denormalize_bounds(self):
        p = ParameterDef("X", "r", 10.0, 1000.0, log_scale=True)
        assert p.denormalize(-1.0) == pytest.approx(10.0)
        assert p.denormalize(1.0) == pytest.approx(1000.0)
        assert p.denormalize(0.0) == pytest.approx(100.0)

    def test_denormalize_linear_scale(self):
        p = ParameterDef("X", "m", 1.0, 9.0, log_scale=False)
        assert p.denormalize(0.0) == pytest.approx(5.0)

    def test_denormalize_clips_out_of_range_actions(self):
        p = ParameterDef("X", "r", 10.0, 1000.0)
        assert p.denormalize(-5.0) == pytest.approx(10.0)
        assert p.denormalize(5.0) == pytest.approx(1000.0)

    def test_integer_parameter_rounds(self):
        p = ParameterDef("X", "m", 1.0, 32.0, log_scale=False, integer=True)
        assert p.denormalize(0.013) == round(p.denormalize(0.013))

    def test_grid_snapping(self):
        p = ParameterDef("X", "w", 1e-6, 1e-5, log_scale=False, grid=1e-7)
        value = p.refine(3.456e-6)
        assert abs(value / 1e-7 - round(value / 1e-7)) < 1e-9

    @given(st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_normalize_denormalize_roundtrip(self, action):
        p = ParameterDef("X", "r", 10.0, 1e6, log_scale=True)
        value = p.denormalize(action)
        back = p.normalize(value)
        assert back == pytest.approx(action, abs=1e-6)

    @given(st.floats(min_value=-3.0, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_denormalized_value_always_in_bounds(self, action):
        p = ParameterDef("X", "w", 3.6e-7, 3.6e-4, log_scale=True, grid=1.8e-8)
        value = p.denormalize(action)
        assert p.lower <= value <= p.upper


class TestParameterSpace:
    def test_dimension_counts_all_parameters(self, simple_space):
        # 2 MOSFETs x 3 + 1 resistor + 1 capacitor = 8
        assert simple_space.dimension == 8

    def test_vector_roundtrip(self, simple_space, rng):
        sizing = simple_space.random_sizing(rng)
        vector = simple_space.sizing_to_vector(sizing)
        back = simple_space.vector_to_sizing(vector)
        assert simple_space.sizing_to_vector(back) == pytest.approx(vector, rel=1e-9)

    def test_vector_length_mismatch_raises(self, simple_space):
        with pytest.raises(ValueError):
            simple_space.vector_to_sizing([1.0, 2.0])

    def test_matching_group_forces_equal_sizes(self, simple_space, rng):
        sizing = simple_space.random_sizing(rng)
        assert sizing["T1"] == sizing["T2"]

    def test_actions_to_sizing_respects_matching(self, simple_space):
        actions = {
            "T1": [1.0, 1.0, 1.0],
            "T2": [-1.0, -1.0, -1.0],
            "R1": [0.0],
            "C1": [0.0],
        }
        sizing = simple_space.actions_to_sizing(actions)
        assert sizing["T1"]["w"] == pytest.approx(sizing["T2"]["w"])
        assert sizing["T1"]["l"] == pytest.approx(sizing["T2"]["l"])

    def test_center_sizing_is_within_bounds(self, simple_space):
        sizing = simple_space.center_sizing()
        lower, upper = simple_space.bounds_arrays()
        vector = simple_space.sizing_to_vector(sizing)
        assert np.all(vector >= lower - 1e-12)
        assert np.all(vector <= upper + 1e-12)

    def test_clip_vector(self, simple_space):
        lower, upper = simple_space.bounds_arrays()
        clipped = simple_space.clip_vector(upper * 10)
        assert np.all(clipped <= upper + 1e-12)

    def test_multiplier_is_integer_valued(self, simple_space, rng):
        sizing = simple_space.random_sizing(rng)
        assert sizing["T1"]["m"] == int(sizing["T1"]["m"])

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_sizing_always_within_bounds(self, seed):
        tech = get_node("180nm")
        comps = [
            mosfet("T1", ComponentType.NMOS, "d", "g", "s", "b"),
            resistor("R1", "d", "out"),
        ]
        space = ParameterSpace(comps, tech)
        sizing = space.random_sizing(np.random.default_rng(seed))
        vector = space.sizing_to_vector(sizing)
        lower, upper = space.bounds_arrays()
        assert np.all(vector >= lower - 1e-12)
        assert np.all(vector <= upper + 1e-12)

    def test_sizing_to_actions_roundtrip(self, simple_space, rng):
        sizing = simple_space.random_sizing(rng)
        actions = simple_space.sizing_to_actions(sizing)
        back = simple_space.actions_to_sizing(actions)
        for name in sizing:
            for key in sizing[name]:
                assert back[name][key] == pytest.approx(
                    sizing[name][key], rel=1e-6, abs=1e-12
                )

    def test_component_definitions_lookup(self, simple_space):
        defs = simple_space.component_definitions("R1")
        assert len(defs) == 1
        assert defs[0].name == "r"
