"""Tests for the synthetic PDK (technology nodes and model cards)."""

import math

import pytest

from repro.technology import (
    AVAILABLE_NODES,
    DeviceLimits,
    MOSFETModelCard,
    TechnologyNode,
    get_node,
    list_nodes,
    register_node,
)
from repro.technology.mosfet_model import small_signal_params


class TestPDKRegistry:
    def test_all_five_paper_nodes_available(self):
        names = set(list_nodes())
        assert {"250nm", "180nm", "130nm", "65nm", "45nm"} <= names

    def test_list_nodes_sorted_by_feature_size_descending(self):
        nodes = list_nodes()
        sizes = [get_node(n).feature_size for n in nodes]
        assert sizes == sorted(sizes, reverse=True)

    def test_get_node_case_insensitive(self):
        assert get_node("180NM") is get_node("180nm")

    def test_get_unknown_node_raises(self):
        with pytest.raises(KeyError):
            get_node("7nm")

    def test_register_custom_node(self):
        base = get_node("180nm")
        custom = TechnologyNode(
            name="custom_350nm",
            feature_size=350e-9,
            vdd=3.3,
            nmos=base.nmos,
            pmos=base.pmos,
            mos_limits=base.mos_limits,
            passive_limits=base.passive_limits,
        )
        register_node(custom)
        assert get_node("custom_350nm").vdd == 3.3
        del AVAILABLE_NODES["custom_350nm"]


class TestScalingTrends:
    def test_supply_voltage_decreases_with_scaling(self):
        vdds = [get_node(n).vdd for n in ("250nm", "180nm", "130nm", "65nm", "45nm")]
        assert vdds == sorted(vdds, reverse=True)

    def test_threshold_voltage_decreases_with_scaling(self):
        vths = [
            get_node(n).nmos.vth0
            for n in ("250nm", "180nm", "130nm", "65nm", "45nm")
        ]
        assert vths == sorted(vths, reverse=True)

    def test_oxide_capacitance_increases_with_scaling(self):
        cox = [get_node(n).nmos.cox for n in ("250nm", "180nm", "65nm", "45nm")]
        assert cox == sorted(cox)

    def test_pmos_mobility_lower_than_nmos(self):
        for name in list_nodes():
            node = get_node(name)
            assert node.pmos.u0 < node.nmos.u0


class TestFeatureVector:
    def test_mosfet_feature_vector_has_five_entries(self, tech_180):
        features = tech_180.feature_vector("nmos")
        assert len(features) == 5
        assert features[1] == pytest.approx(tech_180.nmos.vth0)

    def test_passive_feature_vector_is_zero(self, tech_180):
        assert tech_180.feature_vector("resistor") == [0.0] * 5
        assert tech_180.feature_vector("capacitor") == [0.0] * 5

    def test_unknown_device_type_raises(self, tech_180):
        with pytest.raises(KeyError):
            tech_180.model_card("finfet")

    def test_describe_contains_key_quantities(self, tech_180):
        summary = tech_180.describe()
        assert summary["vdd"] == pytest.approx(1.8)
        assert summary["nmos_vth0"] > 0


class TestDeviceLimits:
    def test_clamp_width_respects_bounds(self, tech_180):
        limits = tech_180.mos_limits
        assert limits.clamp_width(0.0) == pytest.approx(limits.min_width)
        assert limits.clamp_width(1.0) == pytest.approx(limits.max_width)

    def test_clamp_width_snaps_to_grid(self, tech_180):
        limits = tech_180.mos_limits
        value = limits.clamp_width(1.234567e-6)
        assert abs(value / limits.grid - round(value / limits.grid)) < 1e-9

    def test_clamp_multiplier_is_integer_in_range(self, tech_180):
        limits = tech_180.mos_limits
        assert limits.clamp_multiplier(0.2) == limits.min_multiplier
        assert limits.clamp_multiplier(1e9) == limits.max_multiplier
        assert limits.clamp_multiplier(3.6) == 4

    def test_passive_limits_clamp(self, tech_180):
        limits = tech_180.passive_limits
        assert limits.clamp_resistance(0.0) == limits.min_resistance
        assert limits.clamp_capacitance(1.0) == limits.max_capacitance


class TestSquareLawModel:
    def test_cutoff_region_below_threshold(self, tech_180):
        op = small_signal_params(tech_180.nmos, 1e-6, 180e-9, vgs=0.1, vds=0.9)
        assert op.region == "cutoff"
        assert op.ids < 1e-7

    def test_saturation_region(self, tech_180):
        op = small_signal_params(tech_180.nmos, 10e-6, 360e-9, vgs=0.8, vds=1.5)
        assert op.region == "saturation"
        assert op.ids > 0
        assert op.gm > 0
        assert op.gds > 0

    def test_triode_region_at_low_vds(self, tech_180):
        op = small_signal_params(tech_180.nmos, 10e-6, 360e-9, vgs=0.9, vds=0.05)
        assert op.region == "triode"

    def test_current_increases_with_width(self, tech_180):
        narrow = small_signal_params(tech_180.nmos, 2e-6, 360e-9, 0.8, 1.5)
        wide = small_signal_params(tech_180.nmos, 20e-6, 360e-9, 0.8, 1.5)
        assert wide.ids > narrow.ids

    def test_current_decreases_with_length(self, tech_180):
        short = small_signal_params(tech_180.nmos, 10e-6, 200e-9, 0.8, 1.5)
        long = small_signal_params(tech_180.nmos, 10e-6, 2000e-9, 0.8, 1.5)
        assert short.ids > long.ids

    def test_body_effect_raises_threshold(self, tech_180):
        no_body = small_signal_params(tech_180.nmos, 10e-6, 360e-9, 0.8, 1.5, vsb=0.0)
        with_body = small_signal_params(tech_180.nmos, 10e-6, 360e-9, 0.8, 1.5, vsb=0.5)
        assert with_body.vth > no_body.vth
        assert with_body.ids < no_body.ids

    def test_gm_is_derivative_of_ids_wrt_vgs(self, tech_180):
        card = tech_180.nmos
        w, l, vgs, vds = 10e-6, 360e-9, 0.8, 1.5
        delta = 1e-5
        up = small_signal_params(card, w, l, vgs + delta, vds).ids
        down = small_signal_params(card, w, l, vgs - delta, vds).ids
        numeric = (up - down) / (2 * delta)
        analytic = small_signal_params(card, w, l, vgs, vds).gm
        assert numeric == pytest.approx(analytic, rel=0.05)

    def test_gds_is_derivative_of_ids_wrt_vds(self, tech_180):
        card = tech_180.nmos
        w, l, vgs, vds = 10e-6, 360e-9, 0.8, 1.5
        delta = 1e-5
        up = small_signal_params(card, w, l, vgs, vds + delta).ids
        down = small_signal_params(card, w, l, vgs, vds - delta).ids
        numeric = (up - down) / (2 * delta)
        analytic = small_signal_params(card, w, l, vgs, vds).gds
        assert numeric == pytest.approx(analytic, rel=0.05)

    def test_kp_matches_mobility_times_cox(self, tech_180):
        card = tech_180.nmos
        assert card.kp == pytest.approx(card.u0 * card.cox)

    def test_lambda_scales_inversely_with_length(self, tech_180):
        card = tech_180.nmos
        assert card.lambda_for_length(1e-6) > card.lambda_for_length(2e-6)

    def test_feature_vector_keys(self, tech_180):
        features = tech_180.nmos.feature_vector()
        assert set(features) == {"vsat", "vth0", "vfb", "u0", "uc"}
