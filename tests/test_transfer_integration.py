"""Integration tests: transfer utilities and end-to-end experiment flows.

These tests exercise the same code paths as the transfer benchmarks but with
very small budgets, so regressions in the experiment harness are caught by
the fast test suite rather than only by the benchmark run.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentSettings,
    aggregate,
    technology_transfer_experiment,
    topology_transfer_experiment,
)
from repro.experiments.transfer import clear_transfer_cache, pretrain_weights
from repro.rl import (
    AgentConfig,
    GCNRLAgent,
    load_agent_weights,
    make_environment,
    pretrain_agent,
    save_agent_weights,
    transfer_to_technology,
    transfer_to_topology,
)


def tiny_settings():
    settings = ExperimentSettings()
    settings.steps = 4
    settings.seeds = 1
    settings.pretrain_steps = 5
    settings.transfer_steps = 4
    settings.transfer_warmup = 2
    settings.transfer_targets = ["45nm"]
    return settings


@pytest.fixture(autouse=True)
def _clean_transfer_cache():
    clear_transfer_cache()
    yield
    clear_transfer_cache()


class TestTransferUtilities:
    def test_save_and_load_agent_weights(self, tmp_path):
        env = make_environment("two_tia", "180nm")
        agent = GCNRLAgent(env, AgentConfig(num_gcn_layers=1, hidden_dim=8), seed=0)
        path = save_agent_weights(agent, tmp_path / "weights.pkl")
        assert path.exists()

        other = GCNRLAgent(
            make_environment("two_tia", "180nm"),
            AgentConfig(num_gcn_layers=1, hidden_dim=8),
            seed=5,
        )
        load_agent_weights(other, path)
        assert np.allclose(other.act(explore=False), agent.act(explore=False))

    def test_pretrain_and_technology_transfer(self):
        config = AgentConfig(
            num_gcn_layers=1, hidden_dim=8, warmup=2, batch_size=4,
            updates_per_episode=1,
        )
        agent = pretrain_agent("two_tia", "180nm", episodes=4, config=config, seed=0)
        assert len(agent.training_log) == 4
        transfer_to_technology(agent, "two_tia", "45nm", episodes=3)
        assert agent.environment.circuit.technology.name == "45nm"
        assert len(agent.environment.history) == 3

    def test_topology_transfer_requires_transferable_state(self):
        config = AgentConfig(num_gcn_layers=1, hidden_dim=8, warmup=1)
        agent = pretrain_agent("two_tia", episodes=2, config=config)
        with pytest.raises(ValueError):
            transfer_to_topology(agent, "three_tia", "180nm", episodes=2)

    def test_topology_transfer_with_transferable_state(self):
        config = AgentConfig(
            num_gcn_layers=1, hidden_dim=8, warmup=1, batch_size=4,
            updates_per_episode=1,
        )
        agent = pretrain_agent(
            "two_tia", episodes=3, config=config, transferable_state=True
        )
        transfer_to_topology(agent, "three_tia", "180nm", episodes=3)
        assert agent.environment.circuit.name == "three_tia"
        assert np.isfinite(agent.best_reward)

    def test_pretrain_weights_cached_per_configuration(self):
        settings = tiny_settings()
        first = pretrain_weights("two_tia", "180nm", settings)
        second = pretrain_weights("two_tia", "180nm", settings)
        assert first is second


class TestExperimentFlows:
    def test_technology_transfer_experiment_structure(self):
        settings = tiny_settings()
        result = technology_transfer_experiment("two_tia", settings)
        assert result.target_technologies == ["45nm"]
        assert len(result.transfer["45nm"]) == settings.seeds
        assert len(result.no_transfer["45nm"]) == settings.seeds
        agg = aggregate(result.transfer["45nm"])
        assert np.isfinite(agg.mean)

    def test_transfer_and_scratch_share_warmup_seeds(self):
        settings = tiny_settings()
        result = technology_transfer_experiment("two_tia", settings)
        transfer_rewards = result.transfer["45nm"][0].rewards
        scratch_rewards = result.no_transfer["45nm"][0].rewards
        warmup = settings.transfer_warmup
        assert transfer_rewards[:warmup] == pytest.approx(
            scratch_rewards[:warmup], rel=1e-9
        )

    def test_topology_transfer_experiment_structure(self):
        settings = tiny_settings()
        result = topology_transfer_experiment("two_tia", "three_tia", settings)
        assert len(result.gcn_transfer) == settings.seeds
        assert len(result.ng_transfer) == settings.seeds
        assert len(result.no_transfer) == settings.seeds
        for record in result.gcn_transfer:
            assert record.circuit == "three_tia"
            assert len(record.rewards) == settings.transfer_steps
