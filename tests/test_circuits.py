"""Tests for the four benchmark circuits (topology, evaluation, experts)."""

import numpy as np
import pytest

from repro.circuits import (
    CIRCUIT_CLASSES,
    ComponentType,
    get_circuit,
    list_circuits,
)
from repro.circuits.library import register_circuit
from repro.circuits.two_tia import TwoStageTIA


class TestLibrary:
    def test_all_four_paper_circuits_registered(self):
        assert set(list_circuits()) == {"two_tia", "two_volt", "three_tia", "ldo"}

    def test_get_circuit_accepts_node_name_and_instance(self, tech_180):
        by_name = get_circuit("two_tia", "180nm")
        by_node = get_circuit("two_tia", tech_180)
        assert by_name.technology.name == by_node.technology.name

    def test_unknown_circuit_raises(self):
        with pytest.raises(KeyError):
            get_circuit("folded_cascode")

    def test_register_custom_circuit(self):
        class MyTIA(TwoStageTIA):
            name = "my_tia"

        register_circuit(MyTIA)
        assert "my_tia" in CIRCUIT_CLASSES
        del CIRCUIT_CLASSES["my_tia"]

    def test_describe_mentions_counts(self, two_tia):
        text = two_tia.describe()
        assert "components" in text and "parameters" in text


class TestTopologies:
    def test_component_counts_match_paper_scale(self):
        assert get_circuit("two_tia").num_components == 8
        assert get_circuit("two_volt").num_components == 12
        assert get_circuit("three_tia").num_components == 20
        assert get_circuit("ldo").num_components == 10

    def test_three_tia_transistor_count_matches_paper_scale(self):
        # The paper's three-stage TIA has 17 transistors (T0-T16); this
        # pseudo-differential reconstruction has 19 (two extra follower sinks).
        circuit = get_circuit("three_tia")
        mos = [c for c in circuit.components if c.ctype.is_mosfet]
        assert len(mos) == 19

    def test_every_circuit_graph_is_connected_enough(self):
        for name in list_circuits():
            circuit = get_circuit(name)
            adjacency = circuit.adjacency()
            degrees = adjacency.sum(axis=1)
            # every component shares at least one signal net with another
            assert np.all(degrees >= 1), name

    def test_metric_definitions_are_consistent(self):
        for name in list_circuits():
            circuit = get_circuit(name)
            defs = circuit.metric_definitions()
            assert len(defs) == len(circuit.metric_names)
            assert len(set(circuit.metric_names)) == len(circuit.metric_names)

    def test_default_weights_signs(self):
        circuit = get_circuit("two_tia")
        weights = circuit.default_weights()
        assert weights["gain"] == 1.0
        assert weights["power"] == -1.0
        assert weights["noise"] == -1.0

    def test_failure_metrics_are_pessimistic(self):
        circuit = get_circuit("two_tia")
        metrics = circuit.failure_metrics()
        assert metrics["simulation_failed"] == 1.0
        assert metrics["gain"] == 0.0
        assert metrics["power"] >= 1e6


class TestEvaluation:
    def test_two_tia_expert_design_is_reasonable(self, two_tia):
        metrics = two_tia.evaluate(two_tia.expert_sizing())
        assert metrics["simulation_failed"] == 0.0
        assert metrics["gain"] > 1e3  # transimpedance above 1 kOhm
        assert metrics["bandwidth"] > 1e6
        assert 0 < metrics["power"] < 0.05
        assert metrics["gbw"] == pytest.approx(
            metrics["gain"] * metrics["bandwidth"], rel=1e-9
        )

    def test_two_tia_random_designs_evaluate(self, two_tia, rng):
        for _ in range(3):
            metrics = two_tia.evaluate(two_tia.random_sizing(rng))
            assert set(two_tia.metric_names) <= set(metrics)

    def test_two_volt_expert_design(self):
        circuit = get_circuit("two_volt")
        metrics = circuit.evaluate(circuit.expert_sizing())
        assert metrics["simulation_failed"] == 0.0
        assert metrics["gain"] > 100  # open-loop gain over 40 dB
        assert 0 < metrics["dpm"] <= 180
        assert 0 <= metrics["cpm"] <= 180

    def test_three_tia_expert_design(self):
        circuit = get_circuit("three_tia")
        metrics = circuit.evaluate(circuit.expert_sizing())
        assert metrics["simulation_failed"] == 0.0
        assert metrics["gain"] > 10
        assert metrics["power"] < 0.05

    def test_ldo_expert_design(self):
        circuit = get_circuit("ldo")
        metrics = circuit.evaluate(circuit.expert_sizing())
        assert metrics["simulation_failed"] == 0.0
        assert metrics["psrr"] > 20  # regulates against supply ripple
        assert metrics["load_regulation"] < 10  # mV/mA
        assert metrics["power"] < 0.01

    def test_ldo_output_regulated_to_reference_divider(self):
        circuit = get_circuit("ldo")
        sizing = circuit.expert_sizing()
        from repro.spice import dc_operating_point

        op = dc_operating_point(circuit.build_circuit(sizing))
        vout = op.voltage("vout")
        r1, r2 = sizing["R1"]["r"], sizing["R2"]["r"]
        expected = circuit.reference_voltage * (r1 + r2) / r2
        assert vout == pytest.approx(expected, rel=0.05)

    def test_wider_input_device_increases_two_tia_power(self, two_tia):
        base = two_tia.expert_sizing()
        metrics_base = two_tia.evaluate(base)
        bigger = {k: dict(v) for k, v in base.items()}
        bigger["T2"]["w"] = min(bigger["T2"]["w"] * 4, 3.6e-4)
        metrics_big = two_tia.evaluate(two_tia.parameter_space.apply_matching(bigger))
        assert metrics_big["power"] > metrics_base["power"]

    def test_evaluate_vector_matches_evaluate_sizing(self, two_tia):
        sizing = two_tia.expert_sizing()
        vector = two_tia.parameter_space.sizing_to_vector(sizing)
        via_vector = two_tia.evaluate_vector(vector)
        direct = two_tia.evaluate(sizing)
        assert via_vector["gain"] == pytest.approx(direct["gain"], rel=1e-6)

    def test_technology_porting_changes_metrics(self):
        sizing_metrics = {}
        for node in ("180nm", "45nm"):
            circuit = get_circuit("two_tia", node)
            sizing_metrics[node] = circuit.evaluate(circuit.expert_sizing())
        assert (
            sizing_metrics["180nm"]["gain"] != sizing_metrics["45nm"]["gain"]
        )

    def test_expert_sizing_respects_matching_groups(self):
        circuit = get_circuit("two_volt")
        sizing = circuit.expert_sizing()
        assert sizing["T1"] == sizing["T2"]
        assert sizing["T3"] == sizing["T4"]

    def test_spec_limits_reference_known_metrics(self):
        for name in list_circuits():
            circuit = get_circuit(name)
            for limit in circuit.spec_limits():
                assert limit.metric in circuit.metric_names
