"""Tests for the numpy NN library: layers, GCN, losses, optimizers.

The backward passes are verified against finite-difference gradients, which
is the critical correctness property for the DDPG updates built on top.
"""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    GCNLayer,
    Identity,
    Linear,
    ReLU,
    SGD,
    Sequential,
    Tanh,
    clip_gradients,
    mse_loss,
    mse_loss_grad,
)
from repro.nn.module import Module, Parameter, xavier_init


def numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = f()
        flat[i] = old - eps
        down = f()
        flat[i] = old
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


class TestLinear:
    def test_forward_shape_and_value(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        x = np.ones((4, 3))
        out = layer(x)
        assert out.shape == (4, 2)
        expected = x @ layer.weight.value + layer.bias.value
        assert np.allclose(out, expected)

    def test_backward_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        layer = Linear(4, 3, rng)
        x = rng.standard_normal((5, 4))
        target = rng.standard_normal((5, 3))

        def loss():
            return mse_loss(layer.forward(x), target)

        layer.zero_grad()
        prediction = layer.forward(x)
        layer.backward(mse_loss_grad(prediction, target))
        numeric = numeric_grad(loss, layer.weight.value)
        assert np.allclose(layer.weight.grad, numeric, atol=1e-5)

    def test_backward_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        layer = Linear(3, 2, rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss():
            return mse_loss(layer.forward(x), target)

        prediction = layer.forward(x)
        grad_input = layer.backward(mse_loss_grad(prediction, target))
        numeric = numeric_grad(loss, x)
        assert np.allclose(grad_input, numeric, atol=1e-5)

    def test_backward_before_forward_raises(self):
        layer = Linear(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestActivations:
    def test_relu_forward_backward(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0], [3.0, -4.0]])
        out = relu(x)
        assert np.array_equal(out, [[0.0, 2.0], [3.0, 0.0]])
        grad = relu.backward(np.ones_like(x))
        assert np.array_equal(grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_tanh_gradient_matches_numeric(self):
        tanh = Tanh()
        x = np.array([[0.3, -0.7, 1.2]])
        out = tanh(x)
        grad = tanh.backward(np.ones_like(x))
        assert np.allclose(grad, 1 - out**2)

    def test_identity_passthrough(self):
        layer = Identity()
        x = np.array([[1.0, -2.0]])
        assert np.array_equal(layer(x), x)
        assert np.array_equal(layer.backward(x), x)

    def test_sequential_composition_gradcheck(self):
        rng = np.random.default_rng(3)
        net = Sequential([Linear(3, 5, rng), ReLU(), Linear(5, 2, rng), Tanh()])
        x = rng.standard_normal((6, 3))
        target = rng.standard_normal((6, 2))

        def loss():
            return mse_loss(net.forward(x), target)

        net.zero_grad()
        prediction = net.forward(x)
        net.backward(mse_loss_grad(prediction, target))
        first_linear = net.layers[0]
        numeric = numeric_grad(loss, first_linear.weight.value)
        assert np.allclose(first_linear.weight.grad, numeric, atol=1e-5)


class TestBatchedGradients:
    """Stacked (B, N, F) forward/backward against per-sample and numeric."""

    def test_linear_batched_forward_matches_per_sample(self):
        rng = np.random.default_rng(10)
        layer = Linear(4, 3, rng)
        x = rng.standard_normal((6, 5, 4))
        batched = layer.forward(x)
        per_sample = np.stack([layer.forward(x[b]) for b in range(6)])
        assert np.allclose(batched, per_sample, atol=0, rtol=0)

    def test_linear_batched_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(11)
        layer = Linear(4, 3, rng)
        x = rng.standard_normal((6, 5, 4))
        target = rng.standard_normal((6, 5, 3))

        def loss():
            return mse_loss(layer.forward(x), target)

        layer.zero_grad()
        prediction = layer.forward(x)
        layer.backward(mse_loss_grad(prediction, target))
        assert np.allclose(layer.weight.grad, numeric_grad(loss, layer.weight.value), atol=1e-5)
        assert np.allclose(layer.bias.grad, numeric_grad(loss, layer.bias.value), atol=1e-5)

    def test_linear_batched_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(12)
        layer = Linear(3, 2, rng)
        x = rng.standard_normal((4, 5, 3))
        target = rng.standard_normal((4, 5, 2))

        def loss():
            return mse_loss(layer.forward(x), target)

        prediction = layer.forward(x)
        grad_input = layer.backward(mse_loss_grad(prediction, target))
        assert np.allclose(grad_input, numeric_grad(loss, x), atol=1e-5)

    def test_linear_batched_grads_match_per_sample_accumulation(self):
        rng = np.random.default_rng(13)
        batched = Linear(4, 3, np.random.default_rng(20))
        sequential = Linear(4, 3, np.random.default_rng(20))
        x = rng.standard_normal((8, 5, 4))
        grad = rng.standard_normal((8, 5, 3))

        batched.zero_grad()
        batched.forward(x)
        batched.backward(grad)
        sequential.zero_grad()
        for b in range(8):
            sequential.forward(x[b])
            sequential.backward(grad[b])
        # One flattened matmul vs a per-sample loop: same value, different
        # floating-point reduction order.
        assert np.allclose(batched.weight.grad, sequential.weight.grad, atol=1e-12)
        assert np.allclose(batched.bias.grad, sequential.bias.grad, atol=1e-12)

    def test_gcn_batched_forward_matches_per_sample(self):
        rng = np.random.default_rng(14)
        layer = GCNLayer(4, 3, activation="relu", rng=rng)
        adjacency = np.array(
            [[0.5, 0.5, 0.0], [0.5, 0.4, 0.3], [0.0, 0.3, 0.7]], dtype=float
        )
        h = rng.standard_normal((6, 3, 4))
        batched = layer.forward(h, adjacency).copy()
        per_sample = np.stack([layer.forward(h[b], adjacency) for b in range(6)])
        assert np.allclose(batched, per_sample, atol=0, rtol=0)

    def test_gcn_batched_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(15)
        layer = GCNLayer(4, 3, activation="tanh", rng=rng)
        adjacency = np.array(
            [[0.5, 0.5, 0.0], [0.5, 0.4, 0.3], [0.0, 0.3, 0.7]], dtype=float
        )
        h = rng.standard_normal((5, 3, 4))
        target = rng.standard_normal((5, 3, 3))

        def loss():
            return mse_loss(layer.forward(h, adjacency), target)

        layer.zero_grad()
        prediction = layer.forward(h, adjacency)
        layer.backward(mse_loss_grad(prediction, target))
        assert np.allclose(layer.weight.grad, numeric_grad(loss, layer.weight.value), atol=1e-5)
        assert np.allclose(layer.bias.grad, numeric_grad(loss, layer.bias.value), atol=1e-5)

    def test_gcn_batched_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(16)
        layer = GCNLayer(4, 3, activation="relu", rng=rng)
        adjacency = np.array(
            [[0.6, 0.4, 0.0], [0.4, 0.3, 0.3], [0.0, 0.3, 0.7]], dtype=float
        )
        h = rng.standard_normal((4, 3, 4))
        target = rng.standard_normal((4, 3, 3))

        def loss():
            return mse_loss(layer.forward(h, adjacency), target)

        prediction = layer.forward(h, adjacency)
        grad_input = layer.backward(mse_loss_grad(prediction, target))
        assert np.allclose(grad_input, numeric_grad(loss, h), atol=1e-5)

    def test_gcn_per_design_adjacency_stack(self):
        """A (B, n, n) adjacency stack propagates each design's own graph."""
        rng = np.random.default_rng(17)
        layer = GCNLayer(4, 3, activation="none", rng=rng)
        h = rng.standard_normal((2, 3, 4))
        adjacency = np.stack([np.eye(3), np.full((3, 3), 1.0 / 3.0)])
        batched = layer.forward(h, adjacency).copy()
        for b in range(2):
            expected = layer.forward(h[b], adjacency[b])
            assert np.allclose(batched[b], expected)

    def test_sequential_batched_gradcheck(self):
        rng = np.random.default_rng(18)
        net = Sequential([Linear(3, 5, rng), ReLU(), Linear(5, 2, rng), Tanh()])
        x = rng.standard_normal((4, 6, 3))
        target = rng.standard_normal((4, 6, 2))

        def loss():
            return mse_loss(net.forward(x), target)

        net.zero_grad()
        prediction = net.forward(x)
        net.backward(mse_loss_grad(prediction, target))
        first_linear = net.layers[0]
        numeric = numeric_grad(loss, first_linear.weight.value)
        assert np.allclose(first_linear.weight.grad, numeric, atol=1e-5)


class TestGCNLayer:
    def _setup(self, activation="relu"):
        rng = np.random.default_rng(4)
        layer = GCNLayer(4, 3, activation=activation, rng=rng)
        adjacency = np.array(
            [[0.5, 0.5, 0.0], [0.5, 0.4, 0.3], [0.0, 0.3, 0.7]], dtype=float
        )
        h = rng.standard_normal((3, 4))
        target = rng.standard_normal((3, 3))
        return layer, adjacency, h, target

    def test_forward_aggregates_neighbours(self):
        layer, adjacency, h, _ = self._setup(activation="none")
        out = layer(h, adjacency)
        expected = adjacency @ h @ layer.weight.value + layer.bias.value
        assert np.allclose(out, expected)

    def test_weight_gradient_matches_numeric(self):
        layer, adjacency, h, target = self._setup()

        def loss():
            return mse_loss(layer.forward(h, adjacency), target)

        layer.zero_grad()
        prediction = layer.forward(h, adjacency)
        layer.backward(mse_loss_grad(prediction, target))
        numeric = numeric_grad(loss, layer.weight.value)
        assert np.allclose(layer.weight.grad, numeric, atol=1e-5)

    def test_input_gradient_matches_numeric(self):
        layer, adjacency, h, target = self._setup(activation="tanh")

        def loss():
            return mse_loss(layer.forward(h, adjacency), target)

        prediction = layer.forward(h, adjacency)
        grad_input = layer.backward(mse_loss_grad(prediction, target))
        numeric = numeric_grad(loss, h)
        assert np.allclose(grad_input, numeric, atol=1e-5)

    def test_identity_adjacency_reduces_to_dense_layer(self):
        layer, _, h, _ = self._setup(activation="none")
        out = layer(h, np.eye(3))
        expected = h @ layer.weight.value + layer.bias.value
        assert np.allclose(out, expected)


class TestModuleAndOptim:
    def test_parameters_collected_recursively(self):
        class Net(Module):
            def __init__(self):
                self.block = Sequential([Linear(2, 3), ReLU(), Linear(3, 1)])
                self.extra = Parameter(np.zeros(4), name="extra")

        net = Net()
        params = net.parameters()
        assert len(params) == 5  # 2x(weight+bias) + extra

    def test_state_dict_roundtrip(self):
        net = Sequential([Linear(2, 3), Linear(3, 1)])
        state = net.state_dict()
        for param in net.parameters():
            param.value += 1.0
        net.load_state_dict(state)
        fresh = Sequential([Linear(2, 3), Linear(3, 1)])
        fresh.load_state_dict(state)
        x = np.ones((1, 2))
        assert np.allclose(net.forward(x), fresh.forward(x))

    def test_load_state_dict_shape_mismatch_raises(self):
        net = Sequential([Linear(2, 3)])
        other = Sequential([Linear(3, 3)])
        with pytest.raises((ValueError, KeyError)):
            net.load_state_dict(other.state_dict())

    def test_adam_minimises_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = Adam([param], lr=0.1)
        for _ in range(300):
            param.zero_grad()
            param.grad += 2 * param.value
            optimizer.step()
        assert np.allclose(param.value, 0.0, atol=1e-2)

    def test_sgd_with_momentum_minimises_quadratic(self):
        param = Parameter(np.array([2.0]))
        optimizer = SGD([param], lr=0.05, momentum=0.5)
        for _ in range(200):
            param.zero_grad()
            param.grad += 2 * param.value
            optimizer.step()
        assert abs(param.value[0]) < 1e-2

    def test_clip_gradients_scales_norm(self):
        param = Parameter(np.zeros(4))
        param.grad = np.array([3.0, 4.0, 0.0, 0.0])
        norm = clip_gradients([param], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)

    def test_xavier_init_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_init(rng, 10, 20)
        bound = np.sqrt(6.0 / 30)
        assert np.all(np.abs(w) <= bound)

    def test_mse_loss_and_grad(self):
        prediction = np.array([1.0, 2.0])
        target = np.array([0.0, 0.0])
        assert mse_loss(prediction, target) == pytest.approx(2.5)
        assert np.allclose(mse_loss_grad(prediction, target), [1.0, 2.0])
