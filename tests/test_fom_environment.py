"""Tests for the FoM (Equation 2) and the sizing environment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import get_circuit
from repro.circuits.base import SpecLimit
from repro.env import (
    FoMConfig,
    MetricNormalization,
    SPEC_VIOLATION_FOM,
    SizingEnvironment,
    calibrate_normalization,
    default_fom_config,
)


def make_norm():
    return MetricNormalization(
        minimum={"gain": 0.0, "power": 0.0}, maximum={"gain": 100.0, "power": 1.0}
    )


class TestMetricNormalization:
    def test_normalize_maps_range_to_unit_interval(self):
        norm = make_norm()
        assert norm.normalize("gain", 0.0) == 0.0
        assert norm.normalize("gain", 100.0) == 1.0
        assert norm.normalize("gain", 50.0) == pytest.approx(0.5)

    def test_normalize_clips_outliers(self):
        norm = make_norm()
        assert norm.normalize("gain", 1e9) == 1.0
        assert norm.normalize("gain", -5.0) == 0.0

    def test_json_roundtrip(self):
        norm = make_norm()
        restored = MetricNormalization.from_json(norm.to_json())
        assert restored.minimum == norm.minimum
        assert restored.maximum == norm.maximum

    def test_from_samples_excludes_failures(self):
        samples = [
            {"gain": 10.0, "simulation_failed": 0.0},
            {"gain": 20.0, "simulation_failed": 0.0},
            {"gain": 1e12, "simulation_failed": 1.0},
        ]
        norm = MetricNormalization.from_samples(samples, ["gain"])
        assert norm.maximum["gain"] < 1e6

    def test_from_samples_handles_constant_metric(self):
        samples = [{"gain": 5.0}, {"gain": 5.0}]
        norm = MetricNormalization.from_samples(samples, ["gain"])
        assert norm.maximum["gain"] > norm.minimum["gain"]

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=3,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_normalized_values_always_in_unit_interval(self, values):
        samples = [{"m": v} for v in values]
        norm = MetricNormalization.from_samples(samples, ["m"])
        for v in values:
            assert 0.0 <= norm.normalize("m", v) <= 1.0


class TestFoMConfig:
    def test_weighted_sum(self):
        config = FoMConfig(
            weights={"gain": 1.0, "power": -1.0}, normalization=make_norm()
        )
        fom = config.compute({"gain": 100.0, "power": 0.5})
        assert fom == pytest.approx(1.0 - 0.5)

    def test_spec_violation_returns_negative_value(self):
        config = FoMConfig(
            weights={"gain": 1.0},
            normalization=make_norm(),
            spec_limits=[SpecLimit("gain", "min", 50.0)],
        )
        assert config.compute({"gain": 10.0}) == SPEC_VIOLATION_FOM
        assert config.compute({"gain": 60.0}) > 0

    def test_simulation_failure_returns_negative_value(self):
        config = FoMConfig(weights={"gain": 1.0}, normalization=make_norm())
        assert config.compute({"gain": 10.0, "simulation_failed": 1.0}) == SPEC_VIOLATION_FOM

    def test_bound_caps_metric_contribution(self):
        config = FoMConfig(
            weights={"gain": 1.0},
            normalization=make_norm(),
            bounds={"gain": 50.0},
        )
        assert config.compute({"gain": 100.0}) == pytest.approx(0.5)

    def test_nan_metric_is_rejected(self):
        config = FoMConfig(weights={"gain": 1.0}, normalization=make_norm())
        assert config.compute({"gain": float("nan")}) == SPEC_VIOLATION_FOM

    def test_reweighted_scales_selected_metric(self):
        config = FoMConfig(
            weights={"gain": 1.0, "power": -1.0}, normalization=make_norm()
        )
        emphasised = config.reweighted({"gain": 10.0})
        assert emphasised.weights["gain"] == 10.0
        assert emphasised.weights["power"] == -1.0
        assert config.weights["gain"] == 1.0  # original untouched

    def test_missing_metric_is_ignored(self):
        config = FoMConfig(
            weights={"gain": 1.0, "unknown": 1.0}, normalization=make_norm()
        )
        assert config.compute({"gain": 100.0}) == pytest.approx(1.0)


class TestCalibration:
    def test_calibration_cached_and_deterministic(self, two_tia):
        first = calibrate_normalization(two_tia, num_samples=5)
        second = calibrate_normalization(two_tia, num_samples=5)
        assert first.minimum == second.minimum

    def test_default_fom_config_uses_circuit_weights(self, two_tia):
        config = default_fom_config(two_tia)
        assert config.weights == two_tia.default_weights()

    def test_weight_overrides_applied(self, two_tia):
        config = default_fom_config(two_tia, weight_overrides={"bandwidth": 10.0})
        assert config.weights["bandwidth"] == 10.0


class TestSizingEnvironment:
    def test_state_matrix_shape(self, two_tia_env):
        states, adjacency = two_tia_env.observe()
        n = two_tia_env.num_components
        assert states.shape == (n, two_tia_env.state_dim)
        assert adjacency.shape == (n, n)

    def test_state_dim_one_hot_vs_transferable(self, two_tia):
        one_hot_env = SizingEnvironment(two_tia)
        transferable_env = SizingEnvironment(two_tia, transferable_state=True)
        assert one_hot_env.state_dim == two_tia.num_components + 4 + 5
        assert transferable_env.state_dim == 1 + 4 + 5

    def test_transferable_state_dim_is_topology_independent(self):
        env_a = SizingEnvironment(get_circuit("two_tia"), transferable_state=True)
        env_b = SizingEnvironment(get_circuit("three_tia"), transferable_state=True)
        assert env_a.state_dim == env_b.state_dim

    def test_states_are_standardised(self, two_tia_env):
        states, _ = two_tia_env.observe()
        means = states.mean(axis=0)
        assert np.all(np.abs(means) < 1e-8)

    def test_step_records_history_and_best(self, two_tia_env):
        two_tia_env.reset_history()
        actions = np.zeros((two_tia_env.num_components, two_tia_env.action_dim))
        result = two_tia_env.step(actions)
        assert len(two_tia_env.history) == 1
        assert two_tia_env.best_reward == result.reward
        assert two_tia_env.best_sizing is not None

    def test_step_with_wrong_shape_raises(self, two_tia_env):
        with pytest.raises(ValueError):
            two_tia_env.step(np.zeros((2, 3)))

    def test_evaluate_normalized_vector_matches_actions(self, two_tia_env):
        two_tia_env.reset_history()
        n, d = two_tia_env.num_components, two_tia_env.action_dim
        actions = np.full((n, d), 0.3)
        via_actions = two_tia_env.step(actions)
        # Build the equivalent flat vector.
        defs = two_tia_env.circuit.parameter_space.definitions
        vector = np.full(len(defs), 0.3)
        via_vector = two_tia_env.evaluate_normalized_vector(vector)
        assert via_vector.reward == pytest.approx(via_actions.reward, rel=1e-9)

    def test_best_so_far_curve_is_monotone(self, two_tia_env, rng):
        two_tia_env.reset_history()
        for _ in range(5):
            two_tia_env.random_step(rng)
        curve = two_tia_env.best_so_far_curve()
        assert len(curve) == 5
        assert np.all(np.diff(curve) >= 0)

    def test_actions_for_sizing_roundtrip(self, two_tia_env):
        sizing = two_tia_env.circuit.expert_sizing()
        actions = two_tia_env.actions_for_sizing(sizing)
        assert actions.shape == (
            two_tia_env.num_components,
            two_tia_env.action_dim,
        )
        assert np.all(actions >= -1.0) and np.all(actions <= 1.0)

    def test_vector_length_mismatch_raises(self, two_tia_env):
        with pytest.raises(ValueError):
            two_tia_env.evaluate_normalized_vector([0.0, 0.1])
