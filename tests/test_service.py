"""Tests for the optimization service: codec, coalescing, dedup, restart."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.eval import EvaluatorConfig
from repro.service import (
    ProtocolError,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    decode_frame,
    encode_frame,
    validate_request,
)
from repro.service.supervisor import JOURNAL_NAME, JobSpec, RunSupervisor

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _random_sizings(count: int, seed: int = 7, circuit_name: str = "two_tia"):
    circuit = get_circuit(circuit_name, "180nm")
    rng = np.random.default_rng(seed)
    return [circuit.random_sizing(rng) for _ in range(count)]


# --- protocol codec ---------------------------------------------------------------
class TestProtocol:
    def test_roundtrip_is_bit_identical(self):
        frame = {
            "type": "result",
            "id": 3,
            "metrics": {"gain": 123.456789012345678, "bw": 1.8121296380182965e7},
            "nested": {"list": [1, 2.5, "x", None, True]},
        }
        assert decode_frame(encode_frame(frame)) == frame

    def test_roundtrip_preserves_float_bits(self):
        values = [0.1 + 0.2, 1e-300, np.pi, 2.0 ** -1074, 1.7976931348623157e308]
        frame = {"type": "stats", "values": values}
        decoded = decode_frame(encode_frame(frame))
        assert [v.hex() for v in decoded["values"]] == [v.hex() for v in values]

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"")
        with pytest.raises(ProtocolError):
            decode_frame(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_frame(b"[1,2,3]\n")
        with pytest.raises(ProtocolError):
            decode_frame(b'{"no_type": 1}\n')
        with pytest.raises(ProtocolError):
            encode_frame({"no_type": 1})

    def test_validate_evaluate(self):
        sizings = [{"M1": {"w": 1e-6, "l": 1e-7}}]
        normalized = validate_request(
            {"type": "evaluate", "circuit": "two_tia", "sizings": sizings}
        )
        assert normalized["technology"] == "180nm"
        assert normalized["sizings"] == sizings
        with pytest.raises(ProtocolError):
            validate_request({"type": "evaluate", "circuit": "two_tia", "sizings": []})
        with pytest.raises(ProtocolError):
            validate_request(
                {"type": "evaluate", "circuit": "two_tia", "sizings": [{"M1": 3}]}
            )

    def test_validate_run_defaults(self):
        normalized = validate_request(
            {"type": "run", "method": "es", "circuit": "two_tia"}
        )
        assert normalized["steps"] == 80
        assert normalized["seed"] == 0
        assert normalized["stream"] is True
        with pytest.raises(ProtocolError):
            validate_request({"type": "run", "method": "es", "circuit": "x", "steps": 0})
        with pytest.raises(ProtocolError):
            validate_request({"type": "teleport"})


# --- coalescing -------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_clients_share_batches_bit_identically(self):
        """≥8 concurrent clients -> fewer simulator batches than requests,
        coalescing factor ≥ 2, results bit-identical to direct evaluation."""
        n_clients = 8
        per_client = 2
        all_sizings = _random_sizings(n_clients * per_client, seed=11)
        config = ServiceConfig(port=0, linger_ms=150.0)
        with ServerThread(config) as server:
            barrier = threading.Barrier(n_clients)
            outputs = [None] * n_clients
            errors = []

            def worker(index: int):
                chunk = all_sizings[index * per_client : (index + 1) * per_client]
                try:
                    with ServiceClient(port=server.port) as client:
                        barrier.wait(timeout=30)
                        outputs[index] = client.evaluate("two_tia", chunk)
                except Exception as error:  # pragma: no cover - surfaced below
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors

            with ServiceClient(port=server.port) as client:
                stats = client.stats()["coalescer"]

        assert stats["requests"] == n_clients
        assert stats["designs_flushed"] == n_clients * per_client
        # The acceptance criterion: strictly fewer batches than requests,
        # with a mean coalescing factor of at least 2 designs per batch.
        assert stats["batches_issued"] < stats["requests"]
        assert stats["coalescing_factor"] >= 2.0

        # Bit-identical to a direct, un-coalesced local evaluation.
        direct = EvaluatorConfig(backend="local", cache_size=0).build(
            get_circuit("two_tia", "180nm")
        )
        try:
            reference = direct.evaluate_batch(all_sizings)
        finally:
            direct.close()
        served = [result for chunk in outputs for result in chunk]
        for out, ref in zip(served, reference):
            assert out["metrics"] == ref.metrics

    def test_repeat_request_is_served_without_simulation(self):
        sizings = _random_sizings(4, seed=23)
        with ServerThread(ServiceConfig(port=0, linger_ms=5.0)) as server:
            with ServiceClient(port=server.port) as client:
                first = client.evaluate("two_tia", sizings)
                before = client.stats()["evaluator"]["num_simulations"]
                second = client.evaluate("two_tia", sizings)
                after_stats = client.stats()
        assert [r["metrics"] for r in first] == [r["metrics"] for r in second]
        assert all(r["cached"] for r in second)
        assert after_stats["evaluator"]["num_simulations"] == before
        assert after_stats["coalescer"]["peek_hits"] == len(sizings)

    def test_duplicate_designs_in_one_batch_share_a_future(self):
        sizing = _random_sizings(1, seed=31)[0]
        with ServerThread(ServiceConfig(port=0, linger_ms=50.0)) as server:
            results = [None, None]

            def worker(index: int):
                with ServiceClient(port=server.port) as client:
                    results[index] = client.evaluate("two_tia", [sizing])

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            with ServiceClient(port=server.port) as client:
                stats = client.stats()["coalescer"]
        assert results[0][0]["metrics"] == results[1][0]["metrics"]
        # One design simulated, the duplicate attached to the shared future.
        assert stats["designs_flushed"] == 1
        assert stats["inflight_hits"] + stats["peek_hits"] == 1

    def test_evaluate_unknown_circuit_is_an_error_frame(self):
        with ServerThread(ServiceConfig(port=0)) as server:
            with ServiceClient(port=server.port) as client:
                with pytest.raises(ServiceError):
                    client.evaluate("no_such_circuit", _random_sizings(1))
                # The connection survives the error and serves the next request.
                assert client.health()["status"] == "ok"


# --- supervised runs --------------------------------------------------------------
class TestRuns:
    def test_run_matches_direct_run_method(self):
        from repro.experiments.runner import run_method

        with ServerThread(ServiceConfig(port=0)) as server:
            progress = []
            with ServiceClient(port=server.port) as client:
                record = client.run(
                    "random",
                    "two_tia",
                    steps=3,
                    seed=5,
                    on_progress=progress.append,
                )
                jobs = client.jobs()
        reference = run_method(
            "random",
            "two_tia",
            steps=3,
            seed=5,
            evaluator_config=EvaluatorConfig(backend="local", cache_size=4096),
        )
        assert record["rewards"] == [float(r) for r in reference.rewards]
        assert record["best_reward"] == float(reference.best_reward)
        assert progress, "streaming run must push progress frames"
        # `steps` is an evaluation budget; the driver may cover it in fewer
        # ask/tell iterations, but the final frame must account for all of it.
        assert progress[-1]["evaluated"] >= 3
        assert jobs[0]["status"] == "done"

    def test_submit_then_result_roundtrip(self):
        with ServerThread(ServiceConfig(port=0)) as server:
            with ServiceClient(port=server.port) as client:
                job_id = client.submit_run("random", "two_tia", steps=2, seed=1)
                payload = client.result(job_id, wait=True)
        assert payload["status"] == "done"
        assert payload["record"]["method"] == "random"
        assert len(payload["record"]["rewards"]) >= 2

    def test_unknown_method_is_an_error_frame(self):
        with ServerThread(ServiceConfig(port=0)) as server:
            with ServiceClient(port=server.port) as client:
                with pytest.raises(ServiceError, match="[Uu]nknown"):
                    client.run("definitely_not_a_method", "two_tia", steps=2)


# --- journal / adoption -----------------------------------------------------------
class TestJournal:
    def test_pending_from_journal_tolerates_torn_tail(self, tmp_path):
        supervisor = RunSupervisor(store_backend="jsonl", store_dir=str(tmp_path))
        done = JobSpec(
            job_id="aaa", method="es", circuit="two_tia", technology="180nm",
            steps=4, seed=0, checkpoint_every=1,
        )
        alive = JobSpec(
            job_id="bbb", method="random", circuit="two_tia", technology="180nm",
            steps=4, seed=1, checkpoint_every=1, eval_cache_size=64,
        )
        supervisor._journal_append("submitted", {"job": done.to_dict()})
        supervisor._journal_append("submitted", {"job": alive.to_dict()})
        supervisor._journal_append("done", {"job_id": "aaa"})
        with open(tmp_path / JOURNAL_NAME, "a", encoding="utf-8") as handle:
            handle.write('{"event": "submitted", "job": {"job_id": "to')  # torn
        pending = supervisor.pending_from_journal()
        assert [spec.job_id for spec in pending] == ["bbb"]
        assert pending[0] == alive

    def test_kill_server_midrun_restart_resumes_bit_identically(self, tmp_path):
        """SIGKILL the server mid-run; a restart re-adopts the journaled job
        and its resumed record matches an uninterrupted reference exactly."""
        from repro.experiments.runner import run_method

        store_dir = str(tmp_path / "store")
        env = dict(os.environ, PYTHONPATH=REPO_SRC)

        def start_server():
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.experiments", "serve",
                    "--port", "0", "--store-dir", store_dir,
                    "--checkpoint-every", "1",
                ],
                env=env,
                stdout=subprocess.PIPE,
                text=True,
            )
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            port = int(banner.split("listening on ")[1].split()[0].rsplit(":", 1)[1])
            return proc, port

        proc, port = start_server()
        try:
            with ServiceClient(port=port) as client:
                job_id = client.submit_run(
                    "es", "two_tia", steps=60, seed=0, checkpoint_every=1
                )
                # Wait until the run has demonstrably stepped (checkpoint
                # written) but is still in flight, then pull the plug.
                deadline = time.monotonic() + 120
                while time.monotonic() < deadline:
                    job = client.jobs()[0]
                    if job["status"] != "running":
                        pytest.fail(f"run finished before the kill: {job}")
                    if job["step"] >= 1 and job["evaluated"] < 50:
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("run never reported progress")
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        journal = tmp_path / "store" / JOURNAL_NAME
        assert journal.exists()
        events = [json.loads(line) for line in journal.read_text().splitlines()]
        assert events[0]["event"] == "submitted"
        assert not any(row["event"] == "done" for row in events)

        proc2, port2 = start_server()
        try:
            with ServiceClient(port=port2, timeout=300.0) as client:
                jobs = client.jobs()
                assert [j["job_id"] for j in jobs] == [job_id]
                assert jobs[0]["adopted"] is True
                payload = client.result(job_id, wait=True)
        finally:
            os.kill(proc2.pid, signal.SIGKILL)
            proc2.wait(timeout=30)

        assert payload["status"] == "done"
        resumed = payload["record"]
        reference = run_method(
            "es",
            "two_tia",
            steps=60,
            seed=0,
            evaluator_config=EvaluatorConfig(backend="local", cache_size=4096),
        )
        assert len(resumed["rewards"]) == len(reference.rewards)
        assert resumed["rewards"] == [float(r) for r in reference.rewards]
        assert resumed["best_reward"] == float(reference.best_reward)
        assert resumed["best_metrics"] == {
            k: float(v) for k, v in reference.best_metrics.items()
        }


# --- HTTP adapter -----------------------------------------------------------------
class TestHttpAdapter:
    def test_health_stats_and_evaluate_over_http(self):
        sizings = _random_sizings(2, seed=41)
        with ServerThread(ServiceConfig(port=0, linger_ms=5.0)) as server:
            base = f"http://127.0.0.1:{server.port}"
            health = json.load(urllib.request.urlopen(f"{base}/health"))
            assert health["status"] == "ok"

            body = json.dumps(
                {"circuit": "two_tia", "technology": "180nm", "sizings": sizings}
            ).encode("utf-8")
            request = urllib.request.Request(
                f"{base}/evaluate",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            payload = json.load(urllib.request.urlopen(request))
            assert len(payload["results"]) == 2
            assert all("metrics" in r for r in payload["results"])

            stats = json.load(urllib.request.urlopen(f"{base}/stats"))
            assert stats["coalescer"]["designs_submitted"] == 2

    def test_http_404_for_unknown_route(self):
        with ServerThread(ServiceConfig(port=0)) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"http://127.0.0.1:{server.port}/nope")
            assert excinfo.value.code == 404
