"""Tests for the RL stack: noise, replay buffer, actor/critic, DDPG agent."""

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.circuits.components import TYPE_ORDER
from repro.env import SizingEnvironment
from repro.env.environment import StepResult
from repro.rl import (
    AgentConfig,
    GCNActor,
    GCNCritic,
    GCNRLAgent,
    ReplayBuffer,
    TruncatedGaussianNoise,
    make_environment,
)


class TestNoise:
    def test_sigma_decays_towards_floor(self):
        noise = TruncatedGaussianNoise(initial_sigma=1.0, final_sigma=0.1, decay=0.5)
        for _ in range(20):
            noise.step()
        assert noise.sigma == pytest.approx(0.1)

    def test_reset_restores_initial_sigma(self):
        noise = TruncatedGaussianNoise(initial_sigma=0.4)
        noise.step()
        noise.reset()
        assert noise.sigma == 0.4

    def test_perturbed_actions_stay_in_bounds(self, rng):
        noise = TruncatedGaussianNoise(initial_sigma=5.0)
        actions = np.zeros((10, 3))
        noisy = noise.perturb(actions, rng)
        assert np.all(noisy >= -1.0) and np.all(noisy <= 1.0)

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            TruncatedGaussianNoise(decay=1.5)


class TestReplayBuffer:
    def test_add_and_sample(self, rng):
        buffer = ReplayBuffer(capacity=10)
        for i in range(5):
            buffer.add(np.zeros((3, 4)), np.zeros((3, 3)), float(i))
        assert len(buffer) == 5
        batch = buffer.sample(8, rng)
        assert len(batch) == 8

    def test_capacity_overwrites_oldest(self):
        buffer = ReplayBuffer(capacity=3)
        for i in range(5):
            buffer.add(np.zeros((1, 1)), np.zeros((1, 1)), float(i))
        assert len(buffer) == 3
        assert set(buffer.rewards()) == {2.0, 3.0, 4.0}

    def test_sample_empty_raises(self, rng):
        with pytest.raises(ValueError):
            ReplayBuffer().sample(1, rng)

    def test_clear(self):
        buffer = ReplayBuffer()
        buffer.add(np.zeros((1, 1)), np.zeros((1, 1)), 1.0)
        buffer.clear()
        assert len(buffer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)

    def test_stored_arrays_are_copies(self):
        buffer = ReplayBuffer()
        states = np.zeros((2, 2))
        buffer.add(states, np.zeros((2, 1)), 0.0)
        states[0, 0] = 99.0
        assert buffer.sample(1, np.random.default_rng(0))[0].states[0, 0] == 0.0


def small_graph_inputs(seed=0, n=5, state_dim=7):
    rng = np.random.default_rng(seed)
    states = rng.standard_normal((n, state_dim))
    adjacency = np.eye(n)
    adjacency[0, 1] = adjacency[1, 0] = 0.5
    type_indices = [0, 1, 2, 3, 0]
    return states, adjacency, type_indices


class TestActorCritic:
    def test_actor_output_shape_and_range(self):
        states, adjacency, types = small_graph_inputs()
        actor = GCNActor(state_dim=7, hidden_dim=16, num_gcn_layers=2)
        actions = actor.forward(states, adjacency, types)
        assert actions.shape == (5, 3)
        assert np.all(np.abs(actions) <= 1.0)

    def test_critic_returns_scalar(self):
        states, adjacency, types = small_graph_inputs()
        critic = GCNCritic(state_dim=7, hidden_dim=16, num_gcn_layers=2)
        q = critic.forward(states, np.zeros((5, 3)), adjacency, types)
        assert isinstance(q, float)

    def test_critic_action_gradient_matches_numeric(self):
        states, adjacency, types = small_graph_inputs(seed=3)
        critic = GCNCritic(state_dim=7, hidden_dim=12, num_gcn_layers=2)
        actions = np.random.default_rng(4).uniform(-0.5, 0.5, size=(5, 3))

        critic.forward(states, actions, adjacency, types)
        _, grad_actions = critic.backward(1.0)

        eps = 1e-6
        numeric = np.zeros_like(actions)
        for i in range(actions.shape[0]):
            for j in range(actions.shape[1]):
                up, down = actions.copy(), actions.copy()
                up[i, j] += eps
                down[i, j] -= eps
                q_up = critic.forward(states, up, adjacency, types)
                q_down = critic.forward(states, down, adjacency, types)
                numeric[i, j] = (q_up - q_down) / (2 * eps)
        assert np.allclose(grad_actions, numeric, atol=1e-5)

    def test_actor_parameter_gradient_matches_numeric(self):
        states, adjacency, types = small_graph_inputs(seed=5)
        actor = GCNActor(state_dim=7, hidden_dim=10, num_gcn_layers=1)
        grad_out = np.ones((5, 3))

        actor.zero_grad()
        actor.forward(states, adjacency, types)
        actor.backward(grad_out)
        analytic = actor.input_layer.weight.grad.copy()

        def objective():
            return float(np.sum(actor.forward(states, adjacency, types)))

        eps = 1e-6
        weight = actor.input_layer.weight.value
        numeric = np.zeros_like(weight)
        for i in range(weight.shape[0]):
            for j in range(weight.shape[1]):
                old = weight[i, j]
                weight[i, j] = old + eps
                up = objective()
                weight[i, j] = old - eps
                down = objective()
                weight[i, j] = old
                numeric[i, j] = (up - down) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_ng_variant_ignores_adjacency(self):
        states, adjacency, types = small_graph_inputs()
        actor = GCNActor(state_dim=7, hidden_dim=16, num_gcn_layers=2, use_gcn=False)
        with_graph = actor.forward(states, adjacency, types)
        without_graph = actor.forward(states, np.eye(5), types)
        assert np.allclose(with_graph, without_graph)

    def test_gcn_variant_uses_adjacency(self):
        states, adjacency, types = small_graph_inputs()
        actor = GCNActor(state_dim=7, hidden_dim=16, num_gcn_layers=2, use_gcn=True)
        dense = np.full((5, 5), 0.2)
        assert not np.allclose(
            actor.forward(states, adjacency, types),
            actor.forward(states, dense, types),
        )

    def test_state_dict_transfers_between_instances(self):
        states, adjacency, types = small_graph_inputs()
        actor_a = GCNActor(7, 16, 2, rng=np.random.default_rng(1))
        actor_b = GCNActor(7, 16, 2, rng=np.random.default_rng(2))
        actor_b.load_state_dict(actor_a.state_dict())
        assert np.allclose(
            actor_a.forward(states, adjacency, types),
            actor_b.forward(states, adjacency, types),
        )


class SyntheticEnvironment(SizingEnvironment):
    """Environment whose reward is a simple analytic function of the actions.

    It reuses a real circuit's topology/state machinery but replaces the
    simulator call, so agent tests run in milliseconds.
    """

    def __init__(self, circuit, target=0.4):
        super().__init__(circuit)
        self.target = target

    def step(self, actions) -> StepResult:
        actions = np.asarray(actions, dtype=float)
        reward = 1.0 - float(np.mean((actions - self.target) ** 2))
        step_index = len(self.history)
        self._record(reward, {"synthetic": reward}, {})
        return StepResult(
            reward=reward, metrics={}, sizing={}, step_index=step_index
        )


@pytest.fixture()
def synthetic_env():
    return SyntheticEnvironment(get_circuit("two_tia"))


class TestAgent:
    def test_agent_training_improves_on_synthetic_task(self, synthetic_env):
        config = AgentConfig(
            warmup=15,
            num_gcn_layers=2,
            hidden_dim=24,
            batch_size=24,
            updates_per_episode=3,
        )
        agent = GCNRLAgent(synthetic_env, config, seed=0)
        log = agent.train(120)
        early = np.mean([r.reward for r in log[:15]])
        late = np.mean([r.reward for r in log[-15:]])
        assert late > early
        assert agent.best_reward > 0.8

    def test_warmup_episodes_are_random(self, synthetic_env):
        config = AgentConfig(warmup=5, num_gcn_layers=1, hidden_dim=8)
        agent = GCNRLAgent(synthetic_env, config, seed=1)
        log = agent.train(5)
        assert all(record.warmup for record in log)

    def test_act_produces_valid_actions(self, synthetic_env):
        agent = GCNRLAgent(
            synthetic_env, AgentConfig(num_gcn_layers=1, hidden_dim=8), seed=2
        )
        actions = agent.act(explore=True)
        assert actions.shape == (
            synthetic_env.num_components,
            synthetic_env.action_dim,
        )
        assert np.all(np.abs(actions) <= 1.0)

    def test_state_dict_roundtrip_preserves_policy(self, synthetic_env):
        agent = GCNRLAgent(
            synthetic_env, AgentConfig(num_gcn_layers=1, hidden_dim=8), seed=3
        )
        before = agent.act(explore=False)
        state = agent.state_dict()
        other = GCNRLAgent(
            SyntheticEnvironment(get_circuit("two_tia")),
            AgentConfig(num_gcn_layers=1, hidden_dim=8),
            seed=99,
        )
        other.load_state_dict(state)
        assert np.allclose(before, other.act(explore=False))

    def test_attach_environment_rejects_state_mismatch(self):
        env_a = SizingEnvironment(get_circuit("two_tia"))
        env_b = SizingEnvironment(get_circuit("three_tia"))
        agent = GCNRLAgent(env_a, AgentConfig(num_gcn_layers=1, hidden_dim=8))
        with pytest.raises(ValueError):
            agent.attach_environment(env_b)

    def test_attach_environment_allows_transferable_topologies(self):
        env_a = SizingEnvironment(get_circuit("two_tia"), transferable_state=True)
        env_b = SizingEnvironment(get_circuit("three_tia"), transferable_state=True)
        agent = GCNRLAgent(env_a, AgentConfig(num_gcn_layers=1, hidden_dim=8))
        agent.attach_environment(env_b)
        assert agent.environment is env_b

    def test_attach_environment_resets_buffers(self, synthetic_env):
        agent = GCNRLAgent(
            synthetic_env,
            AgentConfig(num_gcn_layers=1, hidden_dim=8, warmup=1),
            seed=0,
        )
        agent.train(3)
        fresh = SyntheticEnvironment(get_circuit("two_tia"))
        agent.attach_environment(fresh)
        assert len(agent.replay_buffer) == 0
        assert agent._episode == 0

    def test_training_on_real_environment_smoke(self):
        env = make_environment("two_tia", "180nm")
        config = AgentConfig(
            warmup=3, num_gcn_layers=2, hidden_dim=16, batch_size=8,
            updates_per_episode=1,
        )
        agent = GCNRLAgent(env, config, seed=0)
        log = agent.train(6)
        assert len(log) == 6
        assert np.isfinite(agent.best_reward)
