"""Tests for the RL stack: noise, replay buffer, actor/critic, DDPG agent."""

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.circuits.components import TYPE_ORDER
from repro.env import SizingEnvironment
from repro.env.environment import StepResult
from repro.rl import (
    AgentConfig,
    GCNActor,
    GCNCritic,
    GCNRLAgent,
    ReplayBuffer,
    Transition,
    TransitionBatch,
    TruncatedGaussianNoise,
    make_environment,
)


class TestNoise:
    def test_sigma_decays_towards_floor(self):
        noise = TruncatedGaussianNoise(initial_sigma=1.0, final_sigma=0.1, decay=0.5)
        for _ in range(20):
            noise.step()
        assert noise.sigma == pytest.approx(0.1)

    def test_reset_restores_initial_sigma(self):
        noise = TruncatedGaussianNoise(initial_sigma=0.4)
        noise.step()
        noise.reset()
        assert noise.sigma == 0.4

    def test_perturbed_actions_stay_in_bounds(self, rng):
        noise = TruncatedGaussianNoise(initial_sigma=5.0)
        actions = np.zeros((10, 3))
        noisy = noise.perturb(actions, rng)
        assert np.all(noisy >= -1.0) and np.all(noisy <= 1.0)

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            TruncatedGaussianNoise(decay=1.5)


class TestReplayBuffer:
    def test_add_and_sample(self, rng):
        buffer = ReplayBuffer(capacity=10)
        for i in range(5):
            buffer.add(np.zeros((3, 4)), np.zeros((3, 3)), float(i))
        assert len(buffer) == 5
        batch = buffer.sample(8, rng)
        assert len(batch) == 8

    def test_capacity_overwrites_oldest(self):
        buffer = ReplayBuffer(capacity=3)
        for i in range(5):
            buffer.add(np.zeros((1, 1)), np.zeros((1, 1)), float(i))
        assert len(buffer) == 3
        assert set(buffer.rewards()) == {2.0, 3.0, 4.0}

    def test_sample_empty_raises(self, rng):
        with pytest.raises(ValueError):
            ReplayBuffer().sample(1, rng)

    def test_clear(self):
        buffer = ReplayBuffer()
        buffer.add(np.zeros((1, 1)), np.zeros((1, 1)), 1.0)
        buffer.clear()
        assert len(buffer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)

    def test_stored_arrays_are_copies(self):
        buffer = ReplayBuffer()
        states = np.zeros((2, 2))
        buffer.add(states, np.zeros((2, 1)), 0.0)
        states[0, 0] = 99.0
        assert buffer.sample(1, np.random.default_rng(0))[0].states[0, 0] == 0.0

    def test_sample_returns_stacked_arrays(self, rng):
        buffer = ReplayBuffer(capacity=16)
        for i in range(6):
            buffer.add(np.full((3, 4), float(i)), np.full((3, 2), float(i)), float(i))
        batch = buffer.sample(5, rng)
        assert isinstance(batch, TransitionBatch)
        assert batch.states.shape == (5, 3, 4)
        assert batch.actions.shape == (5, 3, 2)
        assert batch.rewards.shape == (5,)
        # Rows are consistent: states/actions/rewards of one draw line up.
        for b in range(5):
            assert np.all(batch.states[b] == batch.rewards[b])
            assert np.all(batch.actions[b] == batch.rewards[b])

    def test_batch_iterates_as_transitions(self, rng):
        buffer = ReplayBuffer()
        for i in range(3):
            buffer.add(np.full((2, 2), float(i)), np.full((2, 1), float(i)), float(i))
        batch = buffer.sample(4, rng)
        transitions = list(batch)
        assert len(transitions) == 4
        for index, transition in enumerate(transitions):
            assert isinstance(transition, Transition)
            assert transition.reward == batch.rewards[index]
            assert np.array_equal(transition.states, batch.states[index])

    def test_sampled_batch_is_a_copy_of_storage(self, rng):
        buffer = ReplayBuffer()
        buffer.add(np.zeros((2, 2)), np.zeros((2, 1)), 0.0)
        batch = buffer.sample(2, rng)
        batch.states[0, 0, 0] = 123.0
        assert buffer.sample(2, rng).states[0, 0, 0] == 0.0

    def test_add_rejects_shape_mismatch(self):
        buffer = ReplayBuffer()
        buffer.add(np.zeros((3, 4)), np.zeros((3, 2)), 0.0)
        with pytest.raises(ValueError):
            buffer.add(np.zeros((5, 4)), np.zeros((5, 2)), 0.0)

    def test_clear_allows_new_topology_shape(self):
        buffer = ReplayBuffer()
        buffer.add(np.zeros((3, 4)), np.zeros((3, 2)), 0.0)
        buffer.clear()
        buffer.add(np.zeros((7, 4)), np.zeros((7, 2)), 1.0)
        assert len(buffer) == 1
        assert buffer.rewards().tolist() == [1.0]


def small_graph_inputs(seed=0, n=5, state_dim=7):
    rng = np.random.default_rng(seed)
    states = rng.standard_normal((n, state_dim))
    adjacency = np.eye(n)
    adjacency[0, 1] = adjacency[1, 0] = 0.5
    type_indices = [0, 1, 2, 3, 0]
    return states, adjacency, type_indices


class TestActorCritic:
    def test_actor_output_shape_and_range(self):
        states, adjacency, types = small_graph_inputs()
        actor = GCNActor(state_dim=7, hidden_dim=16, num_gcn_layers=2)
        actions = actor.forward(states, adjacency, types)
        assert actions.shape == (5, 3)
        assert np.all(np.abs(actions) <= 1.0)

    def test_critic_returns_scalar(self):
        states, adjacency, types = small_graph_inputs()
        critic = GCNCritic(state_dim=7, hidden_dim=16, num_gcn_layers=2)
        q = critic.forward(states, np.zeros((5, 3)), adjacency, types)
        assert isinstance(q, float)

    def test_critic_action_gradient_matches_numeric(self):
        states, adjacency, types = small_graph_inputs(seed=3)
        critic = GCNCritic(state_dim=7, hidden_dim=12, num_gcn_layers=2)
        actions = np.random.default_rng(4).uniform(-0.5, 0.5, size=(5, 3))

        critic.forward(states, actions, adjacency, types)
        _, grad_actions = critic.backward(1.0)

        eps = 1e-6
        numeric = np.zeros_like(actions)
        for i in range(actions.shape[0]):
            for j in range(actions.shape[1]):
                up, down = actions.copy(), actions.copy()
                up[i, j] += eps
                down[i, j] -= eps
                q_up = critic.forward(states, up, adjacency, types)
                q_down = critic.forward(states, down, adjacency, types)
                numeric[i, j] = (q_up - q_down) / (2 * eps)
        assert np.allclose(grad_actions, numeric, atol=1e-5)

    def test_actor_parameter_gradient_matches_numeric(self):
        states, adjacency, types = small_graph_inputs(seed=5)
        actor = GCNActor(state_dim=7, hidden_dim=10, num_gcn_layers=1)
        grad_out = np.ones((5, 3))

        actor.zero_grad()
        actor.forward(states, adjacency, types)
        actor.backward(grad_out)
        analytic = actor.input_layer.weight.grad.copy()

        def objective():
            return float(np.sum(actor.forward(states, adjacency, types)))

        eps = 1e-6
        weight = actor.input_layer.weight.value
        numeric = np.zeros_like(weight)
        for i in range(weight.shape[0]):
            for j in range(weight.shape[1]):
                old = weight[i, j]
                weight[i, j] = old + eps
                up = objective()
                weight[i, j] = old - eps
                down = objective()
                weight[i, j] = old
                numeric[i, j] = (up - down) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_ng_variant_ignores_adjacency(self):
        states, adjacency, types = small_graph_inputs()
        actor = GCNActor(state_dim=7, hidden_dim=16, num_gcn_layers=2, use_gcn=False)
        with_graph = actor.forward(states, adjacency, types)
        without_graph = actor.forward(states, np.eye(5), types)
        assert np.allclose(with_graph, without_graph)

    def test_gcn_variant_uses_adjacency(self):
        states, adjacency, types = small_graph_inputs()
        actor = GCNActor(state_dim=7, hidden_dim=16, num_gcn_layers=2, use_gcn=True)
        dense = np.full((5, 5), 0.2)
        assert not np.allclose(
            actor.forward(states, adjacency, types),
            actor.forward(states, dense, types),
        )

    def test_state_dict_transfers_between_instances(self):
        states, adjacency, types = small_graph_inputs()
        actor_a = GCNActor(7, 16, 2, rng=np.random.default_rng(1))
        actor_b = GCNActor(7, 16, 2, rng=np.random.default_rng(2))
        actor_b.load_state_dict(actor_a.state_dict())
        assert np.allclose(
            actor_a.forward(states, adjacency, types),
            actor_b.forward(states, adjacency, types),
        )


class TestBatchedActorCritic:
    """Stacked (B, n, F) actor/critic paths against per-sample ground truth."""

    def test_actor_batched_forward_matches_per_sample(self):
        states, adjacency, types = small_graph_inputs(seed=21)
        actor = GCNActor(state_dim=7, hidden_dim=12, num_gcn_layers=2)
        stacked = np.stack([states, states * 0.5, states * -0.25])
        batched = actor.forward(stacked, adjacency, types).copy()
        assert batched.shape == (3, 5, 3)
        for b in range(3):
            per_sample = actor.forward(stacked[b], adjacency, types)
            assert np.allclose(batched[b], per_sample, atol=0, rtol=0)

    def test_critic_batched_forward_matches_per_sample(self):
        states, adjacency, types = small_graph_inputs(seed=22)
        critic = GCNCritic(state_dim=7, hidden_dim=12, num_gcn_layers=2)
        rng = np.random.default_rng(23)
        stacked_states = np.stack([states] * 4)
        stacked_actions = rng.uniform(-1, 1, size=(4, 5, 3))
        batched = critic.forward(stacked_states, stacked_actions, adjacency, types)
        assert batched.shape == (4,)
        for b in range(4):
            q = critic.forward(stacked_states[b], stacked_actions[b], adjacency, types)
            assert batched[b] == pytest.approx(q, abs=1e-12)

    def test_critic_batched_action_gradient_matches_numeric(self):
        states, adjacency, types = small_graph_inputs(seed=24)
        critic = GCNCritic(state_dim=7, hidden_dim=10, num_gcn_layers=2)
        rng = np.random.default_rng(25)
        stacked_states = np.stack([states] * 3)
        actions = rng.uniform(-0.5, 0.5, size=(3, 5, 3))
        grad_q = np.array([0.7, -1.3, 0.4])

        critic.forward(stacked_states, actions, adjacency, types)
        _, grad_actions = critic.backward(grad_q)

        eps = 1e-6
        numeric = np.zeros_like(actions)
        for b in range(3):
            for i in range(5):
                for j in range(3):
                    up, down = actions.copy(), actions.copy()
                    up[b, i, j] += eps
                    down[b, i, j] -= eps
                    q_up = critic.forward(stacked_states, up, adjacency, types)
                    q_down = critic.forward(stacked_states, down, adjacency, types)
                    numeric[b, i, j] = grad_q @ (q_up - q_down) / (2 * eps)
        assert np.allclose(grad_actions, numeric, atol=1e-5)

    def test_critic_batched_param_grads_match_per_sample_loop(self):
        """The batched backward equals 48 accumulated single-graph backwards."""
        states, adjacency, types = small_graph_inputs(seed=26)
        rng = np.random.default_rng(27)
        batched = GCNCritic(7, 12, 2, rng=np.random.default_rng(30))
        sequential = GCNCritic(7, 12, 2, rng=np.random.default_rng(30))
        stacked_states = np.stack([states] * 6)
        stacked_actions = rng.uniform(-1, 1, size=(6, 5, 3))
        grad_q = rng.standard_normal(6)

        batched.zero_grad()
        batched.forward(stacked_states, stacked_actions, adjacency, types)
        batched.backward(grad_q)
        sequential.zero_grad()
        for b in range(6):
            sequential.forward(stacked_states[b], stacked_actions[b], adjacency, types)
            sequential.backward(float(grad_q[b]))
        for got, expected in zip(batched.parameters(), sequential.parameters()):
            assert np.allclose(got.grad, expected.grad, atol=1e-12), got.name

    def test_actor_batched_param_grads_match_per_sample_loop(self):
        states, adjacency, types = small_graph_inputs(seed=28)
        batched = GCNActor(7, 12, 2, rng=np.random.default_rng(31))
        sequential = GCNActor(7, 12, 2, rng=np.random.default_rng(31))
        rng = np.random.default_rng(29)
        stacked = np.stack([states, states * 0.3, states * -1.0, states + 0.1])
        grad_actions = rng.standard_normal((4, 5, 3))

        batched.zero_grad()
        batched.forward(stacked, adjacency, types)
        batched.backward(grad_actions)
        sequential.zero_grad()
        for b in range(4):
            sequential.forward(stacked[b], adjacency, types)
            sequential.backward(grad_actions[b])
        for got, expected in zip(batched.parameters(), sequential.parameters()):
            assert np.allclose(got.grad, expected.grad, atol=1e-12), got.name


class SyntheticEnvironment(SizingEnvironment):
    """Environment whose reward is a simple analytic function of the actions.

    It reuses a real circuit's topology/state machinery but replaces the
    simulator call, so agent tests run in milliseconds.
    """

    def __init__(self, circuit, target=0.4):
        super().__init__(circuit)
        self.target = target

    def step(self, actions) -> StepResult:
        actions = np.asarray(actions, dtype=float)
        reward = 1.0 - float(np.mean((actions - self.target) ** 2))
        step_index = len(self.history)
        self._record(reward, {"synthetic": reward}, {})
        return StepResult(
            reward=reward, metrics={}, sizing={}, step_index=step_index
        )


@pytest.fixture()
def synthetic_env():
    return SyntheticEnvironment(get_circuit("two_tia"))


class TestAgent:
    def test_agent_training_improves_on_synthetic_task(self, synthetic_env):
        config = AgentConfig(
            warmup=15,
            num_gcn_layers=2,
            hidden_dim=24,
            batch_size=24,
            updates_per_episode=3,
        )
        agent = GCNRLAgent(synthetic_env, config, seed=0)
        log = agent.train(120)
        early = np.mean([r.reward for r in log[:15]])
        late = np.mean([r.reward for r in log[-15:]])
        assert late > early
        assert agent.best_reward > 0.8

    def test_warmup_episodes_are_random(self, synthetic_env):
        config = AgentConfig(warmup=5, num_gcn_layers=1, hidden_dim=8)
        agent = GCNRLAgent(synthetic_env, config, seed=1)
        log = agent.train(5)
        assert all(record.warmup for record in log)

    def test_act_produces_valid_actions(self, synthetic_env):
        agent = GCNRLAgent(
            synthetic_env, AgentConfig(num_gcn_layers=1, hidden_dim=8), seed=2
        )
        actions = agent.act(explore=True)
        assert actions.shape == (
            synthetic_env.num_components,
            synthetic_env.action_dim,
        )
        assert np.all(np.abs(actions) <= 1.0)

    def test_state_dict_roundtrip_preserves_policy(self, synthetic_env):
        agent = GCNRLAgent(
            synthetic_env, AgentConfig(num_gcn_layers=1, hidden_dim=8), seed=3
        )
        before = agent.act(explore=False)
        state = agent.state_dict()
        other = GCNRLAgent(
            SyntheticEnvironment(get_circuit("two_tia")),
            AgentConfig(num_gcn_layers=1, hidden_dim=8),
            seed=99,
        )
        other.load_state_dict(state)
        assert np.allclose(before, other.act(explore=False))

    def test_attach_environment_rejects_state_mismatch(self):
        env_a = SizingEnvironment(get_circuit("two_tia"))
        env_b = SizingEnvironment(get_circuit("three_tia"))
        agent = GCNRLAgent(env_a, AgentConfig(num_gcn_layers=1, hidden_dim=8))
        with pytest.raises(ValueError):
            agent.attach_environment(env_b)

    def test_attach_environment_allows_transferable_topologies(self):
        env_a = SizingEnvironment(get_circuit("two_tia"), transferable_state=True)
        env_b = SizingEnvironment(get_circuit("three_tia"), transferable_state=True)
        agent = GCNRLAgent(env_a, AgentConfig(num_gcn_layers=1, hidden_dim=8))
        agent.attach_environment(env_b)
        assert agent.environment is env_b

    def test_attach_environment_resets_buffers(self, synthetic_env):
        agent = GCNRLAgent(
            synthetic_env,
            AgentConfig(num_gcn_layers=1, hidden_dim=8, warmup=1),
            seed=0,
        )
        agent.train(3)
        fresh = SyntheticEnvironment(get_circuit("two_tia"))
        agent.attach_environment(fresh)
        assert len(agent.replay_buffer) == 0
        assert agent._episode == 0

    def test_training_on_real_environment_smoke(self):
        env = make_environment("two_tia", "180nm")
        config = AgentConfig(
            warmup=3, num_gcn_layers=2, hidden_dim=16, batch_size=8,
            updates_per_episode=1,
        )
        agent = GCNRLAgent(env, config, seed=0)
        log = agent.train(6)
        assert len(log) == 6
        assert np.isfinite(agent.best_reward)


def _max_weight_diff(agent_a: GCNRLAgent, agent_b: GCNRLAgent) -> float:
    state_a, state_b = agent_a.state_dict(), agent_b.state_dict()
    return max(
        float(np.max(np.abs(state_a[net][key] - state_b[net][key])))
        for net in state_a
        for key in state_a[net]
    )


class TestBatchedUpdateParity:
    """The batched critic update must reproduce the per-sample loop.

    ``_update_networks`` folds the replay batch into stacked matmuls whose
    reductions reorder floating point, so weights agree to reduction
    precision rather than bit-for-bit — the acceptance bar is 1e-9 over a
    full training run, the same bar the vectorized SPICE engine meets.
    """

    @staticmethod
    def _train_pair(make_env, episodes, **config_kwargs):
        config = AgentConfig(**config_kwargs)
        batched = GCNRLAgent(make_env(), config, seed=0)
        sequential = GCNRLAgent(make_env(), config, seed=0)
        sequential._update_networks = sequential._update_networks_loop
        log_batched = batched.train(episodes)
        log_sequential = sequential.train(episodes)
        return batched, sequential, log_batched, log_sequential

    def test_synthetic_training_run_parity(self):
        batched, sequential, log_b, log_s = self._train_pair(
            lambda: SyntheticEnvironment(get_circuit("two_tia")),
            episodes=30,
            warmup=8,
            num_gcn_layers=3,
            hidden_dim=32,
            batch_size=24,
            updates_per_episode=3,
        )
        assert _max_weight_diff(batched, sequential) <= 1e-9
        for rec_b, rec_s in zip(log_b, log_s):
            assert rec_b.reward == pytest.approx(rec_s.reward, abs=1e-12)
            assert rec_b.best_reward == pytest.approx(rec_s.best_reward, abs=1e-12)
            if np.isfinite(rec_s.critic_loss):
                assert rec_b.critic_loss == pytest.approx(rec_s.critic_loss, abs=1e-9)

    def test_figure5_style_training_run_parity(self):
        """Full paper-config training on the real simulator (Figure 5 protocol).

        Paper architecture (7 GCN layers, hidden 64, batch 48, 5 updates per
        episode) on the calibrated Two-TIA environment at the benchmark
        harness's scaled episode budget; weights and learning curves of the
        batched and per-sample paths must agree after every update of the
        run.
        """
        batched, sequential, log_b, log_s = self._train_pair(
            lambda: make_environment("two_tia", "180nm"),
            episodes=40,
            warmup=10,
        )
        assert _max_weight_diff(batched, sequential) <= 1e-9
        for rec_b, rec_s in zip(log_b, log_s):
            assert rec_b.reward == pytest.approx(rec_s.reward, abs=1e-12)
            assert rec_b.best_reward == pytest.approx(rec_s.best_reward, abs=1e-12)
        assert batched.best_reward == pytest.approx(sequential.best_reward, abs=1e-12)

    def test_rng_streams_identical_after_updates(self, synthetic_env):
        """Both update paths must consume the generator identically."""
        config = AgentConfig(warmup=3, num_gcn_layers=2, hidden_dim=16, batch_size=8)
        batched = GCNRLAgent(synthetic_env, config, seed=7)
        sequential = GCNRLAgent(
            SyntheticEnvironment(get_circuit("two_tia")), config, seed=7
        )
        sequential._update_networks = sequential._update_networks_loop
        batched.train(8)
        sequential.train(8)
        assert batched.rng.integers(0, 2**31) == sequential.rng.integers(0, 2**31)
