"""Chaos suite for the resilience layer (repro.resilience and friends).

Covers the failure taxonomy, the deterministic fault-injection harness, the
resilient evaluator (poison isolation via bisection, bounded retries,
NaN→nonconvergence, per-attempt deadlines, quarantine fail-fast, the
per-bucket circuit breaker), the service integration (per-client failure
isolation in coalesced batches, admission control, taxonomy on the wire,
client connection retry), and the cluster integration (heartbeat renew-error
accounting, poison-cell quarantine that drains instead of livelocking, a
campaign under injected faults finishing bit-identically to a fault-free
reference, and corrupt checkpoint blobs restarting the cell on all three
store backends).
"""

from __future__ import annotations

import asyncio
import json
import math
import socket
import threading
import time

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.cluster import CampaignWorker, LeaseHeartbeat, cell_states, lease_store_for
from repro.eval import (
    EvalRequest,
    EvaluatorConfig,
    LocalEvaluator,
    request_cache_key,
)
from repro.eval.base import Evaluator
from repro.experiments import runner as runner_module
from repro.experiments.__main__ import main as cli_main
from repro.resilience import (
    FAILURE_KINDS,
    EvalFailure,
    EvalFailureError,
    EvalTimeoutError,
    FaultInjectingEvaluator,
    InjectedCrash,
    InjectedFault,
    ResilientEvaluator,
    RetryPolicy,
    classify_exception,
    is_nonconverged,
)
from repro.service import (
    BatchCoalescer,
    EvaluationError,
    OverloadedError,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.protocol import error_frame
from repro.store import Campaign, CampaignSpec, MemoryStore, open_run_store

STORE_BACKENDS = ("memory", "jsonl", "sqlite")


def _requests(count: int, seed: int = 7, circuit_name: str = "two_tia"):
    circuit = get_circuit(circuit_name, "180nm")
    rng = np.random.default_rng(seed)
    return [
        EvalRequest(circuit_name, "180nm", circuit.random_sizing(rng))
        for _ in range(count)
    ]


def _no_sleep(_delay: float) -> None:
    """Backoff stub: retries must not slow the suite down."""


def _poison(targets):
    """Predicate poisoning exactly the designs whose cache key is listed."""
    keys = set(targets)

    def predicate(request):
        return "error" if request_cache_key(request) in keys else None

    return predicate


class SlowEvaluator(Evaluator):
    """Wrapper that stalls every batch — deadline-enforcement fodder."""

    def __init__(self, inner: Evaluator, delay_s: float):
        self.inner = inner
        self._circuit = inner._circuit
        self._circuits = inner._circuits
        self.delay_s = float(delay_s)

    @property
    def stats(self):
        return self.inner.stats

    def evaluate_requests(self, requests):
        time.sleep(self.delay_s)
        return self.inner.evaluate_requests(requests)

    def peek(self, request):
        return self.inner.peek(request)

    def close(self):
        self.inner.close()


# --- taxonomy ---------------------------------------------------------------------
class TestTaxonomy:
    def test_classify_exception_precedence(self):
        assert classify_exception(InjectedFault("x")) == "injected"
        assert classify_exception(InjectedCrash("x")) == "worker_crash"
        assert classify_exception(EvalTimeoutError("x")) == "timeout"
        assert classify_exception(TimeoutError("x")) == "timeout"
        assert classify_exception(OSError("x")) == "worker_crash"
        assert classify_exception(ValueError("x")) == "simulator_error"

    def test_eval_failure_shape(self):
        request = _requests(1)[0]
        with pytest.raises(ValueError):
            EvalFailure(request=request, kind="gremlins", message="no")
        failure = EvalFailure(
            request=request, kind="timeout", message="slow", attempts=3
        )
        assert failure.retryable
        row = failure.to_dict()
        assert row["kind"] == "timeout" and row["attempts"] == 3
        assert row["circuit"] == "two_tia" and row["retryable"] is True
        # Deterministic failures are the one non-retryable kind.
        assert not EvalFailure(
            request=request, kind="nonconvergence", message="nan"
        ).retryable
        assert set(FAILURE_KINDS) == {
            "nonconvergence", "timeout", "simulator_error",
            "worker_crash", "injected",
        }

    def test_is_nonconverged_flags_nan_only(self):
        assert is_nonconverged({"gain": float("nan"), "bw": 1.0})
        # -inf dB from log10(0) is a legitimate measurement, not a failure.
        assert not is_nonconverged({"gain": float("-inf"), "bw": 1.0})
        assert not is_nonconverged({"gain": 10.0, "bw": 1.0})


# --- chaos harness ----------------------------------------------------------------
class TestChaosHarness:
    def test_fault_decisions_are_pure_in_seed_and_design(self):
        requests = _requests(40, seed=3)
        rates = dict(error_rate=0.15, nan_rate=0.1, timeout_rate=0.05)
        one = FaultInjectingEvaluator(LocalEvaluator(), seed=9, **rates)
        two = FaultInjectingEvaluator(LocalEvaluator(), seed=9, **rates)
        decisions = {request_cache_key(r): one.fault_for(r) for r in requests}
        # Same (seed, design) -> same fault, in any order, on any instance.
        for request in reversed(requests):
            assert two.fault_for(request) == decisions[request_cache_key(request)]
        other_seed = FaultInjectingEvaluator(LocalEvaluator(), seed=10, **rates)
        assert any(
            other_seed.fault_for(r) != decisions[request_cache_key(r)]
            for r in requests
        )
        faulted = sum(1 for fault in decisions.values() if fault is not None)
        assert 0 < faulted < len(requests)

    def test_rate_edges(self):
        requests = _requests(8)
        everything = FaultInjectingEvaluator(LocalEvaluator(), error_rate=1.0)
        assert all(everything.fault_for(r) == "error" for r in requests)
        nothing = FaultInjectingEvaluator(LocalEvaluator())
        assert all(nothing.fault_for(r) is None for r in requests)
        with pytest.raises(ValueError):
            FaultInjectingEvaluator(LocalEvaluator(), error_rate=0.7, nan_rate=0.5)

    def test_transient_faults_recover_after_n_attempts(self):
        request = _requests(1)[0]
        chaos = FaultInjectingEvaluator(
            LocalEvaluator(),
            error_rate=1.0,
            transient_attempts=2,
        )
        for _ in range(2):
            with pytest.raises(InjectedFault):
                chaos.evaluate_requests([request])
        results = chaos.evaluate_requests([request])
        assert math.isfinite(next(iter(results[0].metrics.values())))
        assert chaos.injected["error"] == 2


# --- the resilient evaluator ------------------------------------------------------
class TestResilientEvaluator:
    def test_clean_batch_is_one_inner_call_with_zero_recovery(self):
        requests = _requests(6)
        inner = LocalEvaluator()
        resilient = ResilientEvaluator(inner, sleep=_no_sleep)
        before = inner.stats.num_batches
        outcomes = resilient.evaluate_outcomes(requests)
        assert inner.stats.num_batches == before + 1
        assert all(not isinstance(o, EvalFailure) for o in outcomes)
        assert all(value == 0 for value in resilient.rstats.to_dict().values())

    def test_poison_isolated_and_rest_bit_identical(self):
        requests = _requests(8, seed=5)
        poison_key = request_cache_key(requests[3])
        reference = LocalEvaluator().evaluate_requests(requests)
        chaos = FaultInjectingEvaluator(
            LocalEvaluator(), predicate=_poison([poison_key])
        )
        resilient = ResilientEvaluator(
            chaos,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            sleep=_no_sleep,
        )
        outcomes = resilient.evaluate_outcomes(requests)
        for index, outcome in enumerate(outcomes):
            if index == 3:
                assert isinstance(outcome, EvalFailure)
                assert outcome.kind == "injected" and outcome.attempts == 2
            else:
                assert outcome.metrics == reference[index].metrics
        assert resilient.rstats.bisections >= 1
        assert resilient.rstats.failures == 1
        assert resilient.rstats.quarantined == 1

    def test_transient_fault_in_batch_recovers_during_isolation(self):
        """A fault that clears after one attempt is healed by the first
        bucket-level re-attempt — no failure, no serial downgrade."""
        requests = _requests(4, seed=6)
        chaos = FaultInjectingEvaluator(
            LocalEvaluator(),
            predicate=_poison([request_cache_key(requests[1])]),
            transient_attempts=1,
        )
        resilient = ResilientEvaluator(
            chaos,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
            sleep=_no_sleep,
        )
        outcomes = resilient.evaluate_outcomes(requests)
        assert all(not isinstance(o, EvalFailure) for o in outcomes)
        assert resilient.rstats.failures == 0

    def test_transient_fault_retried_to_success_on_serial_path(self):
        request = _requests(1, seed=6)[0]
        chaos = FaultInjectingEvaluator(
            LocalEvaluator(),
            predicate=_poison([request_cache_key(request)]),
            transient_attempts=2,
        )
        resilient = ResilientEvaluator(
            chaos,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
            sleep=_no_sleep,
        )
        outcomes = resilient.evaluate_outcomes([request])
        assert not isinstance(outcomes[0], EvalFailure)
        assert resilient.rstats.retries == 1
        assert resilient.rstats.serial_downgrades == 1
        assert resilient.rstats.failures == 0

    def test_nan_metrics_become_nonconvergence_without_retry(self):
        requests = _requests(3, seed=8)
        chaos = FaultInjectingEvaluator(
            LocalEvaluator(),
            predicate=lambda r: (
                "nan" if request_cache_key(r) == request_cache_key(requests[0])
                else None
            ),
        )
        resilient = ResilientEvaluator(chaos, sleep=_no_sleep)
        outcomes = resilient.evaluate_outcomes(requests)
        assert isinstance(outcomes[0], EvalFailure)
        assert outcomes[0].kind == "nonconvergence"
        assert not outcomes[0].retryable
        # NaN is deterministic: no retries were burned on it.
        assert resilient.rstats.retries == 0
        assert not isinstance(outcomes[1], EvalFailure)

    def test_deadline_classifies_as_timeout(self):
        request = _requests(1, seed=9)[0]
        resilient = ResilientEvaluator(
            SlowEvaluator(LocalEvaluator(), delay_s=5.0),
            policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.0, jitter=0.0, deadline_s=0.05
            ),
            sleep=_no_sleep,
        )
        outcome = resilient.evaluate_outcomes([request])[0]
        assert isinstance(outcome, EvalFailure)
        assert outcome.kind == "timeout" and outcome.attempts == 2
        assert resilient.rstats.retries == 1

    def test_quarantine_fails_fast_on_resubmission(self):
        requests = _requests(2, seed=10)
        chaos = FaultInjectingEvaluator(
            LocalEvaluator(), predicate=_poison([request_cache_key(requests[0])])
        )
        resilient = ResilientEvaluator(
            chaos,
            policy=RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0),
            sleep=_no_sleep,
        )
        first = resilient.evaluate_outcomes(requests)
        assert isinstance(first[0], EvalFailure) and first[0].attempts == 1
        attempts_before = chaos.injected["error"]
        second = resilient.evaluate_outcomes(requests)
        assert isinstance(second[0], EvalFailure)
        assert second[0].attempts == 0
        assert second[0].message.startswith("quarantined:")
        # Fail-fast means the poison never reached the inner stack again.
        assert chaos.injected["error"] == attempts_before
        assert resilient.rstats.quarantine_hits == 1
        assert len(resilient.quarantine) == 1
        resilient.clear_quarantine()
        assert resilient.quarantine == []

    def test_breaker_trips_serial_cooldown_then_recovers(self):
        poisoned = [True]
        chaos = FaultInjectingEvaluator(
            LocalEvaluator(),
            predicate=lambda r: "error" if poisoned[0] else None,
        )
        resilient = ResilientEvaluator(
            chaos,
            policy=RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0),
            breaker_threshold=2,
            breaker_cooldown=2,
            sleep=_no_sleep,
        )
        bucket = ("two_tia", "180nm")
        # Two consecutive failed group attempts trip the bucket breaker.
        resilient.evaluate_outcomes(_requests(2, seed=20))
        assert not resilient.breaker_open(bucket)
        resilient.evaluate_outcomes(_requests(2, seed=21))
        assert resilient.breaker_open(bucket)
        assert resilient.rstats.breaker_trips == 1
        # While open: the serial per-request path, no grouped attempts.
        poisoned[0] = False
        serial_before = resilient.rstats.serial_downgrades
        healthy = resilient.evaluate_outcomes(_requests(2, seed=22))
        assert all(not isinstance(o, EvalFailure) for o in healthy)
        assert resilient.rstats.serial_downgrades == serial_before + 2
        resilient.evaluate_outcomes(_requests(2, seed=23))
        # Cooldown elapsed (2 bucket-calls): the grouped path is probed and
        # succeeds, closing the breaker for good.
        assert not resilient.breaker_open(bucket)
        serial_before = resilient.rstats.serial_downgrades
        recovered = resilient.evaluate_outcomes(_requests(2, seed=24))
        assert all(not isinstance(o, EvalFailure) for o in recovered)
        assert resilient.rstats.serial_downgrades == serial_before

    def test_strict_adapter_raises_with_taxonomy(self):
        requests = _requests(2, seed=11)
        chaos = FaultInjectingEvaluator(
            LocalEvaluator(), predicate=_poison([request_cache_key(requests[1])])
        )
        resilient = ResilientEvaluator(
            chaos,
            policy=RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0),
            sleep=_no_sleep,
        )
        with pytest.raises(EvalFailureError) as excinfo:
            resilient.evaluate_requests(requests)
        assert excinfo.value.failure.kind == "injected"


# --- service integration ----------------------------------------------------------
class TestServiceResilience:
    def test_one_poisoned_client_in_coalesced_batch_fails_alone(self):
        """8 concurrent clients share coalesced batches; the single client
        whose design is poisoned gets the taxonomy-carrying error, the
        other 7 succeed bit-identically to direct evaluation."""
        n_clients = 8
        config = ServiceConfig(
            port=0,
            linger_ms=150.0,
            eval_attempts=2,
            chaos_rate=1e-15,  # instantiate the harness; never self-fires
            chaos_transient=0,
        )
        circuit = get_circuit("two_tia", "180nm")
        rng = np.random.default_rng(31)
        sizings = [circuit.random_sizing(rng) for _ in range(n_clients)]
        poison_index = 2
        poison_key = request_cache_key(
            EvalRequest("two_tia", "180nm", sizings[poison_index])
        )
        reference_eval = config.evaluator_config().build()
        reference = reference_eval.evaluate_requests(
            [EvalRequest("two_tia", "180nm", s) for s in sizings]
        )
        reference_eval.close()

        with ServerThread(config) as server:
            chaos = server.service.coalescer.evaluator.inner
            assert isinstance(chaos, FaultInjectingEvaluator)
            chaos.predicate = _poison([poison_key])

            barrier = threading.Barrier(n_clients)
            outputs = [None] * n_clients
            failures = [None] * n_clients

            def worker(index: int):
                try:
                    with ServiceClient(port=server.port) as client:
                        barrier.wait(timeout=30)
                        outputs[index] = client.evaluate(
                            "two_tia", [sizings[index]]
                        )
                except ServiceError as error:
                    failures[index] = error

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            snapshot = server.service.coalescer.snapshot()

        for index in range(n_clients):
            if index == poison_index:
                assert outputs[index] is None
                error = failures[index]
                assert error is not None
                assert error.kind == "injected"
                assert error.retryable is True
                assert error.attempts == 2
            else:
                assert failures[index] is None, failures[index]
                metrics = outputs[index][0]["metrics"]
                assert metrics == reference[index].metrics
        assert snapshot["coalescer"]["failures"] == 1
        assert snapshot["resilience"]["quarantined"] == 1
        assert snapshot["chaos"]["error"] >= 1

    def test_admission_control_rejects_with_retryable_overloaded(self):
        circuit = get_circuit("two_tia", "180nm")
        rng = np.random.default_rng(17)
        sizings = [circuit.random_sizing(rng) for _ in range(3)]

        async def scenario():
            coalescer = BatchCoalescer(
                EvaluatorConfig(cache_size=64), linger_s=0.0, max_pending=2
            )
            try:
                with pytest.raises(OverloadedError) as excinfo:
                    await coalescer.submit("two_tia", "180nm", sizings)
                assert excinfo.value.kind == "overloaded"
                assert excinfo.value.retryable is True
                assert coalescer.stats.rejected == 1
                # Within the bound the funnel still serves.
                results = await coalescer.submit(
                    "two_tia", "180nm", sizings[:2]
                )
                assert len(results) == 2
            finally:
                coalescer.close()

        asyncio.run(scenario())

    def test_error_frame_carries_taxonomy(self):
        frame = error_frame(
            "boom", request_id=4, kind="timeout", retryable=True, attempts=3
        )
        assert frame["kind"] == "timeout"
        assert frame["retryable"] is True and frame["attempts"] == 3
        bare = error_frame("boom")
        assert "kind" not in bare and "retryable" not in bare

    def test_client_connect_retry_exhaustion_and_recovery(self, monkeypatch):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: sleeps.append(s)
        )
        client = ServiceClient(port=port, retry=3, retry_base_delay_s=0.05)
        with pytest.raises(OSError):
            client._connect()
        assert len(sleeps) == 2  # backoff between the 3 attempts
        assert sleeps[1] > sleeps[0]  # exponential

        # A listener appearing mid-backoff (server restart) is survived.
        listener = socket.socket()

        def listen_now(delay):
            sleeps.append(delay)
            if listener.fileno() != -1 and not getattr(listen_now, "armed", False):
                listener.bind(("127.0.0.1", port))
                listener.listen(1)
                listen_now.armed = True

        monkeypatch.setattr("repro.service.client.time.sleep", listen_now)
        late = ServiceClient(port=port, retry=5, retry_base_delay_s=0.01)
        try:
            late._connect()
            assert late._sock is not None
        finally:
            late.close()
            listener.close()
        with pytest.raises(ValueError):
            ServiceClient(port=port, retry=0)


# --- cluster integration ----------------------------------------------------------
class FlakyLeaseStore:
    """Lease-store stand-in whose renew errors on command."""

    def __init__(self):
        self.fail = False
        self.renews = 0

    def renew(self, key, owner, ttl):
        self.renews += 1
        if self.fail:
            raise OSError("store unreachable")
        return True


def tiny_spec(**overrides):
    spec = CampaignSpec(
        methods=["human", "random"],
        circuits=["two_tia"],
        technologies=["180nm"],
        seeds=2,
        steps=3,
    )
    for key, value in overrides.items():
        setattr(spec, key, value)
    return spec


class TestClusterResilience:
    def test_heartbeat_accumulated_renew_errors_mark_lost(self):
        store = FlakyLeaseStore()
        store.fail = True
        from repro.store import make_run_key

        key = make_run_key("random", "two_tia", "180nm", 5, 0)
        heartbeat = LeaseHeartbeat(store, key, "w0", ttl=0.2, interval=0.02)
        heartbeat.start()
        heartbeat.join(timeout=10)
        assert not heartbeat.is_alive()
        assert heartbeat.lost
        assert heartbeat.consecutive_errors >= 2

    def test_heartbeat_transient_renew_error_recovers(self):
        store = FlakyLeaseStore()
        from repro.store import make_run_key

        key = make_run_key("random", "two_tia", "180nm", 5, 0)
        heartbeat = LeaseHeartbeat(store, key, "w0", ttl=5.0, interval=0.02)
        store.fail = True
        heartbeat.start()
        time.sleep(0.1)
        store.fail = False
        time.sleep(0.1)
        assert not heartbeat.lost
        assert heartbeat.consecutive_errors == 0
        heartbeat.stop()

    def test_poison_cell_quarantined_and_sweep_drains(self, capsys):
        spec = tiny_spec(circuits=["two_tia", "ldo"], methods=["human"], seeds=1)
        store = MemoryStore()
        campaign = Campaign(spec, store)
        chaos = FaultInjectingEvaluator(
            EvaluatorConfig().build(),
            predicate=lambda r: "error" if r.circuit == "ldo" else None,
        )
        outcomes = []
        worker = CampaignWorker(
            campaign,
            evaluator=chaos,
            checkpoint_every=1,
            poll_interval=0.01,
            cell_retries=2,
            retry_backoff_s=0.0,
            progress=lambda _a, outcome: outcomes.append(outcome),
        )
        report = worker.run()
        assert report.executed == 1 and report.quarantined == 1
        assert "quarantined=1" in report.summary()
        assert "quarantined" in outcomes

        poisoned = [r for r in campaign.requests() if r.circuit == "ldo"][0]
        info = store.get_quarantine(campaign.key_for(poisoned))
        assert info is not None
        assert info["kind"] == "injected" and info["attempts"] == 2
        assert info["worker"] == worker.worker_id

        # The sweep is drained, not livelocked: status accounts for the
        # poison, the scheduler never hands it out again, and a second
        # worker run is an immediate no-op.
        status = campaign.status()
        assert status["pending"] == 0 and status["quarantined"] == 1
        states = cell_states(campaign, lease_store_for(store))
        assert sorted(s.state for s in states) == ["done", "quarantined"]
        rerun = CampaignWorker(campaign, poll_interval=0.01).run()
        assert rerun.executed == 0 and rerun.quarantined == 0

        # Lifting the quarantine frees the cell again.
        store.delete_quarantine(campaign.key_for(poisoned))
        assert campaign.status()["pending"] == 1

    def test_ls_status_reports_quarantined_cells(self, tmp_path, capsys):
        spec = tiny_spec()
        with open_run_store("jsonl", tmp_path / "store") as store:
            campaign = Campaign(spec, store)
            key = campaign.key_for(campaign.requests()[0])
            store.put_quarantine(key, {"kind": "injected", "message": "x"})
        capsys.readouterr()
        code = cli_main(
            [
                "ls",
                "--status",
                "--store-dir",
                str(tmp_path / "store"),
                "--spec",
                json.dumps(spec.to_dict()),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[quarantined]" in out
        assert (
            "cells: total=3 done=0 leased=0 expired=0 "
            "pending=2 quarantined=1" in out
        )

    def test_campaign_under_chaos_matches_fault_free_reference(self):
        spec = tiny_spec()
        reference_store = MemoryStore()
        reference = Campaign(spec, reference_store).run()
        assert reference.remaining == 0

        store = MemoryStore()
        campaign = Campaign(spec, store)
        chaos = FaultInjectingEvaluator(
            EvaluatorConfig().build(),
            seed=8,
            error_rate=0.25,
            transient_attempts=1,
        )
        worker = CampaignWorker(
            campaign,
            evaluator=chaos,
            checkpoint_every=1,
            poll_interval=0.01,
            cell_retries=8,
            retry_backoff_s=0.0,
        )
        report = worker.run()
        assert report.executed == 3 and report.quarantined == 0
        assert campaign.status()["pending"] == 0
        # The harness verifiably injected something (or this test is vacuous
        # for the chosen seed) — and every record is still bit-identical.
        assert sum(chaos.injected.values()) >= 1
        for request in campaign.requests():
            key = campaign.key_for(request)
            ours = store.get(key).to_dict()
            ref = reference_store.get(key).to_dict()
            ours.pop("wall_time_s"), ref.pop("wall_time_s")
            assert ours == ref

    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_corrupt_checkpoint_logs_and_restarts_cell(
        self, backend, tmp_path, caplog
    ):
        spec = tiny_spec(methods=["random"], seeds=1)
        reference_store = MemoryStore()
        Campaign(spec, reference_store).run()

        with open_run_store(backend, tmp_path / "store") as store:
            campaign = Campaign(spec, store)
            key = campaign.key_for(campaign.requests()[0])
            store.put_checkpoint(key, b"\x80\x04 not a checkpoint")
            with caplog.at_level("WARNING"):
                report = campaign.run()
            assert report.executed == 1 and report.remaining == 0
            assert any(
                "corrupt checkpoint" in message for message in caplog.messages
            )
            assert store.get_checkpoint(key) is None
            ours = store.get(key).to_dict()
            ref = reference_store.get(key).to_dict()
            ours.pop("wall_time_s"), ref.pop("wall_time_s")
            assert ours == ref

    def test_versioned_checkpoint_mismatch_still_raises(self, tmp_path):
        import pickle

        spec = tiny_spec(methods=["random"], seeds=1)
        store = MemoryStore()
        campaign = Campaign(spec, store)
        key = campaign.key_for(campaign.requests()[0])
        store.put_checkpoint(key, pickle.dumps({"version": 999}))
        with pytest.raises(ValueError, match="checkpoint version"):
            campaign.run()
