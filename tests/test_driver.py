"""Tests for the ask/tell Strategy protocol and the OptimizationDriver.

The parity classes re-implement the *pre-redesign* monolithic ``run(budget)``
loops verbatim (as plain functions over the same strategy hyper-parameters
and RNG streams) and assert the driver-driven ask/tell path reproduces their
learning curves bit for bit — the contract the API redesign promised.
"""

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.env import SizingEnvironment
from repro.experiments.driver import DriverStep, OptimizationDriver
from repro.optim import (
    BayesianOptimization,
    EvolutionStrategy,
    MACE,
    OptimizationResult,
    Proposal,
    RandomSearch,
    Strategy,
    get_strategy,
    list_optimizers,
    register_strategy,
    strategy_config_fields,
)
from repro.optim.gaussian_process import (
    GaussianProcess,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.optim.mace import pareto_front_indices
from repro.rl.agent import AgentConfig, GCNRLAgent
from repro.rl.strategy import GCNRLStrategy
from repro.store import MemoryStore, make_run_key
from repro.store.jsonl import JsonlStore


class QuadraticEnvironment(SizingEnvironment):
    """Synthetic environment: reward peaks at a known point of the cube."""

    def __init__(self, circuit, optimum=0.3):
        super().__init__(circuit)
        self.optimum = optimum

    def evaluate_normalized_batch(self, vectors) -> list:
        results = []
        for vector in vectors:
            vector = np.asarray(vector, dtype=float)
            reward = 1.0 - float(np.mean((vector - self.optimum) ** 2))
            results.append(self._record(reward, {"synthetic": reward}, {}))
        return results


def make_env():
    return QuadraticEnvironment(get_circuit("two_tia"))


def eval_batch(environment, points):
    """The old ``BlackBoxOptimizer._evaluate_batch`` helper, verbatim."""
    points = np.clip(np.asarray(points, dtype=float), -1.0, 1.0)
    results = environment.evaluate_normalized_batch(points)
    return np.asarray([r.reward for r in results], dtype=np.float64)


# --- the pre-redesign run(budget) loops, preserved as references ----------------------


def legacy_random(opt, budget):
    if budget > 0:
        points = opt.rng.uniform(-1.0, 1.0, size=(budget, opt.dimension))
        eval_batch(opt.environment, points)


def legacy_es(opt, budget):
    d = opt.dimension
    mean = np.zeros(d)
    sigma = opt.initial_sigma
    covariance = np.eye(d)
    path_sigma = np.zeros(d)
    path_c = np.zeros(d)
    evaluations = 0
    generation = 0
    while evaluations < budget:
        lam = min(opt.population_size, budget - evaluations)
        try:
            chol = np.linalg.cholesky(covariance + 1e-10 * np.eye(d))
        except np.linalg.LinAlgError:
            covariance = np.eye(d)
            chol = np.eye(d)
        raw = opt.rng.standard_normal((lam, d))
        offspring = np.clip(mean + sigma * raw @ chol.T, -1.0, 1.0)
        rewards = eval_batch(opt.environment, offspring)
        evaluations += lam
        if lam < opt.num_parents:
            break
        order = np.argsort(-rewards)
        parents = offspring[order[: opt.num_parents]]
        steps = (parents - mean) / max(sigma, 1e-12)
        new_mean = mean + sigma * opt.weights @ steps
        inv_chol = np.linalg.inv(chol)
        mean_step = opt.weights @ steps
        path_sigma = (1 - opt.c_sigma) * path_sigma + np.sqrt(
            opt.c_sigma * (2 - opt.c_sigma) * opt.mu_eff
        ) * (inv_chol @ mean_step)
        sigma *= np.exp(
            (opt.c_sigma / opt.d_sigma)
            * (np.linalg.norm(path_sigma) / opt.chi_n - 1)
        )
        sigma = float(np.clip(sigma, 1e-3, 1.0))
        h_sigma = float(
            np.linalg.norm(path_sigma)
            / np.sqrt(1 - (1 - opt.c_sigma) ** (2 * (generation + 1)))
            < (1.4 + 2 / (d + 1)) * opt.chi_n
        )
        path_c = (1 - opt.c_c) * path_c + h_sigma * np.sqrt(
            opt.c_c * (2 - opt.c_c) * opt.mu_eff
        ) * mean_step
        rank_mu = sum(w * np.outer(s, s) for w, s in zip(opt.weights, steps))
        covariance = (
            (1 - opt.c_1 - opt.c_mu) * covariance
            + opt.c_1 * np.outer(path_c, path_c)
            + opt.c_mu * rank_mu
        )
        covariance = 0.5 * (covariance + covariance.T)
        mean = np.clip(new_mean, -1.0, 1.0)
        generation += 1


def legacy_bo(opt, budget):
    num_initial = min(opt.num_initial, budget)
    if num_initial > 0:
        points = opt.rng.uniform(-1.0, 1.0, size=(num_initial, opt.dimension))
        rewards = eval_batch(opt.environment, points)
        opt._x.extend(points)
        opt._y.extend(rewards.tolist())
    for _ in range(budget - num_initial):
        x_train, y_train = opt._training_set()
        gp = GaussianProcess().fit(x_train, y_train)
        incumbent_point = opt._x[int(np.argmax(opt._y))]
        candidates = opt._candidates(np.asarray(incumbent_point))
        mean, std = gp.predict(candidates)
        acquisition = expected_improvement(mean, std, float(np.max(opt._y)))
        chosen = candidates[int(np.argmax(acquisition))]
        reward = float(eval_batch(opt.environment, chosen[None, :])[0])
        opt._x.append(chosen)
        opt._y.append(reward)


def legacy_mace(opt, budget):
    num_initial = min(opt.num_initial, budget)
    if num_initial > 0:
        points = opt.rng.uniform(-1.0, 1.0, size=(num_initial, opt.dimension))
        rewards = eval_batch(opt.environment, points)
        opt._x.extend(points)
        opt._y.extend(rewards.tolist())
    remaining = budget - num_initial
    while remaining > 0:
        x_train, y_train = opt._training_set()
        gp = GaussianProcess().fit(x_train, y_train)
        incumbent = np.asarray(opt._x[int(np.argmax(opt._y))])
        uniform = opt.rng.uniform(
            -1.0, 1.0, size=(opt.candidate_pool // 2, opt.dimension)
        )
        local = incumbent + 0.2 * opt.rng.standard_normal(
            (opt.candidate_pool - len(uniform), opt.dimension)
        )
        candidates = np.clip(np.vstack([uniform, local]), -1.0, 1.0)
        mean, std = gp.predict(candidates)
        best = float(np.max(opt._y))
        acquisitions = np.column_stack(
            [
                expected_improvement(mean, std, best),
                probability_of_improvement(mean, std, best),
                upper_confidence_bound(mean, std),
            ]
        )
        front = pareto_front_indices(acquisitions)
        batch_size = min(opt.batch_size, remaining)
        if len(front) >= batch_size:
            chosen = opt.rng.choice(front, size=batch_size, replace=False)
        else:
            extra = opt.rng.choice(
                len(candidates), size=batch_size - len(front), replace=False
            )
            chosen = np.concatenate([front, extra])
        batch = candidates[chosen]
        rewards = eval_batch(opt.environment, batch)
        opt._x.extend(batch)
        opt._y.extend(rewards.tolist())
        remaining -= len(batch)


LEGACY_LOOPS = {
    "random": (RandomSearch, legacy_random),
    "es": (EvolutionStrategy, legacy_es),
    "bo": (BayesianOptimization, legacy_bo),
    "mace": (MACE, legacy_mace),
}


class TestBlackBoxParity:
    """Driver-driven ask/tell == pre-redesign run(budget), bit for bit."""

    @pytest.mark.parametrize("method", sorted(LEGACY_LOOPS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_learning_curves_bit_identical(self, method, seed):
        cls, legacy = LEGACY_LOOPS[method]
        budget = 30

        reference_env = make_env()
        legacy(cls(reference_env, seed=seed), budget)

        driver_env = make_env()
        result = OptimizationDriver(
            cls(driver_env, seed=seed), budget=budget
        ).run()

        assert np.array_equal(reference_env.rewards(), driver_env.rewards())
        assert result.num_evaluations == budget
        assert result.best_reward == reference_env.best_reward
        assert sum(result.step_evaluations) == budget

    def test_run_shim_removed(self):
        # The pre-ask/tell Strategy.run(budget) shim is gone; the error must
        # point straight at the replacement.
        with pytest.raises(RuntimeError, match="OptimizationDriver"):
            EvolutionStrategy(make_env(), seed=3).run(25)


def tiny_rl_config(warmup=4):
    return AgentConfig(
        hidden_dim=8,
        num_gcn_layers=2,
        batch_size=8,
        warmup=warmup,
        updates_per_episode=1,
    )


class TestRLParity:
    """The RL strategy reproduces agent.train() episode for episode."""

    def test_rl_strategy_matches_agent_train(self):
        steps = 10
        env_a = make_rl_env()
        agent_a = GCNRLAgent(env_a, config=tiny_rl_config(), seed=0)
        agent_a.train(steps)

        env_b = make_rl_env()
        agent_b = GCNRLAgent(env_b, config=tiny_rl_config(), seed=0)
        strategy = GCNRLStrategy.from_agent(agent_b)
        OptimizationDriver(strategy, budget=steps).run()

        assert np.array_equal(env_a.rewards(), env_b.rewards())
        assert len(agent_b.training_log) == steps
        for rec_a, rec_b in zip(agent_a.training_log, agent_b.training_log):
            assert rec_a.episode == rec_b.episode
            assert rec_a.reward == rec_b.reward
            assert rec_a.best_reward == rec_b.best_reward
            assert rec_a.warmup == rec_b.warmup
        for name, value in agent_a.actor.state_dict().items():
            assert np.array_equal(value, agent_b.actor.state_dict()[name]), name
        # The RNG streams stayed in lockstep.
        assert (
            agent_a.rng.bit_generator.state == agent_b.rng.bit_generator.state
        )

    def test_warmup_is_one_batched_ask(self):
        env = make_rl_env()
        agent = GCNRLAgent(env, config=tiny_rl_config(warmup=5), seed=0)
        result = OptimizationDriver(GCNRLStrategy.from_agent(agent), budget=8).run()
        assert result.step_evaluations == [5, 1, 1, 1]


def make_rl_env():
    return QuadraticEnvironment(get_circuit("two_tia"))


class TestCheckpointResume:
    """Kill at step k, resume from the store, finish bit-identically."""

    @pytest.mark.parametrize(
        "method, budget, kill_at",
        [("es", 36, 1), ("bo", 24, 3), ("mace", 24, 2)],
    )
    def test_blackbox_kill_resume_bit_identical(self, method, budget, kill_at):
        key = make_run_key(method, "two_tia", "180nm", budget, 0)

        uninterrupted_env = make_env()
        reference = OptimizationDriver(
            get_strategy(method, uninterrupted_env, seed=0), budget=budget
        ).run()

        store = MemoryStore()
        killed_env = make_env()
        killed = OptimizationDriver(
            get_strategy(method, killed_env, seed=0),
            budget=budget,
            store=store,
            run_key=key,
            checkpoint_every=1,
        )
        partial = killed.run(max_steps=kill_at)
        assert not killed.finished
        assert partial.num_evaluations < budget
        assert store.get_checkpoint(key) is not None

        # A *fresh* strategy + environment resumes from the stored state.
        resumed_env = make_env()
        resumed_driver = OptimizationDriver(
            get_strategy(method, resumed_env, seed=0),
            budget=budget,
            store=store,
            run_key=key,
        )
        resumed = resumed_driver.run()
        assert resumed_driver.finished and resumed_driver.resumed
        assert np.array_equal(resumed_env.rewards(), uninterrupted_env.rewards())
        assert resumed.best_reward == reference.best_reward
        assert resumed.step_evaluations == reference.step_evaluations
        assert resumed.num_evaluations == budget

    def test_rl_kill_resume_bit_identical(self):
        budget = 10
        key = make_run_key("gcn_rl", "two_tia", "180nm", budget, 0)

        reference_env = make_rl_env()
        reference_agent = GCNRLAgent(reference_env, config=tiny_rl_config(), seed=0)
        OptimizationDriver(
            GCNRLStrategy.from_agent(reference_agent), budget=budget
        ).run()

        store = MemoryStore()
        killed_env = make_rl_env()
        killed_agent = GCNRLAgent(killed_env, config=tiny_rl_config(), seed=0)
        OptimizationDriver(
            GCNRLStrategy.from_agent(killed_agent),
            budget=budget,
            store=store,
            run_key=key,
            checkpoint_every=1,
        ).run(max_steps=4)

        resumed_env = make_rl_env()
        resumed_agent = GCNRLAgent(resumed_env, config=tiny_rl_config(), seed=0)
        driver = OptimizationDriver(
            GCNRLStrategy.from_agent(resumed_agent),
            budget=budget,
            store=store,
            run_key=key,
        )
        driver.run()
        assert driver.resumed
        assert np.array_equal(resumed_env.rewards(), reference_env.rewards())
        for name, value in reference_agent.critic.state_dict().items():
            assert np.array_equal(value, resumed_agent.critic.state_dict()[name])

    def test_resume_across_jsonl_store_reopen(self, tmp_path):
        budget = 24
        key = make_run_key("es", "two_tia", "180nm", budget, 7)
        reference_env = make_env()
        OptimizationDriver(
            EvolutionStrategy(reference_env, seed=7), budget=budget
        ).run()

        store = JsonlStore(tmp_path / "store")
        killed_env = make_env()
        OptimizationDriver(
            EvolutionStrategy(killed_env, seed=7),
            budget=budget,
            store=store,
            run_key=key,
            checkpoint_every=1,
        ).run(max_steps=1)
        store.close()

        reopened = JsonlStore(tmp_path / "store")
        resumed_env = make_env()
        driver = OptimizationDriver(
            EvolutionStrategy(resumed_env, seed=7),
            budget=budget,
            store=reopened,
            run_key=key,
        )
        driver.run()
        assert driver.resumed
        assert np.array_equal(resumed_env.rewards(), reference_env.rewards())
        reopened.close()

    def test_paused_driver_continues_in_place(self):
        store = MemoryStore()
        key = make_run_key("es", "two_tia", "180nm", 24, 0)
        env = make_env()
        driver = OptimizationDriver(
            EvolutionStrategy(env, seed=0),
            budget=24,
            store=store,
            run_key=key,
        )
        driver.run(max_steps=1)
        assert not driver.finished
        result = driver.run()
        assert driver.finished
        assert result.num_evaluations == 24

    def test_finished_run_leaves_no_stale_midrun_checkpoint(self):
        # A periodically-checkpointed run that completes must not leave a
        # *mid-run* blob behind: a later driver on the same store+key would
        # silently resume from it and re-simulate the final segment.  The
        # driver overwrites it with the completed state instead, so the
        # "resume" is an instant no-op with an identical result.
        store = MemoryStore()
        key = make_run_key("es", "two_tia", "180nm", 24, 0)
        env = make_env()
        OptimizationDriver(
            EvolutionStrategy(env, seed=0),
            budget=24,
            store=store,
            run_key=key,
            checkpoint_every=1,
        ).run()

        again_env = make_env()
        simulated = []
        original = again_env.evaluate_normalized_batch
        again_env.evaluate_normalized_batch = lambda vectors: (
            simulated.append(len(vectors)) or original(vectors)
        )
        again = OptimizationDriver(
            EvolutionStrategy(again_env, seed=0),
            budget=24,
            store=store,
            run_key=key,
        )
        result = again.run()
        assert again.finished and again.resumed
        assert simulated == []  # nothing re-simulated
        assert result.num_evaluations == 24  # restored, not recomputed
        assert np.array_equal(np.asarray(result.rewards), env.rewards())

    def test_no_resume_when_disabled(self):
        store = MemoryStore()
        key = make_run_key("es", "two_tia", "180nm", 24, 0)
        env = make_env()
        OptimizationDriver(
            EvolutionStrategy(env, seed=0),
            budget=24,
            store=store,
            run_key=key,
            checkpoint_every=1,
        ).run(max_steps=1)
        fresh_env = make_env()
        driver = OptimizationDriver(
            EvolutionStrategy(fresh_env, seed=0),
            budget=24,
            store=store,
            run_key=key,
            resume=False,
        )
        driver.run()
        assert not driver.resumed


class TestDriverMechanics:
    def test_callbacks_receive_step_telemetry(self):
        events = []
        env = make_env()
        OptimizationDriver(
            EvolutionStrategy(env, seed=0),
            budget=24,
            callbacks=[events.append],
        ).run()
        assert [e.step for e in events] == list(range(1, len(events) + 1))
        assert events[-1].evaluated == 24
        assert all(isinstance(e, DriverStep) for e in events)
        assert events[-1].wall_time_s >= events[0].wall_time_s

    def test_callback_early_stop(self):
        env = make_env()
        driver = OptimizationDriver(
            EvolutionStrategy(env, seed=0),
            budget=100,
            callbacks=[lambda event: event.step >= 2],
        )
        result = driver.run()
        assert driver.finished
        assert len(result.step_evaluations) == 2

    def test_budget_truncates_overask(self):
        class Greedy(Strategy):
            name = "greedy_test"

            def ask(self):
                return self.vector_proposals(
                    self.rng.uniform(-1, 1, size=(50, self.dimension))
                )

            def tell(self, proposals, results):
                pass

        env = make_env()
        result = OptimizationDriver(Greedy(env, seed=0), budget=7).run()
        assert result.num_evaluations == 7

    def test_mismatched_environment_rejected(self):
        env_a, env_b = make_env(), make_env()
        with pytest.raises(ValueError, match="own environment"):
            OptimizationDriver(EvolutionStrategy(env_a, seed=0), env_b, budget=5)

    def test_empty_ask_raises(self):
        class Silent(Strategy):
            name = "silent_test"

            def ask(self):
                return []

            def tell(self, proposals, results):
                pass

        with pytest.raises(RuntimeError, match="proposed nothing"):
            OptimizationDriver(Silent(make_env(), seed=0), budget=5).run()

    def test_proposal_requires_exactly_one_kind(self):
        with pytest.raises(ValueError):
            Proposal().kind()
        with pytest.raises(ValueError):
            Proposal(vector=np.zeros(3), actions=np.zeros((2, 2))).kind()

    def test_standalone_ask_needs_remaining(self):
        strategy = RandomSearch(make_env(), seed=0)
        with pytest.raises(RuntimeError, match="remaining"):
            strategy.ask()
        strategy.remaining = 3
        assert len(strategy.ask()) == 3


class TestRegistry:
    def test_all_paper_methods_registered(self):
        assert set(list_optimizers()) == {
            "human",
            "random",
            "es",
            "bo",
            "mace",
            "gcn_rl",
            "ng_rl",
        }

    def test_unknown_method_suggests_closest(self):
        with pytest.raises(KeyError, match="did you mean 'gcn_rl'"):
            get_strategy("gcnrl", make_env())

    def test_unknown_kwargs_rejected_with_accepted_fields(self):
        with pytest.raises(TypeError, match="population_size"):
            get_strategy("es", make_env(), pop_size=12)

    def test_rl_config_field_accepted(self):
        config = tiny_rl_config()
        config.use_gcn = False
        strategy = get_strategy("ng_rl", make_env(), seed=0, config=config)
        assert strategy.agent.config.hidden_dim == 8
        assert strategy.agent.config.use_gcn is False

    def test_config_fields_introspection(self):
        fields = strategy_config_fields(EvolutionStrategy)
        assert fields == ["population_size", "initial_sigma"]

    def test_duplicate_registration_rejected(self):
        class Impostor(Strategy):
            name = "es"

            def ask(self):
                return []

            def tell(self, proposals, results):
                pass

        with pytest.raises(ValueError, match="already registered"):
            register_strategy(Impostor)


class TestResultFields:
    def test_wall_time_and_step_evaluations_round_trip(self):
        result = OptimizationResult(
            method="es",
            best_reward=1.0,
            best_metrics={"gain": 2.0},
            best_sizing={"m1": {"w": 1e-6}},
            rewards=[0.5, 1.0],
            num_evaluations=2,
            wall_time_s=1.25,
            step_evaluations=[1, 1],
        )
        data = result.to_dict()
        assert data["wall_time_s"] == 1.25
        assert data["step_evaluations"] == [1, 1]
        back = OptimizationResult.from_dict(data)
        assert back.wall_time_s == 1.25
        assert back.step_evaluations == [1, 1]
