"""Tests for distributed campaign execution (repro.cluster).

Covers the lease-store conformance contract on all three backends (claim
exclusivity — including under concurrent claimants —, expiry reclaim, renew
extension, release idempotence), the dead-pid vacuum on the sqlite store,
the work scheduler (sweep-order claims, expired-lease stealing, cell
states), the campaign worker loop (drain, SIGTERM-style pause/resume,
lease-loss abandonment), the cluster launcher + CLI surface, and the
end-to-end acceptance scenario: two workers over one store, one SIGKILLed
mid-method, the survivor steals and finishes with zero duplicated
simulation and records bit-identical to a serial reference.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.cluster import (
    CampaignWorker,
    JsonlLeaseStore,
    LeaseHeartbeat,
    LeaseLostError,
    MemoryLeaseStore,
    SqliteLeaseStore,
    WorkScheduler,
    cell_states,
    lease_store_for,
    make_owner_id,
)
from repro.experiments import ExperimentSettings
from repro.experiments import runner as runner_module
from repro.experiments.__main__ import main as cli_main
from repro.store import (
    Campaign,
    CampaignSpec,
    MemoryStore,
    make_run_key,
    open_run_store,
)
from repro.store.sqlite import SqliteStore, pid_alive

LEASE_BACKENDS = ("memory", "jsonl", "sqlite")


class FakeClock:
    """Deterministic wall clock so expiry tests never sleep."""

    def __init__(self, start: float = 1_000.0):
        self.t = float(start)

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


def sample_key(seed=0, method="random"):
    return make_run_key(
        method,
        "two_tia",
        "180nm",
        5,
        seed,
        evaluator_key=("evaluator", "local", None, 0),
    )


@pytest.fixture(params=LEASE_BACKENDS)
def lease_backend(request, tmp_path):
    """``(build, backend_name)``: build(clock) opens a lease store handle.

    For the directory backends every ``build`` call opens a *new* handle
    over the same directory, mirroring separate worker processes.
    """
    param = request.param
    handles = []

    def build(clock=time.time):
        if param == "memory":
            if not handles:
                handles.append(MemoryLeaseStore(clock))
            return handles[0]
        if param == "jsonl":
            store = JsonlLeaseStore(tmp_path / "store", clock)
        else:
            store = SqliteLeaseStore(tmp_path / "store", clock)
        handles.append(store)
        return store

    yield build, param
    for handle in handles:
        handle.close()


class TestLeaseConformance:
    def test_claim_then_conflicting_claim_fails(self, lease_backend):
        build, _ = lease_backend
        clock = FakeClock()
        store = build(clock)
        key = sample_key()
        lease = store.claim(key, "alice", ttl=10.0)
        assert lease is not None
        assert lease.owner == "alice"
        assert lease.expires_at == pytest.approx(clock() + 10.0)
        assert store.claim(key, "bob", ttl=10.0) is None
        assert store.get(key).owner == "alice"

    def test_claim_is_reentrant_for_owner(self, lease_backend):
        build, _ = lease_backend
        clock = FakeClock()
        store = build(clock)
        key = sample_key()
        assert store.claim(key, "alice", ttl=10.0) is not None
        clock.advance(5.0)
        again = store.claim(key, "alice", ttl=10.0)
        assert again is not None
        assert again.expires_at == pytest.approx(clock() + 10.0)

    def test_expired_lease_is_stealable(self, lease_backend):
        build, _ = lease_backend
        clock = FakeClock()
        store = build(clock)
        key = sample_key()
        store.claim(key, "alice", ttl=10.0)
        clock.advance(9.9)
        assert store.claim(key, "bob", ttl=10.0) is None
        clock.advance(0.2)  # past expiry
        stolen = store.claim(key, "bob", ttl=10.0)
        assert stolen is not None
        assert stolen.owner == "bob"
        assert store.get(key).owner == "bob"

    def test_renew_extends_only_for_owner(self, lease_backend):
        build, _ = lease_backend
        clock = FakeClock()
        store = build(clock)
        key = sample_key()
        store.claim(key, "alice", ttl=10.0)
        clock.advance(8.0)
        assert store.renew(key, "alice", ttl=10.0) is True
        assert store.get(key).expires_at == pytest.approx(clock() + 10.0)
        # Renewal preserves the original acquisition time (age keeps growing).
        assert store.get(key).acquired_at == pytest.approx(clock() - 8.0)
        assert store.renew(key, "bob", ttl=10.0) is False
        assert store.renew(sample_key(seed=7), "alice", ttl=10.0) is False

    def test_release_is_idempotent(self, lease_backend):
        build, _ = lease_backend
        store = build(FakeClock())
        key = sample_key()
        store.claim(key, "alice", ttl=10.0)
        assert store.release(key, "alice") is True
        assert store.get(key) is None
        # Releasing an already-released (or never-claimed) key succeeds.
        assert store.release(key, "alice") is True
        # Releasing someone else's live lease fails and leaves it intact.
        store.claim(key, "bob", ttl=10.0)
        assert store.release(key, "alice") is False
        assert store.get(key).owner == "bob"

    def test_reclaim_expired_and_clear(self, lease_backend):
        build, _ = lease_backend
        clock = FakeClock()
        store = build(clock)
        fresh, stale = sample_key(seed=1), sample_key(seed=2)
        store.claim(stale, "alice", ttl=5.0)
        clock.advance(6.0)
        store.claim(fresh, "alice", ttl=60.0)
        reclaimed = store.reclaim_expired()
        assert [lease.key_id for lease in reclaimed] == [stale.key_id()]
        assert store.get(stale) is None
        assert store.get(fresh) is not None
        store.clear()
        assert store.leases() == []

    def test_cross_handle_visibility(self, lease_backend):
        build, backend = lease_backend
        clock = FakeClock()
        writer, reader = build(clock), build(clock)
        key = sample_key()
        writer.claim(key, "alice", ttl=10.0)
        assert reader.get(key).owner == "alice"
        assert reader.claim(key, "bob", ttl=10.0) is None

    def test_concurrent_claimants_exactly_one_wins(self, lease_backend):
        build, _ = lease_backend
        store = build(time.time)
        key = sample_key()
        claimants = 8
        barrier = threading.Barrier(claimants)
        winners = []

        def contend(name):
            barrier.wait()
            if store.claim(key, name, ttl=60.0) is not None:
                winners.append(name)

        threads = [
            threading.Thread(target=contend, args=(f"claimant-{i}",))
            for i in range(claimants)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1
        assert store.get(key).owner == winners[0]


class TestOwnerIdAndFactory:
    def test_owner_id_shape(self):
        owner = make_owner_id("w0")
        host, pid, name = owner.rsplit(":", 2)
        assert host and name == "w0"
        assert int(pid) == os.getpid()
        # Without a name the suffix is random but non-empty.
        assert make_owner_id() != make_owner_id()

    def test_lease_store_for_memory_is_cached_on_the_store(self):
        store = MemoryStore()
        first = lease_store_for(store)
        assert isinstance(first, MemoryLeaseStore)
        assert lease_store_for(store) is first

    def test_lease_store_for_directory_backends(self, tmp_path):
        with open_run_store("jsonl", tmp_path / "j") as store:
            assert isinstance(lease_store_for(store), JsonlLeaseStore)
        with open_run_store("sqlite", tmp_path / "s") as store:
            sqlite_leases = lease_store_for(store)
            assert isinstance(sqlite_leases, SqliteLeaseStore)
            sqlite_leases.close()

    def test_lease_store_for_unknown_type_raises(self):
        with pytest.raises(TypeError):
            lease_store_for(object())


@pytest.fixture
def dead_pid():
    """A pid guaranteed dead: a reaped child of this very process."""
    process = subprocess.Popen([sys.executable, "-c", "pass"])
    process.wait()
    return process.pid


class TestSqliteVacuum:
    def test_pid_alive(self, dead_pid):
        assert pid_alive(os.getpid()) is True
        assert pid_alive(dead_pid) is False
        assert pid_alive(0) is False
        assert pid_alive(-5) is False

    def test_vacuum_clears_dead_local_leases_only(self, tmp_path, dead_pid):
        leases = SqliteLeaseStore(tmp_path)
        live = leases.claim(sample_key(seed=1), "live", ttl=3600.0)
        assert live is not None and live.pid == os.getpid()
        # Forge a lease from a dead local pid and one from another host.
        conn = leases._conn
        for key, owner, pid, host in (
            (sample_key(seed=2), "dead-local", dead_pid, live.host),
            (sample_key(seed=3), "remote", dead_pid, "elsewhere.example"),
        ):
            conn.execute(
                "INSERT INTO leases (key_id, owner, acquired_at, expires_at, pid, host) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (key.key_id(), owner, 0.0, 1e12, pid, host),
            )
        conn.commit()

        store = SqliteStore(tmp_path)  # __init__ runs the vacuum sweep
        owners = {lease.owner for lease in leases.leases()}
        assert "dead-local" not in owners  # provably dead, same host: cleared
        assert "live" in owners  # our own pid is alive
        assert "remote" in owners  # foreign host: left to wall-clock expiry
        store.close()
        leases.close()

    def test_vacuum_returns_count(self, tmp_path, dead_pid):
        store = SqliteStore(tmp_path)
        leases = SqliteLeaseStore(tmp_path)
        assert store.vacuum_leases() == 0
        lease = leases.claim(sample_key(), "victim", ttl=3600.0)
        leases._conn.execute(
            "UPDATE leases SET pid = ? WHERE key_id = ?",
            (dead_pid, lease.key_id),
        )
        leases._conn.commit()
        assert store.vacuum_leases() == 1
        assert leases.leases() == []
        leases.close()
        store.close()


def small_settings(methods, steps=6, seeds=1):
    settings = ExperimentSettings()
    settings.methods = list(methods)
    settings.circuits = ["two_tia"]
    settings.steps = steps
    settings.seeds = seeds
    return settings


def small_campaign(store, methods=("human", "random"), steps=6, seeds=1):
    settings = small_settings(methods, steps=steps, seeds=seeds)
    spec = CampaignSpec.from_settings(settings)
    return Campaign(spec, store, settings=settings)


class TestWorkScheduler:
    def test_claims_in_sweep_order_and_skips_done(self):
        store = MemoryStore()
        campaign = small_campaign(store, methods=("human", "random"), seeds=2)
        leases = MemoryLeaseStore()
        scheduler = WorkScheduler(campaign, leases, owner="w0", ttl=30.0)
        first = scheduler.next_assignment()
        assert (first.request.method, first.request.seed) == ("human", 0)
        assert not first.stolen and not first.resumed
        # Completing the cell (and releasing) moves the scan forward.
        runner_module.run_method("human", "two_tia", steps=6, store=store,
                                 settings=campaign.settings)
        leases.release(first.key, "w0")
        second = scheduler.next_assignment()
        assert (second.request.method, second.request.seed) == ("random", 0)

    def test_live_leases_block_and_expired_ones_are_stolen(self):
        clock = FakeClock()
        store = MemoryStore()
        campaign = small_campaign(store, methods=("random",), seeds=2)
        leases = MemoryLeaseStore(clock)
        for request in campaign.requests():
            leases.claim(campaign.key_for(request), "straggler", ttl=10.0)
        scheduler = WorkScheduler(campaign, leases, owner="thief", ttl=10.0,
                                  clock=clock)
        assert scheduler.next_assignment() is None
        assert scheduler.outstanding() == 2
        clock.advance(10.1)
        stolen = scheduler.next_assignment()
        assert stolen is not None and stolen.stolen
        assert stolen.lease.owner == "thief"
        # Unclaimed cells win over steals.
        leases.release(campaign.key_for(campaign.requests()[1]), "straggler")
        # (thief now holds cell 0; cell 1 is free)
        free = scheduler.next_assignment()
        assert free is not None

    def test_assignment_reports_resume_when_checkpoint_exists(self):
        store = MemoryStore()
        campaign = small_campaign(store, methods=("random",))
        key = campaign.key_for(campaign.requests()[0])
        store.put_checkpoint(key, b"blob")
        scheduler = WorkScheduler(campaign, MemoryLeaseStore(), owner="w0", ttl=30.0)
        assignment = scheduler.next_assignment()
        assert assignment.resumed

    def test_cell_states_cover_all_cases(self):
        clock = FakeClock()
        store = MemoryStore()
        campaign = small_campaign(store, methods=("human", "random"), seeds=3)
        leases = MemoryLeaseStore(clock)
        requests = campaign.requests()  # human s0, random s0/s1/s2
        runner_module.run_method("human", "two_tia", steps=6, store=store,
                                 settings=campaign.settings)
        leases.claim(campaign.key_for(requests[1]), "w-live", ttl=100.0)
        leases.claim(campaign.key_for(requests[2]), "w-dead", ttl=5.0)
        clock.advance(6.0)
        states = cell_states(campaign, leases, clock=clock)
        assert [cell.state for cell in states] == [
            "done", "leased", "expired", "pending",
        ]
        leased = states[1]
        assert "w-live" in leased.describe(clock())
        assert "age=6.0s" in leased.describe(clock())


class TestCampaignWorker:
    def test_drains_grid_and_counts(self):
        store = MemoryStore()
        campaign = small_campaign(store, methods=("human", "random"), seeds=2)
        worker = CampaignWorker(campaign, checkpoint_every=1, poll_interval=0.01)
        report = worker.run()
        assert report.executed == 3  # human×1 + random×2
        assert report.skipped == report.lost == report.paused == 0
        assert campaign.status()["pending"] == 0
        assert lease_store_for(store).leases() == []
        assert "executed=3" in report.summary()

    def test_two_inprocess_workers_split_without_duplication(self):
        store = MemoryStore()
        campaign = small_campaign(store, methods=("random", "es"), steps=8, seeds=2)
        workers = [
            CampaignWorker(campaign, worker_id=f"w{i}", checkpoint_every=1,
                           poll_interval=0.01)
            for i in range(2)
        ]
        reports = [None, None]
        threads = [
            threading.Thread(target=lambda i=i: reports.__setitem__(
                i, workers[i].run()))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(r.executed for r in reports) + sum(
            r.skipped for r in reports) >= 4
        assert sum(r.executed for r in reports) == 4
        assert campaign.status()["pending"] == 0
        # Each cell's record was produced exactly once.
        assert len(store) == 4

    def test_stop_request_pauses_mid_method_and_resume_is_bit_identical(self):
        store = MemoryStore()
        # Budget of several ES population-steps: pausing after the first
        # ask/tell step is guaranteed to land mid-method.
        campaign = small_campaign(store, methods=("es",), steps=48)
        worker = CampaignWorker(campaign, checkpoint_every=1, poll_interval=0.01)

        def stop_after_first(event):
            if event.step >= 1:
                worker.request_stop()

        worker.step_callbacks = [stop_after_first]
        report = worker.run()
        assert report.paused == 1 and report.executed == 0
        key = campaign.key_for(campaign.requests()[0])
        assert store.get_checkpoint(key) is not None  # checkpointed mid-method
        assert lease_store_for(store).get(key) is None  # released cleanly

        # A second worker resumes from the checkpoint and finishes.
        resumer = CampaignWorker(campaign, checkpoint_every=1, poll_interval=0.01)
        resumed = resumer.run()
        assert resumed.executed == 1 and resumed.resumed == 1
        record = store.get(key)
        assert sum(record.step_evaluations) == 48

        # Bit-identical to an uninterrupted serial run.
        reference = runner_module.run_method(
            "es", "two_tia", steps=48, store=MemoryStore(),
            settings=campaign.settings,
        )
        ours = record.to_dict()
        ref = reference.to_dict()
        ours.pop("wall_time_s"), ref.pop("wall_time_s")
        assert ours == ref

    def test_lease_loss_abandons_without_touching_store(self, monkeypatch):
        store = MemoryStore()
        campaign = small_campaign(store, methods=("random",))
        worker = CampaignWorker(campaign, worker_id="victim", checkpoint_every=1,
                                poll_interval=0.01)

        def doomed_run_method(*args, pause_check=None, **kwargs):
            raise LeaseLostError("stolen")

        monkeypatch.setattr(runner_module, "run_method", doomed_run_method)
        report = worker.run(max_cells=1)
        assert report.lost == 1 and report.executed == 0
        # The lease was NOT released: it belongs to the (simulated) thief.
        key = campaign.key_for(campaign.requests()[0])
        assert lease_store_for(store).get(key) is not None

    def test_claimed_cell_already_done_is_skipped_and_released(self):
        store = MemoryStore()
        campaign = small_campaign(store, methods=("random",))
        worker = CampaignWorker(campaign, checkpoint_every=1, poll_interval=0.01)
        # Simulate another worker finishing the cell between scan and claim:
        # pre-claim, then complete the record under the hood.
        assignment = worker.scheduler.next_assignment()
        runner_module.run_method("random", "two_tia", steps=6, store=store,
                                 settings=campaign.settings)
        from repro.cluster.worker import WorkerReport

        report = WorkerReport(worker_id=worker.worker_id)
        worker._execute(assignment, report)
        assert report.skipped == 1 and report.executed == 0
        assert lease_store_for(store).get(assignment.key) is None


class TestLeaseHeartbeat:
    def test_renews_until_stopped(self):
        leases = MemoryLeaseStore()
        key = sample_key()
        leases.claim(key, "w0", ttl=0.5)
        heartbeat = LeaseHeartbeat(leases, key, "w0", ttl=0.5, interval=0.02)
        heartbeat.start()
        time.sleep(0.3)
        assert not heartbeat.lost
        before = leases.get(key).expires_at
        assert before > time.time()  # kept alive well past the original ttl
        heartbeat.stop()
        assert not heartbeat.is_alive()

    def test_flags_loss_when_lease_disappears(self):
        leases = MemoryLeaseStore()
        key = sample_key()
        leases.claim(key, "w0", ttl=0.5)
        heartbeat = LeaseHeartbeat(leases, key, "w0", ttl=0.5, interval=0.02)
        heartbeat.start()
        leases.clear()  # simulates expiry + steal by another worker
        deadline = time.time() + 5.0
        while not heartbeat.lost and time.time() < deadline:
            time.sleep(0.01)
        assert heartbeat.lost
        heartbeat.join(timeout=2.0)
        assert not heartbeat.is_alive()  # the thread exits on loss


class TestDriverPauseCheck:
    def test_pause_check_pauses_resumably(self):
        store = MemoryStore()
        settings = ExperimentSettings()
        key = runner_module.run_key_for("es", "two_tia", steps=32,
                                        settings=settings)
        calls = []

        def pause_after_two():
            return len(calls) >= 2

        def count(event):
            calls.append(event.step)

        paused = runner_module.run_method(
            "es", "two_tia", steps=32, store=store, settings=settings,
            checkpoint_every=1, callbacks=[count], pause_check=pause_after_two,
        )
        assert paused is None  # not finished
        assert store.get(key) is None
        assert store.get_checkpoint(key) is not None
        # Resuming without the pause hook completes bit-identically.
        record = runner_module.run_method(
            "es", "two_tia", steps=32, store=store, settings=settings,
        )
        reference = runner_module.run_method(
            "es", "two_tia", steps=32, store=MemoryStore(), settings=settings,
        )
        ours, ref = record.to_dict(), reference.to_dict()
        ours.pop("wall_time_s"), ref.pop("wall_time_s")
        assert ours == ref

    def test_pause_check_exception_propagates_without_checkpoint(self):
        store = MemoryStore()
        settings = ExperimentSettings()
        key = runner_module.run_key_for("random", "two_tia", steps=8,
                                        settings=settings)

        def explode():
            raise LeaseLostError("gone")

        with pytest.raises(LeaseLostError):
            runner_module.run_method(
                "random", "two_tia", steps=8, store=store, settings=settings,
                checkpoint_every=1, pause_check=explode,
            )
        assert store.get(key) is None
        assert store.get_checkpoint(key) is None


def _worker_cli_command(store_dir, spec, worker_id, ttl="2.0",
                        checkpoint_every="1"):
    return [
        sys.executable, "-m", "repro.experiments", "worker",
        "--store-dir", str(store_dir), "--store-backend", "jsonl",
        "--spec", json.dumps(spec.to_dict()), "--worker-id", worker_id,
        "--ttl", ttl, "--poll", "0.05", "--checkpoint-every", checkpoint_every,
    ]


def _subprocess_env():
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _stripped_rows(store_dir):
    rows = []
    with open(os.path.join(str(store_dir), "runs.jsonl"), encoding="utf-8") as log:
        for line in log:
            row = json.loads(line)
            row["record"].pop("wall_time_s", None)
            rows.append(row)
    rows.sort(key=lambda row: json.dumps(row["key"], sort_keys=True))
    return rows


def _run_kill_steal_scenario(tmp_path, methods, steps, seeds, victim_method):
    """SIGKILL one worker mid-``victim_method``; a survivor steals+finishes.

    Returns ``(campaign, survivor_report, store_dir, ref_dir)`` after
    asserting zero duplicated work and bit-identity to a serial reference.
    """
    settings = small_settings(methods, steps=steps, seeds=seeds)
    # The victim must start on the method we intend to kill mid-run.
    assert settings.methods[0] == victim_method
    spec = CampaignSpec.from_settings(settings)

    ref_dir = tmp_path / "ref"
    with open_run_store("jsonl", ref_dir) as ref_store:
        reference = Campaign(spec, ref_store, settings=settings).run()
        assert reference.remaining == 0

    store_dir = tmp_path / "store"
    victim = subprocess.Popen(
        _worker_cli_command(store_dir, spec, "victim", ttl="1.0"),
        env=_subprocess_env(), stdout=subprocess.DEVNULL,
    )
    try:
        # Kill only once the victim has demonstrably checkpointed inside
        # its first method — that makes the steal a *mid-method* resume.
        checkpoint_dir = store_dir / "checkpoints"
        deadline = time.time() + 180.0
        while time.time() < deadline:
            if victim.poll() is not None:
                raise AssertionError("victim exited before the kill")
            if checkpoint_dir.is_dir() and any(
                name.endswith(".ckpt") for name in os.listdir(checkpoint_dir)
            ):
                break
            time.sleep(0.005)
        else:
            raise AssertionError("victim never wrote a checkpoint")
        victim.send_signal(signal.SIGKILL)
    finally:
        if victim.poll() is None:
            victim.kill()
        victim.wait()

    store = open_run_store("jsonl", store_dir)
    campaign = Campaign(spec, store, settings=settings)
    survivor = CampaignWorker(campaign, worker_id="survivor", ttl=1.0,
                              checkpoint_every=1, poll_interval=0.05)
    report = survivor.run()
    assert campaign.status()["pending"] == 0
    assert report.stolen >= 1, report.summary()
    assert report.resumed >= 1, report.summary()

    # Zero duplicated simulations: every key appears exactly once in the
    # log (nobody re-executed a finished cell), and the recorded
    # evaluations sum to exactly the grid's budget.
    rows = _stripped_rows(store_dir)
    key_ids = [json.dumps(row["key"], sort_keys=True) for row in rows]
    assert len(key_ids) == len(set(key_ids)) == len(campaign.requests())
    recorded = sum(
        sum(row["record"]["step_evaluations"]) for row in rows
    )
    budget = sum(
        1 if request.method == "human" else request.steps
        for request in campaign.requests()
    )
    assert recorded == budget

    assert _stripped_rows(store_dir) == _stripped_rows(ref_dir), (
        "stolen/resumed records differ from the serial reference"
    )
    store.close()
    return report


class TestClusterEndToEnd:
    def test_sigkill_mid_method_survivor_steals_bit_identical(self, tmp_path):
        # es first: population steps are slow enough that the kill lands
        # well inside the method after its first checkpoint.
        report = _run_kill_steal_scenario(
            tmp_path, methods=("es", "human", "random"), steps=64, seeds=1,
            victim_method="es",
        )
        assert report.executed == 3

    @pytest.mark.slow
    def test_full_seven_method_two_seed_acceptance(self, tmp_path):
        # The acceptance grid: 7 methods × 2 seeds.  gcn_rl first — its
        # per-episode network updates give the widest mid-method window.
        report = _run_kill_steal_scenario(
            tmp_path,
            methods=("gcn_rl", "human", "random", "es", "bo", "mace", "ng_rl"),
            steps=10, seeds=2, victim_method="gcn_rl",
        )
        assert report.executed >= 12  # human contributes 1 cell, not 2


class TestClusterLauncherAndCampaignRun:
    def test_campaign_run_workers_requires_directory_store(self):
        campaign = small_campaign(MemoryStore())
        with pytest.raises(ValueError, match="directory-backed"):
            campaign.run(workers=2)

    def test_campaign_run_workers_rejects_interruption_flags(self, tmp_path):
        with open_run_store("jsonl", tmp_path) as store:
            campaign = small_campaign(store)
            with pytest.raises(ValueError, match="incompatible"):
                campaign.run(workers=2, max_runs=1)

    def test_launcher_worker_command_is_joinable_cli(self, tmp_path):
        from repro.cluster import ClusterLauncher

        settings = small_settings(("random",), steps=4)
        launcher = ClusterLauncher(
            CampaignSpec.from_settings(settings), store_dir=str(tmp_path),
            workers=2, settings=settings, ttl=5.0,
        )
        command = launcher.worker_command(1)
        assert command[1:4] == ["-m", "repro.experiments", "worker"]
        assert "--worker-id" in command
        assert command[command.index("--worker-id") + 1] == "worker1"
        spec_json = command[command.index("--spec") + 1]
        assert CampaignSpec.from_dict(json.loads(spec_json)).methods == ["random"]
        env = launcher._worker_env()
        assert env["REPRO_WARMUP_FRACTION"] == str(settings.warmup_fraction)

    def test_campaign_run_with_two_worker_processes(self, tmp_path):
        settings = small_settings(("human", "random"), steps=4, seeds=2)
        spec = CampaignSpec.from_settings(settings)
        with open_run_store("jsonl", tmp_path) as store:
            campaign = Campaign(spec, store, settings=settings)
            report = campaign.run(workers=2)
            assert report.remaining == 0
            assert report.executed == 3
            # The parent handle sees the workers' records post-refresh.
            assert len(store) == 3
            # Second distributed run: everything is served from the store.
            again = Campaign(spec, store, settings=settings).run(workers=2)
            assert again.skipped == 3 and again.executed == 0


class TestClusterCLI:
    def _env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CIRCUITS", "two_tia")
        monkeypatch.setenv("REPRO_METHODS", "human,random")

    def test_worker_subcommand_drains_store(self, tmp_path, capsys, monkeypatch):
        self._env(monkeypatch)
        store_dir = str(tmp_path / "store")
        assert cli_main([
            "worker", "--store-dir", store_dir, "--steps", "3", "--seeds", "1",
            "--worker-id", "cli-test", "--ttl", "5", "--poll", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "joining sweep" in out
        assert "executed=2" in out
        assert cli_main(["ls", "--store-dir", store_dir]) == 0
        assert "2 run(s)" in capsys.readouterr().out

    def test_worker_without_store_is_graceful(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["worker", "--steps", "3", "--seeds", "1"]) == 0
        assert "no store configured" in capsys.readouterr().out

    def test_worker_max_cells(self, tmp_path, capsys, monkeypatch):
        self._env(monkeypatch)
        store_dir = str(tmp_path / "store")
        assert cli_main([
            "worker", "--store-dir", store_dir, "--steps", "3", "--seeds", "1",
            "--max-cells", "1",
        ]) == 0
        assert "executed=1" in capsys.readouterr().out

    def test_ls_status_shows_cell_states(self, tmp_path, capsys, monkeypatch):
        self._env(monkeypatch)
        store_dir = str(tmp_path / "store")
        base = ["--store-dir", store_dir, "--steps", "3", "--seeds", "1"]
        assert cli_main(["worker"] + base + ["--max-cells", "1"]) == 0
        capsys.readouterr()
        assert cli_main(["ls", "--status"] + base) == 0
        out = capsys.readouterr().out
        assert "[done] human two_tia" in out
        assert "[pending] random two_tia" in out
        assert "cells: total=2 done=1 leased=0 expired=0 pending=1" in out

    def test_ls_status_shows_leases(self, tmp_path, capsys, monkeypatch):
        self._env(monkeypatch)
        store_dir = tmp_path / "store"
        settings = small_settings(("human", "random"), steps=3)
        spec = CampaignSpec.from_settings(settings)
        with open_run_store("jsonl", store_dir) as store:
            leases = lease_store_for(store)
            campaign = Campaign(spec, store, settings=settings)
            leases.claim(campaign.key_for(campaign.requests()[0]),
                         "someone:123:w9", 3600.0)
        assert cli_main([
            "ls", "--status", "--store-dir", str(store_dir),
            "--steps", "3", "--seeds", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "[leased] human two_tia" in out
        assert "by someone:123:w9" in out
        assert "leased=1" in out

    def test_sweep_workers_flag_runs_distributed(self, tmp_path, capsys,
                                                 monkeypatch):
        self._env(monkeypatch)
        store_dir = str(tmp_path / "store")
        assert cli_main([
            "sweep", "--store-dir", store_dir, "--steps", "3", "--seeds", "1",
            "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "sweep complete: total=2 executed=2 skipped=0 remaining=0" in out
        # --workers on sweep must NOT have been eaten as an evaluator pool.
        assert (tmp_path / "store" / "runs.jsonl").exists()
