"""Tests for the MNA simulator: circuit container, DC and AC analyses."""

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    MOSFET,
    Resistor,
    VCVS,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
)
from repro.spice.ac import logspace_frequencies, transfer_function
from repro.spice import measurements as meas


def divider(r1=1e3, r2=1e3, vin=2.0):
    circuit = Circuit("divider")
    circuit.add(VoltageSource("V1", "in", "0", dc=vin, ac=1.0))
    circuit.add(Resistor("R1", "in", "out", r1))
    circuit.add(Resistor("R2", "out", "0", r2))
    return circuit


class TestCircuitContainer:
    def test_node_and_unknown_counts(self):
        circuit = divider()
        assert circuit.num_nodes == 2
        assert circuit.num_unknowns == 3  # two nodes + one source branch

    def test_duplicate_element_name_rejected(self):
        circuit = divider()
        with pytest.raises(ValueError):
            circuit.add(Resistor("R1", "a", "b", 1.0))

    def test_ground_aliases_map_to_minus_one(self):
        circuit = Circuit("gnd")
        circuit.add(Resistor("R1", "a", "gnd", 1e3))
        circuit.add(Resistor("R2", "a", "0", 1e3))
        assert circuit.node("gnd") == -1
        assert circuit.node("0") == -1

    def test_unknown_node_lookup_raises(self):
        circuit = divider()
        with pytest.raises(KeyError):
            circuit.node("does_not_exist")

    def test_contains_and_getitem(self):
        circuit = divider()
        assert "R1" in circuit
        assert circuit["R1"].resistance == pytest.approx(1e3)

    def test_summary_mentions_element_kinds(self):
        assert "Resistor" in divider().summary()

    def test_invalid_element_values_rejected(self):
        with pytest.raises(ValueError):
            Resistor("R", "a", "b", -1.0)
        with pytest.raises(ValueError):
            Capacitor("C", "a", "b", 0.0)


class TestDCOperatingPoint:
    def test_voltage_divider_solution(self):
        op = dc_operating_point(divider())
        assert op.converged
        assert op.voltage("out") == pytest.approx(1.0, rel=1e-6)

    def test_asymmetric_divider(self):
        op = dc_operating_point(divider(r1=3e3, r2=1e3, vin=4.0))
        assert op.voltage("out") == pytest.approx(1.0, rel=1e-6)

    def test_branch_current_of_source(self):
        op = dc_operating_point(divider(r1=1e3, r2=1e3, vin=2.0))
        assert abs(op.branch_current("V1")) == pytest.approx(1e-3, rel=1e-4)

    def test_supply_power(self):
        op = dc_operating_point(divider(r1=1e3, r2=1e3, vin=2.0))
        assert op.supply_power() == pytest.approx(2e-3, rel=1e-4)

    def test_current_source_direction(self):
        circuit = Circuit("isrc")
        circuit.add(CurrentSource("I1", "0", "a", dc=1e-3))
        circuit.add(Resistor("R1", "a", "0", 1e3))
        op = dc_operating_point(circuit)
        assert op.voltage("a") == pytest.approx(1.0, rel=1e-6)

    def test_vcvs_gain(self):
        circuit = Circuit("vcvs")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.5))
        circuit.add(VCVS("E1", "out", "0", "in", "0", gain=4.0))
        circuit.add(Resistor("RL", "out", "0", 1e3))
        op = dc_operating_point(circuit)
        assert op.voltage("out") == pytest.approx(2.0, rel=1e-6)

    def test_ground_voltage_is_zero(self):
        op = dc_operating_point(divider())
        assert op.voltage("0") == 0.0

    def test_nmos_common_source_amplifier_bias(self, tech_180):
        circuit = Circuit("cs")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(VoltageSource("VG", "g", "0", dc=0.6))
        circuit.add(Resistor("RD", "vdd", "d", 20e3))
        circuit.add(MOSFET("M1", "d", "g", "0", "0", tech_180.nmos, 20e-6, 0.5e-6))
        op = dc_operating_point(circuit)
        assert op.converged
        assert 0.0 < op.voltage("d") < 1.8
        assert op.device_ops["M1"].ids > 0

    def test_pmos_common_source_amplifier_bias(self, tech_180):
        circuit = Circuit("cs_p")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(VoltageSource("VG", "g", "0", dc=1.1))
        circuit.add(Resistor("RD", "d", "0", 20e3))
        circuit.add(MOSFET("M1", "d", "g", "vdd", "vdd", tech_180.pmos, 40e-6, 0.5e-6))
        op = dc_operating_point(circuit)
        assert op.converged
        assert 0.0 < op.voltage("d") < 1.8
        assert op.device_ops["M1"].ids > 0

    def test_diode_connected_nmos_with_current_bias(self, tech_180):
        circuit = Circuit("diode")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(CurrentSource("IB", "vdd", "g", dc=50e-6))
        circuit.add(MOSFET("M1", "g", "g", "0", "0", tech_180.nmos, 20e-6, 0.36e-6))
        op = dc_operating_point(circuit)
        assert op.converged
        vgs = op.voltage("g")
        assert tech_180.nmos.vth0 < vgs < 1.5
        assert op.device_ops["M1"].ids == pytest.approx(50e-6, rel=0.02)

    def test_kcl_residual_is_small_at_solution(self, tech_180):
        circuit = Circuit("kcl")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(CurrentSource("IB", "vdd", "g", dc=50e-6))
        circuit.add(MOSFET("M1", "g", "g", "0", "0", tech_180.nmos, 20e-6, 0.36e-6))
        op = dc_operating_point(circuit)
        # Re-assemble the residual at the solution and check it is ~zero.
        from repro.spice.dc import _assemble

        _, residual = _assemble(circuit, op.x, 0.0, 1.0)
        assert np.max(np.abs(residual)) < 1e-6


class TestACAnalysis:
    def test_rc_lowpass_corner_frequency(self):
        r, c = 1e3, 1e-9
        circuit = Circuit("rc")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.0, ac=1.0))
        circuit.add(Resistor("R1", "in", "out", r))
        circuit.add(Capacitor("C1", "out", "0", c))
        op = dc_operating_point(circuit)
        freqs = logspace_frequencies(1e2, 1e9, 20)
        solution = ac_analysis(circuit, op, freqs)
        gain = solution.voltage("out")
        expected_corner = 1.0 / (2 * np.pi * r * c)
        assert meas.bandwidth_3db(freqs, gain) == pytest.approx(
            expected_corner, rel=0.05
        )
        assert meas.dc_gain(freqs, gain) == pytest.approx(1.0, rel=1e-3)

    def test_rc_highpass_blocks_dc(self):
        circuit = Circuit("hp")
        circuit.add(VoltageSource("VIN", "in", "0", ac=1.0))
        circuit.add(Capacitor("C1", "in", "out", 1e-9))
        circuit.add(Resistor("R1", "out", "0", 1e3))
        op = dc_operating_point(circuit)
        freqs = np.array([1.0, 1e9])
        solution = ac_analysis(circuit, op, freqs)
        magnitude = solution.magnitude("out")
        assert magnitude[0] < 1e-2
        assert magnitude[-1] == pytest.approx(1.0, rel=1e-2)

    def test_common_source_gain_matches_gm_times_rd(self, tech_180):
        circuit = Circuit("cs_gain")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(VoltageSource("VG", "g", "0", dc=0.6, ac=1.0))
        rd = 20e3
        circuit.add(Resistor("RD", "vdd", "d", rd))
        circuit.add(MOSFET("M1", "d", "g", "0", "0", tech_180.nmos, 20e-6, 0.5e-6))
        op = dc_operating_point(circuit)
        device = op.device_ops["M1"]
        freqs = np.array([1e3])
        solution = ac_analysis(circuit, op, freqs)
        gain = abs(solution.voltage("d")[0])
        expected = device.gm * (rd * (1 / device.gds) / (rd + 1 / device.gds))
        assert gain == pytest.approx(expected, rel=0.05)

    def test_transfer_function_wrapper(self):
        result = transfer_function(divider(), dc_operating_point(divider()), "out")
        assert abs(result["gain"][0]) == pytest.approx(0.5, rel=1e-3)

    def test_magnitude_db_and_phase(self):
        circuit = divider()
        op = dc_operating_point(circuit)
        solution = ac_analysis(circuit, op, [1e3, 1e6])
        assert solution.magnitude_db("out")[0] == pytest.approx(-6.02, abs=0.1)
        assert solution.phase_deg("out")[0] == pytest.approx(0.0, abs=1.0)

    def test_differential_voltage(self):
        circuit = divider()
        op = dc_operating_point(circuit)
        solution = ac_analysis(circuit, op, [1e3])
        diff = solution.differential_voltage("in", "out")
        assert abs(diff[0]) == pytest.approx(0.5, rel=1e-3)
