"""Tests for the unified evaluation subsystem (``repro.eval``)."""

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.env import SizingEnvironment, default_fom_config
from repro.eval import (
    BACKENDS,
    CachingEvaluator,
    EvalResult,
    EvaluatorConfig,
    LocalEvaluator,
    ParallelEvaluator,
    VectorizedEvaluator,
    build_evaluator,
    sizing_cache_key,
)
from repro.experiments.driver import OptimizationDriver
from repro.optim import EvolutionStrategy, RandomSearch

#: Every conformance backend: name -> evaluator factory.  ``caching+X``
#: stacks the LRU cache over backend ``X``, exactly like EvaluatorConfig.
CONFORMANCE_BACKENDS = {
    "local": lambda circuit: LocalEvaluator(circuit),
    "thread": lambda circuit: ParallelEvaluator(circuit, max_workers=2, backend="thread"),
    "process": lambda circuit: ParallelEvaluator(circuit, max_workers=2, backend="process"),
    "caching": lambda circuit: CachingEvaluator(LocalEvaluator(circuit), max_size=64),
    "vectorized": lambda circuit: VectorizedEvaluator(circuit),
    "caching+vectorized": lambda circuit: CachingEvaluator(
        VectorizedEvaluator(circuit), max_size=64
    ),
}

#: Backends that re-order floating-point accumulation (stacked solves); their
#: results match the serial reference at solver precision, not bit-for-bit.
APPROXIMATE_BACKENDS = {"vectorized", "caching+vectorized"}


@pytest.fixture()
def sizings(two_tia, rng):
    """A handful of random refined sizings of the shared Two-TIA circuit."""
    return [two_tia.random_sizing(rng) for _ in range(6)]


class CountingEvaluator(LocalEvaluator):
    """Local evaluator that counts how many designs it actually simulates."""

    def __init__(self, circuit):
        super().__init__(circuit)
        self.simulated = 0

    def _evaluate_bucket(self, circuit, sizings):
        self.simulated += len(sizings)
        return super()._evaluate_bucket(circuit, sizings)


class TestLocalEvaluator:
    def test_matches_direct_circuit_evaluate(self, two_tia, sizings):
        evaluator = LocalEvaluator(two_tia)
        results = evaluator.evaluate_batch(sizings)
        for sizing, result in zip(sizings, results):
            assert result.sizing is sizing
            assert result.metrics == two_tia.evaluate(sizing)
            assert not result.cached

    def test_stats_counted(self, two_tia, sizings):
        evaluator = LocalEvaluator(two_tia)
        evaluator.evaluate_batch(sizings)
        evaluator.evaluate(sizings[0])
        assert evaluator.stats.num_batches == 2
        assert evaluator.stats.num_designs == len(sizings) + 1
        assert evaluator.stats.num_simulations == len(sizings) + 1
        assert evaluator.stats.total_time > 0


class TestParallelEvaluator:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_bit_identical_to_local(self, two_tia, sizings, backend):
        local = LocalEvaluator(two_tia).evaluate_batch(sizings)
        with ParallelEvaluator(two_tia, max_workers=2, backend=backend) as pool:
            parallel = pool.evaluate_batch(sizings)
        for a, b in zip(local, parallel):
            assert a.metrics == b.metrics  # exact, not approximate

    def test_result_order_matches_input_order(self, two_tia, sizings):
        with ParallelEvaluator(two_tia, max_workers=3, backend="thread") as pool:
            results = pool.evaluate_batch(sizings)
        for sizing, result in zip(sizings, results):
            assert result.sizing is sizing

    def test_single_worker_and_tiny_batch_run_inline(self, two_tia, sizings):
        evaluator = ParallelEvaluator(two_tia, max_workers=1)
        results = evaluator.evaluate_batch(sizings[:1])
        assert len(results) == 1
        assert evaluator._executor is None  # never spun up a pool

    def test_unknown_backend_rejected(self, two_tia):
        with pytest.raises(ValueError):
            ParallelEvaluator(two_tia, backend="gpu")

    def test_chunking_covers_every_index_contiguously(self, two_tia):
        evaluator = ParallelEvaluator(two_tia, max_workers=4)
        for count in (1, 2, 4, 5, 11):
            slices = evaluator._chunks(count)
            indices = [i for s in slices for i in range(count)[s]]
            assert indices == list(range(count))


class TestCachingEvaluator:
    def test_hit_counts_and_identical_results(self, two_tia, sizings):
        counting = CountingEvaluator(two_tia)
        evaluator = CachingEvaluator(counting, max_size=64)
        first = evaluator.evaluate_batch(sizings)
        second = evaluator.evaluate_batch(sizings)
        assert counting.simulated == len(sizings)  # second pass all hits
        assert evaluator.stats.cache_hits == len(sizings)
        assert evaluator.stats.num_simulations == len(sizings)
        for a, b in zip(first, second):
            assert a.metrics == b.metrics
            assert not a.cached and b.cached

    def test_duplicates_within_one_batch_simulated_once(self, two_tia, sizings):
        counting = CountingEvaluator(two_tia)
        evaluator = CachingEvaluator(counting, max_size=64)
        results = evaluator.evaluate_batch([sizings[0], sizings[0], sizings[1]])
        assert counting.simulated == 2
        assert evaluator.stats.cache_hits == 1
        assert results[0].metrics == results[1].metrics

    def test_mutating_a_result_never_corrupts_the_cache(self, two_tia, sizings):
        evaluator = CachingEvaluator(LocalEvaluator(two_tia), max_size=8)
        first = evaluator.evaluate_batch(sizings[:1])[0]
        first.metrics["gain"] = -123.0
        again = evaluator.evaluate_batch(sizings[:1])[0]
        assert again.metrics["gain"] != -123.0

    def test_lru_eviction_bounds_size(self, two_tia, sizings):
        evaluator = CachingEvaluator(LocalEvaluator(two_tia), max_size=2)
        evaluator.evaluate_batch(sizings)
        assert len(evaluator) == 2
        assert evaluator.stats.cache_evictions == len(sizings) - 2
        # Batch larger than the cache still returns every result.
        results = evaluator.evaluate_batch(sizings)
        assert len(results) == len(sizings)

    def test_cache_key_quantizes_and_canonicalises(self):
        a = {"m2": {"w": 1e-6, "l": 2e-7}, "m1": {"w": 3e-6}}
        b = {"m1": {"w": 3e-6 * (1 + 1e-15)}, "m2": {"l": 2e-7, "w": 1e-6}}
        assert sizing_cache_key(a) == sizing_cache_key(b)
        c = {"m1": {"w": 3.1e-6}, "m2": {"w": 1e-6, "l": 2e-7}}
        assert sizing_cache_key(a) != sizing_cache_key(c)


class TestBackendConformance:
    """Every backend passes one suite: same results, same contract."""

    @pytest.fixture(params=sorted(CONFORMANCE_BACKENDS))
    def backend_name(self, request):
        return request.param

    @pytest.fixture()
    def evaluator(self, backend_name, two_tia):
        with CONFORMANCE_BACKENDS[backend_name](two_tia) as evaluator:
            yield evaluator

    def _assert_metrics_match(self, backend_name, got, reference):
        for result, expected in zip(got, reference):
            assert result.metrics.keys() == expected.metrics.keys()
            for key in expected.metrics:
                if backend_name in APPROXIMATE_BACKENDS:
                    assert result.metrics[key] == pytest.approx(
                        expected.metrics[key], rel=1e-6, abs=1e-12
                    )
                else:
                    assert result.metrics[key] == expected.metrics[key]

    def test_matches_local_reference(self, backend_name, evaluator, two_tia, sizings):
        reference = LocalEvaluator(two_tia).evaluate_batch(sizings)
        results = evaluator.evaluate_batch(sizings)
        assert [r.sizing for r in results] == list(sizings)
        self._assert_metrics_match(backend_name, results, reference)

    def test_scalar_call_is_batch_of_one(self, backend_name, evaluator, sizings):
        single = evaluator.evaluate(sizings[0])
        batch = evaluator.evaluate_batch([sizings[0]])[0]
        assert single.metrics.keys() == batch.metrics.keys()

    def test_stats_count_every_design(self, evaluator, sizings):
        evaluator.evaluate_batch(sizings)
        assert evaluator.stats.num_batches == 1
        assert evaluator.stats.num_designs == len(sizings)
        assert evaluator.stats.total_time > 0

    def test_quantized_cache_key_interaction(self, backend_name, evaluator, sizings):
        """Sub-ULP jitter of a sizing must hit the same cache entry.

        The caching stacks serve the jittered design from the cache (exact
        metrics, zero extra simulations); the plain backends re-simulate the
        almost-identical netlist, whose metrics agree to solver precision —
        so quantized keys can never alias visibly different designs.
        """
        base = sizings[0]
        jittered = {
            comp: {name: value * (1 + 1e-15) for name, value in params.items()}
            for comp, params in base.items()
        }
        assert sizing_cache_key(base) == sizing_cache_key(jittered)
        first = evaluator.evaluate_batch([base])[0]
        second = evaluator.evaluate_batch([jittered])[0]
        if backend_name.startswith("caching"):
            assert first.metrics == second.metrics  # exact: served from cache
            assert second.cached
            assert evaluator.stats.cache_hits == 1
            assert evaluator.stats.num_simulations == 1
        else:
            for key in first.metrics:
                assert second.metrics[key] == pytest.approx(
                    first.metrics[key], rel=1e-6, abs=1e-12
                )

    def test_optimization_run_matches_local(self, backend_name, evaluator, two_tia):
        def run(inner):
            env = SizingEnvironment(
                two_tia, default_fom_config(two_tia), evaluator=inner
            )
            return OptimizationDriver(RandomSearch(env, seed=3), budget=6).run()

        reference = run(LocalEvaluator(two_tia))
        result = run(evaluator)
        if backend_name in APPROXIMATE_BACKENDS:
            assert result.rewards == pytest.approx(reference.rewards, rel=1e-9, abs=1e-9)
        else:
            assert result.rewards == reference.rewards


class TestVectorizedEvaluator:
    def test_in_backends_registry(self):
        assert "vectorized" in BACKENDS

    def test_config_builds_vectorized_stack(self, two_tia):
        evaluator = EvaluatorConfig(backend="vectorized", cache_size=8).build(two_tia)
        assert isinstance(evaluator, CachingEvaluator)
        assert isinstance(evaluator.inner, VectorizedEvaluator)

    def test_rejects_invalid_chunk_size(self, two_tia):
        with pytest.raises(ValueError):
            VectorizedEvaluator(two_tia, max_batch_size=0)

    def test_chunking_preserves_order_and_results(self, two_tia, sizings):
        whole = VectorizedEvaluator(two_tia).evaluate_batch(sizings)
        chunked = VectorizedEvaluator(two_tia, max_batch_size=2).evaluate_batch(sizings)
        for a, b in zip(whole, chunked):
            assert a.sizing is b.sizing
            for key in a.metrics:
                assert a.metrics[key] == pytest.approx(b.metrics[key], rel=1e-9)

    def test_planless_circuit_falls_back_to_serial(self):
        ldo = get_circuit("ldo")
        assert ldo.analysis_plan() is None
        sizing = ldo.expert_sizing()
        vectorized = VectorizedEvaluator(ldo).evaluate_batch([sizing])
        local = LocalEvaluator(ldo).evaluate_batch([sizing])
        assert vectorized[0].metrics == local[0].metrics  # exact: same code path

    def test_failed_designs_report_failure_metrics(self, two_tia, monkeypatch):
        """Designs the DC stage cannot converge must yield failure metrics."""
        from repro.spice.batch import dc as batch_dc

        def never_converges(template, x0, *args, **kwargs):
            batch = template.batch_size
            return (
                np.zeros_like(x0),
                np.zeros(batch, dtype=bool),
                np.zeros(batch, dtype=int),
            )

        monkeypatch.setattr(batch_dc, "batch_newton", never_converges)
        rng = np.random.default_rng(1)
        sizing = two_tia.random_sizing(rng)
        result = VectorizedEvaluator(two_tia).evaluate_batch([sizing])[0]
        assert result.metrics["simulation_failed"] == 1.0


class TestCalibratedPairParity:
    """FoM parity vs LocalEvaluator on every calibrated circuit × technology."""

    def _calibrated_pairs():
        from repro.env.fom import CALIBRATION_DIR

        pairs = []
        for path in sorted(CALIBRATION_DIR.glob("*.json")):
            circuit_name, technology = path.stem.rsplit("_", 1)
            pairs.append((circuit_name, technology))
        return pairs

    PAIRS = _calibrated_pairs()

    def test_every_calibrated_pair_is_covered(self):
        assert ("two_tia", "180nm") in self.PAIRS
        assert ("ldo", "180nm") in self.PAIRS
        assert len(self.PAIRS) >= 12

    @pytest.mark.parametrize("circuit_name,technology", PAIRS)
    def test_fom_parity_with_local(self, circuit_name, technology):
        circuit = get_circuit(circuit_name, technology)
        rng = np.random.default_rng(99)
        designs = [circuit.expert_sizing()] + [
            circuit.random_sizing(rng) for _ in range(2)
        ]
        fom = default_fom_config(circuit)
        local = LocalEvaluator(circuit).evaluate_batch(designs)
        vectorized = VectorizedEvaluator(circuit).evaluate_batch(designs)
        for reference, result in zip(local, vectorized):
            assert fom.compute(result.metrics) == pytest.approx(
                fom.compute(reference.metrics), rel=1e-9, abs=1e-9
            )


class TestEvaluatorConfig:
    def test_build_local_default(self, two_tia):
        assert isinstance(build_evaluator(two_tia), LocalEvaluator)

    def test_build_composes_cache_over_pool(self, two_tia):
        config = EvaluatorConfig(backend="thread", max_workers=2, cache_size=16)
        evaluator = config.build(two_tia)
        assert isinstance(evaluator, CachingEvaluator)
        assert isinstance(evaluator.inner, ParallelEvaluator)
        assert evaluator.inner.max_workers == 2
        evaluator.close()

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            EvaluatorConfig(backend="quantum")
        with pytest.raises(ValueError):
            EvaluatorConfig(max_workers=0)
        with pytest.raises(ValueError):
            EvaluatorConfig(cache_size=-1)

    def test_cache_keys_distinguish_configs(self):
        keys = {
            EvaluatorConfig().cache_key(),
            EvaluatorConfig(backend="process", max_workers=4).cache_key(),
            EvaluatorConfig(cache_size=32).cache_key(),
        }
        assert len(keys) == 3


class TestEnvironmentBatchAPI:
    def _fresh_env(self, circuit, **kwargs):
        return SizingEnvironment(circuit, default_fom_config(circuit), **kwargs)

    def test_step_batch_history_matches_sequential_steps(self, two_tia, rng):
        n, d = two_tia.num_components, 4
        actions_batch = [rng.uniform(-1, 1, size=(n, d)) for _ in range(5)]
        env_batch = self._fresh_env(two_tia)
        env_seq = self._fresh_env(two_tia)
        batch_results = env_batch.step_batch(actions_batch)
        seq_results = [env_seq.step(a) for a in actions_batch]
        assert [r.reward for r in batch_results] == [r.reward for r in seq_results]
        assert [h.reward for h in env_batch.history] == [
            h.reward for h in env_seq.history
        ]
        assert [r.step_index for r in batch_results] == list(range(5))
        assert env_batch.best_reward == env_seq.best_reward
        assert env_batch.best_sizing == env_seq.best_sizing

    def test_normalized_batch_matches_scalar_path(self, two_tia, rng):
        dim = two_tia.parameter_space.dimension
        vectors = rng.uniform(-1, 1, size=(3, dim))
        env_batch = self._fresh_env(two_tia)
        env_seq = self._fresh_env(two_tia)
        batch = env_batch.evaluate_normalized_batch(vectors)
        scalar = [env_seq.evaluate_normalized_vector(v) for v in vectors]
        assert [r.reward for r in batch] == [r.reward for r in scalar]

    def test_step_batch_validates_shapes_before_simulating(self, two_tia):
        env = self._fresh_env(two_tia)
        with pytest.raises(ValueError):
            env.step_batch([np.zeros((2, 3))])
        assert env.history == []

    def test_environment_rejects_foreign_evaluator(self, two_tia):
        other = get_circuit("three_tia")
        with pytest.raises(ValueError):
            SizingEnvironment(two_tia, evaluator=LocalEvaluator(other))

    def test_scalar_only_override_is_honoured_by_batch_methods(self, two_tia):
        """Legacy subclasses overriding only step() must keep working.

        The batched RL warm-up goes through step_batch; a synthetic
        environment that replaces step() alone must still see its reward
        used, not the real simulator.
        """

        class ScalarOnlyEnvironment(SizingEnvironment):
            def step(self, actions):
                return self._record(42.0, {"synthetic": 42.0}, {})

            def evaluate_normalized_vector(self, vector):
                return self._record(-7.0, {"synthetic": -7.0}, {})

        env = ScalarOnlyEnvironment(two_tia)
        n, d = two_tia.num_components, env.action_dim
        batch = env.step_batch([np.zeros((n, d)), np.zeros((n, d))])
        assert [r.reward for r in batch] == [42.0, 42.0]
        flat = env.evaluate_normalized_batch(np.zeros((2, env.parameter_dimension)))
        assert [r.reward for r in flat] == [-7.0, -7.0]

    def test_all_paths_share_one_evaluator(self, two_tia, rng):
        counting = CountingEvaluator(two_tia)
        env = self._fresh_env(two_tia, evaluator=counting)
        env.evaluate_sizing(two_tia.expert_sizing())
        env.random_step(rng)
        env.step(np.zeros((two_tia.num_components, env.action_dim)))
        env.evaluate_normalized_vector(np.zeros(env.parameter_dimension))
        assert counting.simulated == 4
        assert len(env.history) == 4


class TestOptimizersUnderParallelism:
    """Acceptance: parallel evaluation is invisible in optimization results."""

    @pytest.mark.parametrize("cls,budget", [(RandomSearch, 8), (EvolutionStrategy, 16)])
    def test_parallel_matches_local_results(self, two_tia, cls, budget):
        def run(evaluator):
            env = SizingEnvironment(
                two_tia, default_fom_config(two_tia), evaluator=evaluator
            )
            return OptimizationDriver(cls(env, seed=0), budget=budget).run()

        local = run(LocalEvaluator(two_tia))
        with ParallelEvaluator(two_tia, max_workers=4, backend="process") as pool:
            parallel = run(pool)
        assert local.rewards == parallel.rewards
        assert local.best_reward == parallel.best_reward
        assert local.best_sizing == parallel.best_sizing

    def test_caching_changes_no_rewards_across_restarts(self, two_tia):
        cached = CachingEvaluator(LocalEvaluator(two_tia), max_size=256)

        def run(evaluator):
            env = SizingEnvironment(
                two_tia, default_fom_config(two_tia), evaluator=evaluator
            )
            return OptimizationDriver(RandomSearch(env, seed=2), budget=6).run()

        baseline = run(LocalEvaluator(two_tia))
        first = run(cached)
        second = run(cached)  # identical seed: every design is a cache hit
        assert first.rewards == baseline.rewards
        assert second.rewards == baseline.rewards
        assert cached.stats.cache_hits == 6


class TestOptimizationResultSerialization:
    def test_best_so_far_empty_is_float64(self):
        from repro.optim import OptimizationResult

        result = OptimizationResult("random", 0.0, {}, {})
        curve = result.best_so_far()
        assert curve.dtype == np.float64
        assert curve.size == 0

    def test_to_dict_round_trips_through_json(self, two_tia):
        import json

        env = SizingEnvironment(two_tia, default_fom_config(two_tia))
        result = OptimizationDriver(RandomSearch(env, seed=0), budget=2).run()
        data = json.loads(json.dumps(result.to_dict()))
        assert data["method"] == "random"
        assert data["num_evaluations"] == 2
        assert len(data["rewards"]) == 2
        assert data["best_sizing"]
