"""Tests for topology-graph extraction and the GCN propagation matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import get_circuit
from repro.circuits.components import ComponentType, mosfet, resistor
from repro.circuits.graph import (
    build_adjacency,
    graph_statistics,
    normalized_adjacency,
    receptive_field_depth,
    to_networkx,
)


def chain_components(n):
    """A simple chain: R0 - R1 - ... sharing intermediate nets."""
    comps = []
    for i in range(n):
        comps.append(resistor(f"R{i}", f"n{i}", f"n{i+1}"))
    return comps


class TestAdjacency:
    def test_chain_adjacency_structure(self):
        adjacency = build_adjacency(chain_components(4))
        expected = np.array(
            [
                [0, 1, 0, 0],
                [1, 0, 1, 0],
                [0, 1, 0, 1],
                [0, 0, 1, 0],
            ],
            dtype=float,
        )
        assert np.array_equal(adjacency, expected)

    def test_adjacency_is_symmetric_with_zero_diagonal(self):
        circuit = get_circuit("two_tia")
        adjacency = circuit.adjacency()
        assert np.array_equal(adjacency, adjacency.T)
        assert np.all(np.diag(adjacency) == 0)

    def test_supply_nets_do_not_create_edges(self):
        comps = [
            mosfet("T1", ComponentType.NMOS, "a", "g1", "vdd", "vdd"),
            mosfet("T2", ComponentType.NMOS, "b", "g2", "vdd", "vdd"),
        ]
        adjacency = build_adjacency(comps)
        assert adjacency[0, 1] == 0

    def test_shared_signal_net_creates_edge(self):
        comps = [
            mosfet("T1", ComponentType.NMOS, "x", "g1", "0", "0"),
            mosfet("T2", ComponentType.NMOS, "y", "x", "0", "0"),
        ]
        adjacency = build_adjacency(comps)
        assert adjacency[0, 1] == 1

    def test_custom_exclude_nets(self):
        comps = chain_components(3)
        adjacency = build_adjacency(comps, exclude_nets=["n1"])
        assert adjacency[0, 1] == 0
        assert adjacency[1, 2] == 1


class TestNormalizedAdjacency:
    def test_rows_of_normalized_adjacency_are_bounded(self):
        adjacency = build_adjacency(chain_components(5))
        a_hat = normalized_adjacency(adjacency)
        assert np.all(a_hat >= 0)
        assert np.all(a_hat <= 1.0 + 1e-12)

    def test_normalized_adjacency_is_symmetric(self):
        circuit = get_circuit("three_tia")
        a_hat = circuit.normalized_adjacency()
        assert np.allclose(a_hat, a_hat.T)

    def test_isolated_node_maps_to_identity_entry(self):
        adjacency = np.zeros((3, 3))
        a_hat = normalized_adjacency(adjacency)
        assert np.allclose(a_hat, np.eye(3))

    def test_spectral_radius_at_most_one(self):
        adjacency = build_adjacency(chain_components(6))
        a_hat = normalized_adjacency(adjacency)
        eigenvalues = np.linalg.eigvalsh(a_hat)
        assert np.max(np.abs(eigenvalues)) <= 1.0 + 1e-9

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_normalized_adjacency_properties_on_random_graphs(self, n, seed):
        rng = np.random.default_rng(seed)
        raw = rng.integers(0, 2, size=(n, n)).astype(float)
        adjacency = np.triu(raw, 1)
        adjacency = adjacency + adjacency.T
        a_hat = normalized_adjacency(adjacency)
        assert np.allclose(a_hat, a_hat.T, atol=1e-12)
        assert np.max(np.abs(np.linalg.eigvalsh(a_hat))) <= 1.0 + 1e-9


class TestGraphExports:
    def test_networkx_export_node_and_edge_counts(self):
        circuit = get_circuit("two_tia")
        graph = to_networkx(circuit.components)
        adjacency = circuit.adjacency()
        assert graph.number_of_nodes() == circuit.num_components
        assert graph.number_of_edges() == int(adjacency.sum() / 2)

    def test_graph_statistics_keys(self):
        stats = graph_statistics(get_circuit("ldo").components)
        assert stats["num_nodes"] == 10
        assert stats["num_edges"] > 0
        assert stats["max_degree"] >= stats["avg_degree"]

    def test_receptive_field_depth_of_chain(self):
        adjacency = build_adjacency(chain_components(5))
        assert receptive_field_depth(adjacency) == 4

    def test_receptive_field_depth_smaller_than_paper_depth(self):
        # The paper stacks 7 GCN layers to guarantee a global receptive field;
        # all four benchmark topologies indeed have diameter <= 7.
        for name in ("two_tia", "two_volt", "three_tia", "ldo"):
            circuit = get_circuit(name)
            assert receptive_field_depth(circuit.adjacency()) <= 7
