"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.env import SizingEnvironment, default_fom_config
from repro.technology import get_node


@pytest.fixture(scope="session")
def tech_180():
    """The 180nm technology node (the paper's design node)."""
    return get_node("180nm")


@pytest.fixture(scope="session")
def two_tia(tech_180):
    """A Two-TIA circuit instance shared across tests (read-only usage)."""
    return get_circuit("two_tia", tech_180)


@pytest.fixture(scope="session")
def two_tia_env(two_tia):
    """A sizing environment for the Two-TIA (shared FoM calibration)."""
    return SizingEnvironment(two_tia, default_fom_config(two_tia))


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(12345)
