"""Mixed-batch ``EvalRequest`` conformance across every evaluator backend.

The redesigned protocol promises that an arbitrarily interleaved batch of
requests — any circuits, any technologies — evaluated through one unbound
evaluator produces exactly the results the equivalent per-circuit
``evaluate_batch`` calls would, in request order.  These tests drive random
interleavings of every calibrated circuit × technology pair through the
local, caching and vectorized backends and compare against the per-circuit
reference, plus the request-keyed cache/peek semantics and the batched
homotopy that replaced the per-design scalar bail-out.
"""

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.eval import (
    CachingEvaluator,
    EvalRequest,
    EvalResult,
    Evaluator,
    LocalEvaluator,
    VectorizedEvaluator,
    request_cache_key,
)


def calibrated_pairs():
    """Every (circuit, technology) pair with a committed FoM calibration."""
    from repro.env.fom import CALIBRATION_DIR

    pairs = []
    for path in sorted(CALIBRATION_DIR.glob("*.json")):
        circuit_name, technology = path.stem.rsplit("_", 1)
        pairs.append((circuit_name, technology))
    return pairs


PAIRS = calibrated_pairs()

#: Unbound evaluator stacks under conformance test: name -> factory.
MIXED_BACKENDS = {
    "local": lambda: LocalEvaluator(),
    "caching": lambda: CachingEvaluator(LocalEvaluator(), max_size=256),
    "vectorized": lambda: VectorizedEvaluator(),
    "caching+vectorized": lambda: CachingEvaluator(
        VectorizedEvaluator(), max_size=256
    ),
}

#: Backends whose stacked solves re-order floating-point accumulation; they
#: agree with the serial reference at solver precision, not bit-for-bit.
APPROXIMATE_BACKENDS = {"vectorized", "caching+vectorized"}


def mixed_requests(rng, designs_per_pair=2):
    """A randomly interleaved request list covering every calibrated pair."""
    requests = []
    for circuit_name, technology in PAIRS:
        circuit = get_circuit(circuit_name, technology)
        for index in range(designs_per_pair):
            sizing = (
                circuit.expert_sizing()
                if index == 0
                else circuit.random_sizing(rng)
            )
            requests.append(EvalRequest(circuit_name, technology, sizing))
    order = rng.permutation(len(requests))
    return [requests[i] for i in order]


class TestMixedBatchConformance:
    @pytest.fixture(params=sorted(MIXED_BACKENDS))
    def backend_name(self, request):
        return request.param

    def test_matches_per_circuit_batches(self, backend_name, rng):
        """One mixed evaluate_requests == the per-circuit reference.

        Serial stacks must match bit-for-bit; the vectorized stacks match at
        solver precision (their stacked Newton solves re-order the
        floating-point accumulation).
        """
        requests = mixed_requests(rng)
        with MIXED_BACKENDS[backend_name]() as evaluator:
            results = evaluator.evaluate_requests(requests)

        assert len(results) == len(requests)
        # Per-circuit reference: each pair evaluated through a bound
        # LocalEvaluator, exactly as a dedicated environment would.
        by_bucket = {}
        for index, request in enumerate(requests):
            by_bucket.setdefault(request.bucket, []).append(index)
        for bucket, indices in by_bucket.items():
            first = requests[indices[0]]
            circuit = get_circuit(first.circuit, first.technology)
            reference = LocalEvaluator(circuit).evaluate_batch(
                [requests[i].sizing for i in indices]
            )
            for index, expected in zip(indices, reference):
                result = results[index]
                assert result.sizing is requests[index].sizing
                assert result.metrics.keys() == expected.metrics.keys()
                for key in expected.metrics:
                    if backend_name in APPROXIMATE_BACKENDS:
                        assert result.metrics[key] == pytest.approx(
                            expected.metrics[key], rel=1e-9, abs=1e-12
                        )
                    else:
                        assert result.metrics[key] == expected.metrics[key]

    def test_interleaving_is_irrelevant(self, backend_name):
        """Two different shuffles of the same requests agree bit-for-bit."""
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        requests = mixed_requests(rng_a, designs_per_pair=1)
        order = np.random.default_rng(11).permutation(len(requests))
        shuffled = [requests[i] for i in order]
        del rng_b

        with MIXED_BACKENDS[backend_name]() as evaluator:
            results = evaluator.evaluate_requests(requests)
        with MIXED_BACKENDS[backend_name]() as evaluator:
            results_shuffled = evaluator.evaluate_requests(shuffled)

        for position, index in enumerate(order):
            assert results_shuffled[position].metrics == results[index].metrics

    def test_stats_counted_once_per_mixed_batch(self, backend_name, rng):
        requests = mixed_requests(rng, designs_per_pair=1)
        with MIXED_BACKENDS[backend_name]() as evaluator:
            evaluator.evaluate_requests(requests)
            assert evaluator.stats.num_batches == 1
            assert evaluator.stats.num_designs == len(requests)
            assert evaluator.stats.total_time > 0


class TestEvaluateBatchAdapter:
    def test_bound_batch_equals_requests(self, two_tia, rng):
        sizings = [two_tia.random_sizing(rng) for _ in range(3)]
        bound = LocalEvaluator(two_tia)
        unbound = LocalEvaluator()
        batch = bound.evaluate_batch(sizings)
        requests = unbound.evaluate_requests(
            [EvalRequest("two_tia", "180nm", s) for s in sizings]
        )
        for a, b in zip(batch, requests):
            assert a.metrics == b.metrics

    def test_unbound_evaluate_batch_raises(self, rng):
        with pytest.raises(RuntimeError, match="not bound"):
            LocalEvaluator().evaluate_batch([{}])

    def test_bind_returns_noop_close_view(self, two_tia, rng):
        shared = LocalEvaluator()
        view = shared.bind(two_tia)
        view.evaluate_batch([two_tia.random_sizing(rng)])
        assert shared.stats.num_designs == 1  # stats funnel to the shared one
        view.close()
        # The shared evaluator survived the view's close.
        view2 = shared.bind(two_tia)
        view2.evaluate_batch([two_tia.random_sizing(rng)])
        assert shared.stats.num_designs == 2


class LegacyEvaluator(Evaluator):
    """A pre-``EvalRequest`` subclass: overrides ``evaluate_batch`` only."""

    def evaluate_batch(self, sizings):
        return [
            EvalResult(sizing=s, metrics=self.circuit.evaluate(s))
            for s in sizings
        ]


class TestLegacySubclassGuard:
    def test_bound_requests_route_through_batch_override(self, two_tia, rng):
        legacy = LegacyEvaluator(two_tia)
        sizing = two_tia.random_sizing(rng)
        results = legacy.evaluate_requests(
            [EvalRequest("two_tia", "180nm", sizing)]
        )
        assert results[0].metrics == two_tia.evaluate(sizing)

    def test_foreign_requests_rejected_with_clear_error(self, two_tia):
        legacy = LegacyEvaluator(two_tia)
        request = EvalRequest("three_tia", "180nm", {})
        with pytest.raises(ValueError, match="three_tia"):
            legacy.evaluate_requests([request])


class TestRequestCacheKey:
    def test_same_sizing_different_circuit_never_collides(self, two_tia, rng):
        sizing = {"m1": {"w": 1e-6}}
        a = request_cache_key(EvalRequest("two_tia", "180nm", sizing))
        b = request_cache_key(EvalRequest("three_tia", "180nm", sizing))
        c = request_cache_key(EvalRequest("two_tia", "45nm", sizing))
        assert len({a, b, c}) == 3

    def test_key_is_case_insensitive_in_circuit_name(self):
        sizing = {"m1": {"w": 1e-6}}
        assert request_cache_key(
            EvalRequest("Two_TIA", "180nm", sizing)
        ) == request_cache_key(EvalRequest("two_tia", "180nm", sizing))

    def test_mixed_batch_dedup_is_per_request(self, rng):
        """The cache must dedup per (circuit, technology, sizing) triple."""
        two = get_circuit("two_tia")
        three = get_circuit("three_tia")
        sizing_two = two.random_sizing(rng)
        sizing_three = three.random_sizing(rng)
        evaluator = CachingEvaluator(LocalEvaluator(), max_size=64)
        requests = [
            EvalRequest("two_tia", "180nm", sizing_two),
            EvalRequest("three_tia", "180nm", sizing_three),
            EvalRequest("two_tia", "180nm", sizing_two),  # duplicate
        ]
        results = evaluator.evaluate_requests(requests)
        assert evaluator.stats.num_simulations == 2
        assert evaluator.stats.cache_hits == 1
        assert results[0].metrics == results[2].metrics

    def test_peek_is_request_keyed(self, rng):
        two = get_circuit("two_tia")
        sizing = two.random_sizing(rng)
        evaluator = CachingEvaluator(LocalEvaluator(), max_size=64)
        request = EvalRequest("two_tia", "180nm", sizing)
        assert evaluator.peek(request) is None
        [result] = evaluator.evaluate_requests([request])
        assert evaluator.peek(request) == result.metrics
        # Same sizing under another circuit is a different design entirely.
        assert evaluator.peek(EvalRequest("three_tia", "180nm", sizing)) is None


class TestBatchedHomotopy:
    """The masked homotopy replaces the per-design scalar bail-out."""

    def hard_designs(self, circuit, count=3):
        """All-lower-bound corners are the classic hard-to-converge designs."""
        space = circuit.parameter_space
        corner = space.vector_to_sizing([d.lower for d in space.definitions])
        rng = np.random.default_rng(5)
        return [corner] + [circuit.random_sizing(rng) for _ in range(count - 1)]

    def test_hard_designs_match_scalar_reference(self, two_tia):
        from repro.spice.batch.dc import batch_dc_operating_point
        from repro.spice.dc import dc_operating_point

        designs = self.hard_designs(two_tia)
        netlists = [two_tia.build_circuit(s) for s in designs]
        solutions = batch_dc_operating_point(netlists)
        for netlist, solution in zip(netlists, solutions):
            reference = dc_operating_point(netlist)
            assert solution.converged == reference.converged
            if reference.converged:
                assert np.allclose(
                    solution.x, reference.x, rtol=1e-9, atol=1e-12
                )

    def test_hard_designs_take_zero_scalar_fallbacks(self, two_tia):
        evaluator = VectorizedEvaluator()
        requests = [
            EvalRequest("two_tia", "180nm", sizing)
            for sizing in self.hard_designs(two_tia)
        ]
        results = evaluator.evaluate_requests(requests)
        assert len(results) == len(requests)
        assert evaluator.stats.scalar_fallbacks == 0

    def test_planless_circuit_counts_scalar_fallbacks(self):
        ldo = get_circuit("ldo")
        assert ldo.analysis_plan() is None
        evaluator = VectorizedEvaluator()
        evaluator.evaluate_requests(
            [EvalRequest("ldo", "180nm", ldo.expert_sizing())]
        )
        assert evaluator.stats.scalar_fallbacks == 1
