"""Tests for the black-box baseline optimizers (random, ES, BO, MACE)."""

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.env import SizingEnvironment
from repro.env.environment import StepResult
from repro.experiments.driver import OptimizationDriver
from repro.optim import (
    BayesianOptimization,
    EvolutionStrategy,
    GaussianProcess,
    MACE,
    RandomSearch,
    expected_improvement,
    get_strategy,
    list_optimizers,
    pareto_front_indices,
    probability_of_improvement,
    upper_confidence_bound,
)


class QuadraticEnvironment(SizingEnvironment):
    """Synthetic environment: reward peaks at a known point of the cube.

    Overrides the batch entry point (the single path every optimizer uses);
    the scalar ``evaluate_normalized_vector`` wrapper comes along for free.
    """

    def __init__(self, circuit, optimum=0.3):
        super().__init__(circuit)
        self.optimum = optimum

    def evaluate_normalized_batch(self, vectors) -> list:
        results = []
        for vector in vectors:
            vector = np.asarray(vector, dtype=float)
            reward = 1.0 - float(np.mean((vector - self.optimum) ** 2))
            results.append(self._record(reward, {"synthetic": reward}, {}))
        return results


@pytest.fixture()
def quadratic_env():
    return QuadraticEnvironment(get_circuit("two_tia"))


class TestRegistry:
    def test_all_paper_methods_registered(self):
        # One registry for every paper method: black-box baselines, the
        # human expert and both RL flavours.
        assert set(list_optimizers()) == {
            "random",
            "es",
            "bo",
            "mace",
            "human",
            "gcn_rl",
            "ng_rl",
        }

    def test_get_strategy_unknown_raises(self, quadratic_env):
        with pytest.raises(KeyError):
            get_strategy("simulated_annealing", quadratic_env)

    def test_get_strategy_builds_instance(self, quadratic_env):
        assert isinstance(get_strategy("es", quadratic_env), EvolutionStrategy)

    def test_removed_aliases_raise_with_replacement(self):
        import repro.optim
        import repro.optim.registry

        with pytest.raises(AttributeError, match="get_strategy"):
            repro.optim.get_optimizer
        with pytest.raises(AttributeError, match="STRATEGY_CLASSES"):
            repro.optim.OPTIMIZER_CLASSES
        with pytest.raises(AttributeError, match="Strategy"):
            repro.optim.BlackBoxOptimizer
        with pytest.raises(AttributeError, match="get_strategy"):
            repro.optim.registry.get_optimizer


class TestGaussianProcess:
    def test_gp_interpolates_training_points(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(20, 3))
        y = np.sin(x.sum(axis=1))
        gp = GaussianProcess().fit(x, y)
        mean, std = gp.predict(x)
        assert np.max(np.abs(mean - y)) < 0.15
        assert np.all(std >= 0)

    def test_gp_uncertainty_grows_away_from_data(self):
        x = np.zeros((5, 2))
        y = np.zeros(5)
        gp = GaussianProcess().fit(x, y, tune=False)
        _, std_near = gp.predict(np.zeros((1, 2)))
        _, std_far = gp.predict(np.full((1, 2), 5.0))
        assert std_far[0] > std_near[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_grid_search_matches_per_combo_recompute(self):
        """The shared sq_dist matrix must not change what the grid selects.

        Reference: an independent fit whose marginal likelihood recomputes
        the pairwise distances for every hyper-parameter combination (the
        pre-optimization behaviour).  Selected hyper-parameters and
        posterior predictions must be identical.
        """
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(24, 2))
        y = np.sin(2 * x[:, 0]) + 0.2 * x[:, 1]

        gp = GaussianProcess().fit(x, y, tune=True)

        reference = GaussianProcess()
        y_norm = (y - np.mean(y)) / np.std(y)
        best = (-np.inf, reference.length_scale, reference.noise)
        for length_scale in (0.2, 0.4, 0.8, 1.5, 3.0):
            for noise in (1e-4, 1e-3, 1e-2):
                reference.length_scale, reference.noise = length_scale, noise
                score = reference._log_marginal(
                    reference._sq_dist(x, x), y_norm
                )
                if score > best[0]:
                    best = (score, length_scale, noise)

        assert gp.length_scale == best[1]
        assert gp.noise == best[2]
        query = rng.uniform(-1, 1, size=(5, 2))
        reference.length_scale, reference.noise = best[1], best[2]
        reference.fit(x, y, tune=False)
        mean_a, std_a = gp.predict(query)
        mean_b, std_b = reference.predict(query)
        assert np.allclose(mean_a, mean_b)
        assert np.allclose(std_a, std_b)

    def test_acquisition_functions_prefer_high_mean(self):
        mean = np.array([0.0, 1.0])
        std = np.array([0.1, 0.1])
        assert expected_improvement(mean, std, best=0.5)[1] > expected_improvement(
            mean, std, best=0.5
        )[0]
        assert probability_of_improvement(mean, std, 0.5)[1] > 0.5
        assert upper_confidence_bound(mean, std)[1] > upper_confidence_bound(mean, std)[0]

    def test_pareto_front_identifies_non_dominated(self):
        objectives = np.array(
            [
                [1.0, 0.0],
                [0.0, 1.0],
                [0.5, 0.5],
                [0.1, 0.1],  # dominated by [0.5, 0.5]
            ]
        )
        front = set(pareto_front_indices(objectives))
        assert front == {0, 1, 2}


class TestOptimizersOnSyntheticTask:
    BUDGET = 40

    def _run(self, cls, env, **kwargs):
        strategy = cls(env, seed=0, **kwargs)
        return OptimizationDriver(strategy, budget=self.BUDGET).run()

    def test_random_search_budget_respected(self, quadratic_env):
        result = self._run(RandomSearch, quadratic_env)
        assert result.num_evaluations == self.BUDGET
        assert len(result.rewards) == self.BUDGET

    def test_es_beats_random_on_smooth_quadratic(self):
        env_es = QuadraticEnvironment(get_circuit("two_tia"))
        env_rnd = QuadraticEnvironment(get_circuit("two_tia"))
        es = OptimizationDriver(EvolutionStrategy(env_es, seed=0), budget=80).run()
        rnd = OptimizationDriver(RandomSearch(env_rnd, seed=0), budget=80).run()
        assert es.best_reward >= rnd.best_reward - 0.02

    def test_bo_improves_over_initial_design(self, quadratic_env):
        result = self._run(BayesianOptimization, quadratic_env, num_initial=8)
        initial_best = max(result.rewards[:8])
        assert result.best_reward >= initial_best

    def test_mace_runs_in_batches_and_respects_budget(self, quadratic_env):
        result = self._run(MACE, quadratic_env, num_initial=8, batch_size=4)
        assert result.num_evaluations == self.BUDGET

    def test_best_so_far_curves_are_monotone(self, quadratic_env):
        result = self._run(RandomSearch, quadratic_env)
        curve = result.best_so_far()
        assert np.all(np.diff(curve) >= 0)

    def test_all_methods_find_reasonable_optimum(self):
        for cls in (RandomSearch, EvolutionStrategy, BayesianOptimization, MACE):
            env = QuadraticEnvironment(get_circuit("two_tia"))
            result = OptimizationDriver(cls(env, seed=1), budget=40).run()
            assert result.best_reward > 0.7, cls.name

    def test_result_contains_best_metrics_and_sizing_on_real_env(self, two_tia_env):
        two_tia_env.reset_history()
        result = OptimizationDriver(RandomSearch(two_tia_env, seed=0), budget=3).run()
        assert result.num_evaluations == 3
        assert result.best_sizing
        assert "gain" in result.best_metrics
