"""Retry/timeout policy: how hard to try before a failure is terminal.

One frozen :class:`RetryPolicy` value travels the whole resilient path —
the wrapper, the coalescer and the campaign worker all speak the same
knobs, so "how many attempts / how long between them / how long may one
attempt run" is configured in exactly one shape everywhere.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.resilience.failures import RETRYABLE_KINDS


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff + jitter and a deadline.

    Attributes:
        max_attempts: Total attempts per request (1 = no retry).
        base_delay_s: Backoff before the second attempt; doubles per retry.
        max_delay_s: Backoff ceiling.
        jitter: Fractional jitter: the delay is scaled by a uniform draw
            from ``[1, 1 + jitter]`` to de-synchronize retry storms.
        deadline_s: Per-attempt wall-clock deadline (``None`` = unlimited;
            the default, because enforcing a deadline costs a watcher
            thread per attempt and the fast path must stay free).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.1
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive when set, got {self.deadline_s}"
            )

    def retryable(self, kind: str) -> bool:
        """Whether a failure of ``kind`` is worth another attempt."""
        return kind in RETRYABLE_KINDS

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
        delay = min(
            self.max_delay_s, self.base_delay_s * (2 ** max(attempt - 1, 0))
        )
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


#: Immediate, single-attempt policy — resilience bookkeeping without retries.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0)
