"""Deterministic fault injection: the chaos harness for the eval stack.

A :class:`FaultInjectingEvaluator` wraps any evaluator and makes a seeded,
per-design decision to sabotage requests — raising exceptions, returning
NaN metrics, timing out, or simulating a worker crash.  Two properties make
it usable as a *test oracle* rather than just noise:

* **Decisions are a pure function of (seed, design)** — each request's
  fault is derived from a SHA-256 hash of the seed and its canonical
  :func:`~repro.eval.caching.request_cache_key`, never from call order.
  The same seed poisons the same designs no matter how traffic is batched,
  coalesced or retried, so a faulted run can be compared bit-for-bit
  against a fault-free reference on the non-poisoned designs.
* **Faults can be transient** — with ``transient_attempts=N`` a poisoned
  design fails its first N attempts and then behaves normally, which is
  exactly what bounded-retry logic must survive.  ``transient_attempts=0``
  makes faults permanent (the quarantine path's food).
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.eval.base import EvalRequest, EvalResult, Evaluator, EvaluatorStats
from repro.eval.caching import request_cache_key
from repro.resilience.failures import EvalTimeoutError

#: Fault types the harness can inject, in cumulative-rate order.
FAULT_TYPES = ("error", "nan", "timeout", "crash")


class InjectedFault(RuntimeError):
    """A deliberately injected simulator exception."""

    failure_kind = "injected"


class InjectedCrash(OSError):
    """A deliberately injected worker death (classifies as worker_crash)."""

    failure_kind = "worker_crash"


class FaultInjectingEvaluator(Evaluator):
    """Wraps an evaluator and deterministically sabotages a design subset.

    Args:
        inner: The evaluator that serves non-poisoned requests.
        seed: Chaos seed; with the rates, fully determines which designs
            are poisoned and how.
        error_rate: Fraction of designs whose evaluation raises
            :class:`InjectedFault`.  Exceptions are raised *batch-wide*
            (the whole ``evaluate_requests`` call fails), exactly like a
            real solver crash — isolating the poison is the resilient
            wrapper's job, not the harness's.
        nan_rate: Fraction of designs whose metrics are replaced by NaN.
        timeout_rate: Fraction of designs that raise
            :class:`~repro.resilience.failures.EvalTimeoutError` (after an
            optional ``timeout_sleep_s`` stall).
        crash_rate: Fraction of designs that raise :class:`InjectedCrash`.
        transient_attempts: Number of attempts each poisoned design fails
            before recovering; 0 means faults are permanent.
        timeout_sleep_s: Real seconds a timeout fault stalls before
            raising (keep 0 in tests).
        predicate: Optional targeted override: ``predicate(request)``
            returns a fault type from :data:`FAULT_TYPES` (poisoned) or
            ``None`` (fall back to the seeded rates).  Lets tests poison
            one specific design instead of a random fraction.
    """

    def __init__(
        self,
        inner: Evaluator,
        seed: int = 0,
        error_rate: float = 0.0,
        nan_rate: float = 0.0,
        timeout_rate: float = 0.0,
        crash_rate: float = 0.0,
        transient_attempts: int = 0,
        timeout_sleep_s: float = 0.0,
        predicate: Optional[Callable[[EvalRequest], Optional[str]]] = None,
    ):
        total = error_rate + nan_rate + timeout_rate + crash_rate
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fault rates must sum to <= 1, got {total:.3f}"
            )
        for name, rate in (
            ("error_rate", error_rate),
            ("nan_rate", nan_rate),
            ("timeout_rate", timeout_rate),
            ("crash_rate", crash_rate),
        ):
            if rate < 0:
                raise ValueError(f"{name} must be >= 0, got {rate}")
        self.inner = inner
        self._circuit = inner._circuit
        self._circuits = inner._circuits
        self.seed = int(seed)
        self.error_rate = float(error_rate)
        self.nan_rate = float(nan_rate)
        self.timeout_rate = float(timeout_rate)
        self.crash_rate = float(crash_rate)
        self.transient_attempts = int(transient_attempts)
        self.timeout_sleep_s = float(timeout_sleep_s)
        self.predicate = predicate
        #: Faulted attempts spent per design key (transience accounting).
        self._attempts: Dict[object, int] = {}
        #: Injection counters by fault type.
        self.injected: Dict[str, int] = {name: 0 for name in FAULT_TYPES}
        # Guards attempt/injection accounting: faults fire inside whatever
        # thread runs the evaluation (retry watchers, coalescer flushes).
        self._chaos_lock = threading.Lock()

    @property
    def stats(self) -> EvaluatorStats:
        return self.inner.stats

    def fault_for(self, request: EvalRequest) -> Optional[str]:
        """The fault type this harness assigns to ``request`` (or ``None``).

        Pure in (seed, design): ignores attempt counters, so tests can ask
        which designs a seed poisons without mutating harness state.
        """
        if self.predicate is not None:
            fault = self.predicate(request)
            if fault is not None:
                if fault not in FAULT_TYPES:
                    # Misconfigured test predicate — a bug, not a failure.
                    raise ValueError(  # repro-lint: ignore[failure-taxonomy]
                        f"predicate returned unknown fault {fault!r} "
                        f"(expected one of {FAULT_TYPES})"
                    )
                return fault
        draw = self._draw(request)
        edge = 0.0
        for name, rate in (
            ("error", self.error_rate),
            ("nan", self.nan_rate),
            ("timeout", self.timeout_rate),
            ("crash", self.crash_rate),
        ):
            edge += rate
            if draw < edge:
                return name
        return None

    def _draw(self, request: EvalRequest) -> float:
        """Uniform [0, 1) draw, a pure function of (seed, design key)."""
        key = request_cache_key(request)
        digest = hashlib.sha256(
            f"{self.seed}|{key!r}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _active_fault(self, request: EvalRequest) -> Optional[str]:
        """The fault to fire now, honouring transience (``None`` = clean)."""
        fault = self.fault_for(request)
        if fault is None:
            return None
        if self.transient_attempts > 0:
            key = request_cache_key(request)
            with self._chaos_lock:
                if self._attempts.get(key, 0) >= self.transient_attempts:
                    return None
        return fault

    def _fire(self, request: EvalRequest, fault: str) -> None:
        """Record one faulted attempt and raise if the fault is a raiser."""
        key = request_cache_key(request)
        with self._chaos_lock:
            self._attempts[key] = self._attempts.get(key, 0) + 1
            self.injected[fault] += 1
        if fault == "error":
            raise InjectedFault(
                f"injected simulator fault for {request.circuit}/"
                f"{request.technology}"
            )
        if fault == "crash":
            raise InjectedCrash(
                f"injected worker crash for {request.circuit}/"
                f"{request.technology}"
            )
        if fault == "timeout":
            if self.timeout_sleep_s > 0:
                time.sleep(self.timeout_sleep_s)
            raise EvalTimeoutError(
                f"injected timeout for {request.circuit}/"
                f"{request.technology}"
            )

    def evaluate_requests(
        self, requests: Sequence[EvalRequest]
    ) -> List[EvalResult]:
        requests = list(requests)
        # Raising faults fail the whole batch (like a real solver crash):
        # the first poisoned request in batch order wins.
        for request in requests:
            fault = self._active_fault(request)
            if fault in ("error", "crash", "timeout"):
                self._fire(request, fault)
        results = self.inner.evaluate_requests(requests)
        for index, request in enumerate(requests):
            if self._active_fault(request) == "nan":
                self._fire(request, "nan")
                result = results[index]
                results[index] = EvalResult(
                    sizing=result.sizing,
                    metrics={name: float("nan") for name in result.metrics},
                    cached=False,
                )
        return results

    def peek(self, request: EvalRequest):
        # Never let a cached answer mask an active fault — chaos must bite
        # the dedup/peek layers too.
        if self._active_fault(request) is not None:
            return None
        return self.inner.peek(request)

    def close(self) -> None:
        self.inner.close()

    def describe(self) -> str:
        rates = (
            f"error={self.error_rate} nan={self.nan_rate} "
            f"timeout={self.timeout_rate} crash={self.crash_rate}"
        )
        return (
            f"FaultInjectingEvaluator(seed={self.seed}, {rates}, "
            f"inner={self.inner.describe()})"
        )
