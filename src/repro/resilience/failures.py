"""Structured failure taxonomy for the evaluation stack.

Every layer of the stack (vectorized backends, the service coalescer, the
campaign worker) used to express failure the same way: raise, and let the
whole batch / connection / worker die.  This module gives failures a shape
instead:

* :data:`FAILURE_KINDS` — the closed set of failure classes the stack
  distinguishes.  Retryability, wire encoding and quarantine policy all key
  off the kind, never off exception types.
* :class:`EvalFailure` — one request's terminal failure (after retries),
  carrying the kind, a human message and the attempt count.
* :data:`EvalOutcome` — ``EvalResult | EvalFailure``: what resilient
  evaluation returns per request instead of raising batch-wide.
* :func:`classify_exception` — maps an arbitrary exception from the
  simulator stack onto a failure kind.  Exceptions may self-classify by
  carrying a ``failure_kind`` attribute (the chaos harness does).
* :func:`is_nonconverged` — the NaN scan.  Circuit evaluation is *total*
  (non-converged designs return finite ``failure_metrics()`` penalties), so
  a NaN metric is always anomalous; ``±inf`` is left alone because a
  legitimate ``-inf`` dB from ``log10(0)`` is a valid measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Union

from repro.eval.base import EvalRequest, EvalResult

#: The closed set of failure classes.  ``nonconvergence`` is deterministic
#: (re-simulating the same design reproduces it) and therefore never
#: retried; every other kind is presumed transient.
FAILURE_KINDS = (
    "nonconvergence",
    "timeout",
    "simulator_error",
    "worker_crash",
    "injected",
)

#: Failure kinds a retry may plausibly fix.
RETRYABLE_KINDS = frozenset(FAILURE_KINDS) - {"nonconvergence"}


class EvalTimeoutError(RuntimeError):
    """An evaluation attempt exceeded its per-request deadline."""

    failure_kind = "timeout"


@dataclass(frozen=True)
class EvalFailure:
    """Terminal failure of one evaluation request (after bounded retries).

    Attributes:
        request: The request that failed.
        kind: One of :data:`FAILURE_KINDS`.
        message: Human-readable cause (the last exception's message).
        attempts: Evaluation attempts spent before giving up.
    """

    request: EvalRequest
    kind: str
    message: str
    attempts: int = 1

    def __post_init__(self):
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r} "
                f"(expected one of {FAILURE_KINDS})"
            )

    @property
    def retryable(self) -> bool:
        """Whether submitting the same request again may succeed."""
        return self.kind in RETRYABLE_KINDS

    def to_dict(self) -> Dict[str, object]:
        """Wire/log form (request identity, not the full sizing)."""
        return {
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "retryable": self.retryable,
            "circuit": self.request.circuit,
            "technology": self.request.technology,
        }


#: What resilient evaluation yields per request: a result or a failure.
EvalOutcome = Union[EvalResult, EvalFailure]


class EvalFailureError(RuntimeError):
    """Raised by strict entry points when a batch contains failures.

    Carries the first :class:`EvalFailure` so callers that still want
    raise-on-failure semantics (``Evaluator.evaluate_requests``) keep the
    taxonomy.
    """

    def __init__(self, failure: EvalFailure):
        super().__init__(
            f"evaluation failed ({failure.kind}, "
            f"{failure.attempts} attempt(s)): {failure.message}"
        )
        self.failure = failure
        # Self-classify so an EvalFailureError re-entering
        # classify_exception() keeps its kind (a nonconvergence must not
        # degrade to the retryable catch-all ``simulator_error``).
        self.failure_kind = failure.kind


def classify_exception(error: BaseException) -> str:
    """Map an exception from the evaluation stack onto a failure kind.

    Precedence: a ``failure_kind`` attribute on the exception wins (the
    chaos harness and :class:`EvalTimeoutError` self-classify), then the
    timeout family, then OS/worker-pool breakage, then the catch-all
    ``simulator_error``.
    """
    kind = getattr(error, "failure_kind", None)
    if kind in FAILURE_KINDS:
        return kind
    if isinstance(error, TimeoutError):
        return "timeout"
    try:
        from concurrent.futures import BrokenExecutor
        from concurrent.futures import TimeoutError as FuturesTimeout

        if isinstance(error, FuturesTimeout):
            return "timeout"
        if isinstance(error, BrokenExecutor):
            return "worker_crash"
    except ImportError:  # pragma: no cover - stdlib always has these
        pass
    if isinstance(error, OSError):
        return "worker_crash"
    return "simulator_error"


def is_nonconverged(metrics: Dict[str, float]) -> bool:
    """True when any metric is NaN (±inf is a legitimate measurement)."""
    return any(math.isnan(value) for value in metrics.values())
