"""Resilience layer: failure taxonomy, retries, chaos, quarantine.

The production failure semantics the rest of the stack builds on: per-
request :data:`EvalOutcome` resolution instead of batch-wide raising,
bounded retries with backoff, split-on-failure bisection, per-bucket
circuit breaking, poison-design quarantine, and a deterministic fault-
injection harness to prove all of it under chaos.
"""

from repro.resilience.chaos import (
    FAULT_TYPES,
    FaultInjectingEvaluator,
    InjectedCrash,
    InjectedFault,
)
from repro.resilience.failures import (
    FAILURE_KINDS,
    RETRYABLE_KINDS,
    EvalFailure,
    EvalFailureError,
    EvalOutcome,
    EvalTimeoutError,
    classify_exception,
    is_nonconverged,
)
from repro.resilience.policy import NO_RETRY, RetryPolicy
from repro.resilience.resilient import ResilienceStats, ResilientEvaluator

__all__ = [
    "FAILURE_KINDS",
    "FAULT_TYPES",
    "NO_RETRY",
    "RETRYABLE_KINDS",
    "EvalFailure",
    "EvalFailureError",
    "EvalOutcome",
    "EvalTimeoutError",
    "FaultInjectingEvaluator",
    "InjectedCrash",
    "InjectedFault",
    "ResilienceStats",
    "ResilientEvaluator",
    "RetryPolicy",
    "classify_exception",
    "is_nonconverged",
]
