"""The resilient evaluation wrapper: isolate, retry, degrade, quarantine.

:class:`ResilientEvaluator` turns any evaluator's all-or-nothing
``evaluate_requests`` into per-request :data:`~repro.resilience.failures.EvalOutcome`
resolution with production failure semantics:

* **Zero fast-path overhead** — a clean batch is exactly one inner call
  (identical to the unwrapped evaluator) plus a NaN scan; no threads, no
  copies, no extra bookkeeping on success.
* **Split-on-failure bisection** — when a batch raises, requests are
  regrouped by bucket and each bucket bisected: a single poisoned design
  degrades *its bucket* from vectorized to serial, the other buckets and
  the other halves keep their stacked solves.
* **Bounded retries with backoff + jitter** — single-request failures are
  retried per the :class:`~repro.resilience.policy.RetryPolicy`;
  deterministic failures (``nonconvergence``) are never retried.
* **Quarantine** — a request that exhausts its retries is remembered (by
  canonical design key, LRU-bounded) and fails fast on resubmission,
  so a poison design can never re-trigger bisection storms.
* **Per-bucket circuit breaker** — ``breaker_threshold`` consecutive
  failed *group* attempts trip a bucket to the per-request serial path for
  ``breaker_cooldown`` bucket-calls, then a half-open probe re-tries the
  grouped path.  Counts bucket-calls, not wall-clock, so behaviour is
  deterministic under test.
* **Per-attempt deadlines** — when the policy sets ``deadline_s``, each
  inner attempt runs under a watcher thread and is abandoned (classified
  ``timeout``) past the deadline.

Wrap *outside* any cache (``ResilientEvaluator(CachingEvaluator(...))``)
so failures are never cached, and outside the chaos harness so injected
faults exercise the real recovery machinery.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.eval.base import (
    EvalRequest,
    EvalResult,
    Evaluator,
    EvaluatorStats,
    ThreadSafeCounters,
)
from repro.eval.caching import request_cache_key
from repro.resilience.failures import (
    EvalFailure,
    EvalFailureError,
    EvalOutcome,
    EvalTimeoutError,
    classify_exception,
    is_nonconverged,
)
from repro.resilience.policy import RetryPolicy


@dataclass
class ResilienceStats(ThreadSafeCounters):
    """Counters of the wrapper's recovery activity (all zero on clean runs).

    Attributes:
        failures: Terminal :class:`EvalFailure` outcomes produced.
        retries: Extra attempts spent beyond each request's first.
        bisections: Failed group attempts that were split in half.
        serial_downgrades: Requests resolved on the per-request serial
            path (after bisection bottomed out or through an open breaker).
        breaker_trips: Times a bucket breaker opened.
        quarantined: Requests added to the quarantine.
        quarantine_hits: Requests failed fast because their design was
            already quarantined.
    """

    failures: int = 0
    retries: int = 0
    bisections: int = 0
    serial_downgrades: int = 0
    breaker_trips: int = 0
    quarantined: int = 0
    quarantine_hits: int = 0

    def to_dict(self) -> Dict[str, int]:
        with self.lock:
            return {
                "failures": self.failures,
                "retries": self.retries,
                "bisections": self.bisections,
                "serial_downgrades": self.serial_downgrades,
                "breaker_trips": self.breaker_trips,
                "quarantined": self.quarantined,
                "quarantine_hits": self.quarantine_hits,
            }


@dataclass
class _BucketBreaker:
    """Count-based circuit breaker for one (circuit, technology) bucket."""

    threshold: int
    cooldown: int
    consecutive_failures: int = 0
    cooldown_remaining: int = 0

    @property
    def open(self) -> bool:
        return self.cooldown_remaining > 0

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Record one failed group attempt; True when the breaker trips."""
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            self.cooldown_remaining = self.cooldown
            # Leave the count one short of the threshold: a failed
            # half-open probe after the cooldown re-trips immediately.
            self.consecutive_failures = self.threshold - 1
            return True
        return False

    def tick(self) -> None:
        """One bucket-call served while open (cooldown countdown)."""
        if self.cooldown_remaining > 0:
            self.cooldown_remaining -= 1


class ResilientEvaluator(Evaluator):
    """Per-request failure isolation around any :class:`Evaluator`.

    Args:
        inner: The evaluator doing the actual work (wrap caches inside,
            never outside, so failures are not cached).
        policy: Retry/backoff/deadline policy (see :class:`RetryPolicy`).
        breaker_threshold: Consecutive failed group attempts per bucket
            before the breaker opens.
        breaker_cooldown: Bucket-calls the breaker stays open (serial
            path) before a half-open grouped probe.
        quarantine_size: Max quarantined design keys kept (LRU).
        seed: Seed for backoff jitter (determinism under test).
        sleep: Injection point for backoff waits (tests pass a recorder).
    """

    def __init__(
        self,
        inner: Evaluator,
        policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 8,
        quarantine_size: int = 1024,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if quarantine_size < 1:
            raise ValueError(
                f"quarantine_size must be >= 1, got {quarantine_size}"
            )
        self.inner = inner
        self._circuit = inner._circuit
        self._circuits = inner._circuits
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = int(breaker_cooldown)
        self.quarantine_size = int(quarantine_size)
        self._sleep = sleep
        self._rng = random.Random(seed)
        self.rstats = ResilienceStats()
        self._quarantine: "OrderedDict[object, EvalFailure]" = OrderedDict()
        # Protects the quarantine LRU: evaluate paths run inside coalescer
        # flush threads while snapshots/clears arrive from other threads.
        self._quarantine_lock = threading.Lock()
        self._breakers: Dict[Tuple[str, str], _BucketBreaker] = {}

    # --- plumbing -----------------------------------------------------------------
    @property
    def stats(self) -> EvaluatorStats:
        return self.inner.stats

    def peek(self, request: EvalRequest):
        return self.inner.peek(request)

    def close(self) -> None:
        self.inner.close()

    def describe(self) -> str:
        return (
            f"ResilientEvaluator(attempts={self.policy.max_attempts}, "
            f"inner={self.inner.describe()})"
        )

    # --- quarantine ---------------------------------------------------------------
    @property
    def quarantine(self) -> List[EvalFailure]:
        """Snapshot of quarantined failures (oldest first)."""
        with self._quarantine_lock:
            return list(self._quarantine.values())

    def clear_quarantine(self) -> None:
        with self._quarantine_lock:
            self._quarantine.clear()

    def _quarantine_put(self, key: object, failure: EvalFailure) -> None:
        with self._quarantine_lock:
            self._quarantine[key] = failure
            self._quarantine.move_to_end(key)
            while len(self._quarantine) > self.quarantine_size:
                self._quarantine.popitem(last=False)
        with self.rstats.lock:
            self.rstats.quarantined += 1

    # --- breaker ------------------------------------------------------------------
    def _breaker(self, bucket: Tuple[str, str]) -> _BucketBreaker:
        breaker = self._breakers.get(bucket)
        if breaker is None:
            breaker = _BucketBreaker(
                self.breaker_threshold, self.breaker_cooldown
            )
            self._breakers[bucket] = breaker
        return breaker

    def breaker_open(self, bucket: Tuple[str, str]) -> bool:
        """Whether ``bucket`` is currently degraded to the serial path."""
        breaker = self._breakers.get(bucket)
        return breaker is not None and breaker.open

    # --- attempts -----------------------------------------------------------------
    def _attempt(self, requests: Sequence[EvalRequest]) -> List[EvalResult]:
        """One inner attempt, under the policy deadline when one is set."""
        deadline = self.policy.deadline_s
        if deadline is None:
            return self.inner.evaluate_requests(requests)
        box: Dict[str, object] = {}

        def target() -> None:
            try:
                box["result"] = self.inner.evaluate_requests(requests)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                box["error"] = error

        watcher = threading.Thread(target=target, daemon=True)
        watcher.start()
        watcher.join(deadline)
        if watcher.is_alive():
            # The attempt is abandoned, not cancelled: the thread finishes
            # (or hangs) on its own and its result is discarded.
            raise EvalTimeoutError(
                f"evaluation of {len(requests)} request(s) exceeded the "
                f"{deadline}s deadline"
            )
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["result"]  # type: ignore[return-value]

    # --- resolution ---------------------------------------------------------------
    def evaluate_outcomes(
        self, requests: Sequence[EvalRequest]
    ) -> List[EvalOutcome]:
        """Per-request outcomes for a mixed batch; never raises for a
        request-level failure (``outcomes[i]`` matches ``requests[i]``)."""
        requests = list(requests)
        outcomes: List[Optional[EvalOutcome]] = [None] * len(requests)

        live: List[int] = []
        for index, request in enumerate(requests):
            key = request_cache_key(request)
            with self._quarantine_lock:
                known = self._quarantine.get(key)
                if known is not None:
                    self._quarantine.move_to_end(key)
            if known is not None:
                with self.rstats.lock:
                    self.rstats.quarantine_hits += 1
                    self.rstats.failures += 1
                outcomes[index] = EvalFailure(
                    request=request,
                    kind=known.kind,
                    message=f"quarantined: {known.message}",
                    attempts=0,
                )
            else:
                live.append(index)

        grouped = [
            i for i in live if not self.breaker_open(requests[i].bucket)
        ]
        broken = [i for i in live if self.breaker_open(requests[i].bucket)]

        if grouped:
            sub = [requests[i] for i in grouped]
            try:
                results = self._attempt(sub)
            except Exception:
                self._resolve_failed_group(requests, outcomes, grouped)
            else:
                for bucket in {r.bucket for r in sub}:
                    self._breaker(bucket).record_success()
                for index, result in zip(grouped, results):
                    outcomes[index] = self._accept(requests[index], result, 1)

        if broken:
            for bucket in {requests[i].bucket for i in broken}:
                self._breaker(bucket).tick()
            for index in broken:
                with self.rstats.lock:
                    self.rstats.serial_downgrades += 1
                outcomes[index] = self._resolve_single(requests[index])

        return outcomes  # type: ignore[return-value]

    def evaluate_requests(
        self, requests: Sequence[EvalRequest]
    ) -> List[EvalResult]:
        """Strict adapter: resolve outcomes, raise on the first failure."""
        outcomes = self.evaluate_outcomes(requests)
        for outcome in outcomes:
            if isinstance(outcome, EvalFailure):
                raise EvalFailureError(outcome)
        return outcomes  # type: ignore[return-value]

    def _accept(
        self, request: EvalRequest, result: EvalResult, attempts: int
    ) -> EvalOutcome:
        """Turn an inner result into an outcome (NaN scan → nonconvergence)."""
        if is_nonconverged(result.metrics):
            failure = EvalFailure(
                request=request,
                kind="nonconvergence",
                message="simulation returned non-finite (NaN) metrics",
                attempts=attempts,
            )
            with self.rstats.lock:
                self.rstats.failures += 1
            self._quarantine_put(request_cache_key(request), failure)
            return failure
        return result

    def _resolve_failed_group(
        self,
        requests: Sequence[EvalRequest],
        outcomes: List[Optional[EvalOutcome]],
        indices: List[int],
    ) -> None:
        """A mixed group attempt raised: isolate per bucket, then bisect."""
        by_bucket: Dict[Tuple[str, str], List[int]] = {}
        for index in indices:
            by_bucket.setdefault(requests[index].bucket, []).append(index)
        for bucket, bucket_indices in by_bucket.items():
            # One breaker count per bucket per top-level failure — the
            # log2(n) bisection attempts below are part of the same event.
            breaker = self._breaker(bucket)
            if breaker.record_failure():
                with self.rstats.lock:
                    self.rstats.breaker_trips += 1
            self._resolve_bucket(requests, outcomes, bucket_indices)

    def _resolve_bucket(
        self,
        requests: Sequence[EvalRequest],
        outcomes: List[Optional[EvalOutcome]],
        indices: List[int],
    ) -> None:
        """Bisect one bucket's requests until the poison is isolated."""
        if len(indices) == 1:
            with self.rstats.lock:
                self.rstats.serial_downgrades += 1
            outcomes[indices[0]] = self._resolve_single(requests[indices[0]])
            return
        sub = [requests[i] for i in indices]
        try:
            results = self._attempt(sub)
        except Exception:
            with self.rstats.lock:
                self.rstats.bisections += 1
            middle = len(indices) // 2
            self._resolve_bucket(requests, outcomes, indices[:middle])
            self._resolve_bucket(requests, outcomes, indices[middle:])
            return
        for index, result in zip(indices, results):
            outcomes[index] = self._accept(requests[index], result, 1)

    def _resolve_single(self, request: EvalRequest) -> EvalOutcome:
        """One request on the serial path: bounded retries with backoff."""
        attempts = 0
        failure: Optional[EvalFailure] = None
        while attempts < self.policy.max_attempts:
            attempts += 1
            if attempts > 1:
                with self.rstats.lock:
                    self.rstats.retries += 1
            try:
                result = self._attempt([request])[0]
            except Exception as error:  # noqa: BLE001 - classified below
                kind = classify_exception(error)
                if (
                    self.policy.retryable(kind)
                    and attempts < self.policy.max_attempts
                ):
                    self._sleep(self.policy.backoff_delay(attempts, self._rng))
                    continue
                failure = EvalFailure(
                    request=request,
                    kind=kind,
                    message=str(error),
                    attempts=attempts,
                )
                break
            outcome = self._accept(request, result, attempts)
            if isinstance(outcome, EvalFailure):
                return outcome  # _accept already counted and quarantined
            return outcome
        assert failure is not None
        with self.rstats.lock:
            self.rstats.failures += 1
        self._quarantine_put(request_cache_key(request), failure)
        return failure
