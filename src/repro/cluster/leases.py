"""Wall-clock leases over a shared run store: the cluster's work queue.

A lease is an exclusive, *expiring* claim on one campaign cell, keyed by the
cell's canonical :meth:`~repro.store.RunKey.key_id`.  Workers claim a cell
before executing it, renew the lease from a heartbeat thread while the
method runs, and release it when the cell's record lands in the store.  A
worker that dies stops renewing; once the lease's wall-clock expiry passes,
any other worker may claim the cell over the stale lease (work-stealing) and
resume it from the latest driver checkpoint.

One :class:`LeaseStore` backend exists per run-store backend, so *any*
shared store directory doubles as a work queue with no extra service:

* :class:`MemoryLeaseStore` — dict + mutex, attached to the
  :class:`~repro.store.MemoryStore` instance (in-process workers only).
* :class:`JsonlLeaseStore` — one atomic ``leases/<key_id>.lease`` JSON file
  per claim next to ``runs.jsonl``; mutations serialize on an ``flock`` over
  ``leases/.lock`` so concurrent claimants (processes or threads) race
  safely even on a plain shared directory.
* :class:`SqliteLeaseStore` — a ``leases`` table inside the store's WAL
  ``runs.sqlite``; claims are a single conditional upsert, so exclusivity is
  the database's atomicity.

All three share one contract, enforced by the conformance suite in
``tests/test_cluster.py``: at most one live owner per key, claims succeed
over expired leases and are re-entrant for the current owner, ``renew``
extends only the owner's lease, and ``release`` is idempotent.
"""

from __future__ import annotations

import abc
import json
import os
import socket
import sqlite3
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

try:  # POSIX only; the jsonl backend degrades to lock-free on other systems.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.store.base import RunKey
from repro.store.jsonl import JsonlStore
from repro.store.memory import MemoryStore
from repro.store.sqlite import BUSY_TIMEOUT_MS, DB_NAME, LEASE_SCHEMA, SqliteStore

#: Default lease time-to-live in seconds.  A worker missing this many
#: seconds of heartbeats is presumed dead and its cell becomes stealable.
DEFAULT_TTL = 30.0

#: Subdirectory of a jsonl store holding one lease file per claimed cell.
LEASE_DIR = "leases"


class LeaseLostError(RuntimeError):
    """Raised inside a worker when another worker has stolen its lease.

    The catching worker must abandon the run *without* writing a checkpoint
    or releasing the lease — both now belong to the thief.
    """


@dataclass(frozen=True)
class Lease:
    """One exclusive, expiring claim on a campaign cell.

    Attributes:
        key_id: :meth:`RunKey.key_id` of the claimed cell.
        owner: Claimant identity (see :func:`make_owner_id`).
        acquired_at: Wall-clock epoch seconds of the (last) acquisition.
        expires_at: Epoch seconds after which the lease is stealable.
        pid: Process id of the claimant (dead-pid vacuuming).
        host: Hostname of the claimant (pids only compare on one host).
    """

    key_id: str
    owner: str
    acquired_at: float
    expires_at: float
    pid: int
    host: str

    def expired(self, now: float) -> bool:
        """Whether the lease is stale (stealable) at wall-clock ``now``."""
        return now >= self.expires_at

    def age(self, now: float) -> float:
        """Seconds since the lease was (re-)acquired."""
        return max(0.0, now - self.acquired_at)

    def to_dict(self) -> Dict:
        return {
            "key_id": self.key_id,
            "owner": self.owner,
            "acquired_at": float(self.acquired_at),
            "expires_at": float(self.expires_at),
            "pid": int(self.pid),
            "host": self.host,
        }

    @classmethod
    def from_dict(cls, data) -> "Lease":
        return cls(
            key_id=data["key_id"],
            owner=data["owner"],
            acquired_at=float(data["acquired_at"]),
            expires_at=float(data["expires_at"]),
            pid=int(data["pid"]),
            host=data["host"],
        )


def make_owner_id(name: Optional[str] = None) -> str:
    """Globally unique claimant identity: ``host:pid:name``.

    The host and pid make dead-owner diagnosis possible from any machine
    sharing the store; the name (a worker label, or a random suffix) keeps
    two workers in one process distinct.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{name or uuid.uuid4().hex[:8]}"


class LeaseStore(abc.ABC):
    """Claim/renew/release coordination over one run store's cells.

    All timestamps come from the injectable ``clock`` (wall-clock epoch
    seconds), so expiry semantics are testable without sleeping.
    """

    def __init__(self, clock: Callable[[], float] = time.time):
        self._clock = clock

    def now(self) -> float:
        """The store's current wall-clock time."""
        return self._clock()

    @abc.abstractmethod
    def claim(self, key: RunKey, owner: str, ttl: float) -> Optional[Lease]:
        """Atomically claim ``key`` for ``owner`` for ``ttl`` seconds.

        Succeeds when the cell is unclaimed, already owned by ``owner``
        (re-entrant), or its current lease has expired (work-stealing).
        Returns the new lease, or ``None`` when another owner holds a live
        lease (or won a concurrent race).
        """

    @abc.abstractmethod
    def renew(self, key: RunKey, owner: str, ttl: float) -> bool:
        """Extend ``owner``'s lease by ``ttl`` seconds from now.

        Returns ``False`` when the lease is gone or owned by someone else —
        the heartbeat's signal that the run was stolen.
        """

    @abc.abstractmethod
    def release(self, key: RunKey, owner: str) -> bool:
        """Drop ``owner``'s lease on ``key``.

        Idempotent: releasing an already-released key returns ``True``;
        only a lease currently held by a *different* owner returns ``False``
        (and is left untouched).
        """

    @abc.abstractmethod
    def get(self, key: RunKey) -> Optional[Lease]:
        """The current lease on ``key`` (live or expired), or ``None``."""

    @abc.abstractmethod
    def leases(self) -> List[Lease]:
        """Every lease currently on file (live and expired)."""

    @abc.abstractmethod
    def reclaim_expired(self) -> List[Lease]:
        """Delete every expired lease, returning what was reclaimed."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every lease (fresh-queue reset; completed records persist)."""

    def close(self) -> None:
        """Release any resources; idempotent."""

    def __enter__(self) -> "LeaseStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _may_claim(existing: Optional[Lease], owner: str, now: float) -> bool:
    return existing is None or existing.owner == owner or existing.expired(now)


class MemoryLeaseStore(LeaseStore):
    """Dict + mutex lease store for in-process (threaded) workers."""

    def __init__(self, clock: Callable[[], float] = time.time):
        super().__init__(clock)
        self._rows: Dict[str, Lease] = {}
        self._mutex = threading.Lock()

    def _build(self, key_id: str, owner: str, ttl: float, now: float) -> Lease:
        return Lease(
            key_id=key_id,
            owner=owner,
            acquired_at=now,
            expires_at=now + float(ttl),
            pid=os.getpid(),
            host=socket.gethostname(),
        )

    def claim(self, key: RunKey, owner: str, ttl: float) -> Optional[Lease]:
        key_id = key.key_id()
        with self._mutex:
            now = self._clock()
            if not _may_claim(self._rows.get(key_id), owner, now):
                return None
            lease = self._build(key_id, owner, ttl, now)
            self._rows[key_id] = lease
            return lease

    def renew(self, key: RunKey, owner: str, ttl: float) -> bool:
        key_id = key.key_id()
        with self._mutex:
            existing = self._rows.get(key_id)
            if existing is None or existing.owner != owner:
                return False
            now = self._clock()
            self._rows[key_id] = Lease(
                key_id=key_id,
                owner=owner,
                acquired_at=existing.acquired_at,
                expires_at=now + float(ttl),
                pid=existing.pid,
                host=existing.host,
            )
            return True

    def release(self, key: RunKey, owner: str) -> bool:
        key_id = key.key_id()
        with self._mutex:
            existing = self._rows.get(key_id)
            if existing is None:
                return True
            if existing.owner != owner:
                return False
            del self._rows[key_id]
            return True

    def get(self, key: RunKey) -> Optional[Lease]:
        return self._rows.get(key.key_id())

    def leases(self) -> List[Lease]:
        return list(self._rows.values())

    def reclaim_expired(self) -> List[Lease]:
        with self._mutex:
            now = self._clock()
            expired = [l for l in self._rows.values() if l.expired(now)]
            for lease in expired:
                del self._rows[lease.key_id]
            return expired

    def clear(self) -> None:
        with self._mutex:
            self._rows.clear()


class JsonlLeaseStore(LeaseStore):
    """One atomic lease file per claim, serialized on a directory flock.

    Every mutation (claim/renew/release/reclaim) runs under an exclusive
    ``flock`` on ``leases/.lock``, making read-modify-write atomic across
    processes sharing the directory.  Reads go lock-free: lease files are
    written via temp-file + ``os.replace``, so a reader always sees either
    the old or the new lease, never a torn one.
    """

    def __init__(self, directory, clock: Callable[[], float] = time.time):
        super().__init__(clock)
        self.directory = str(directory)
        self.lease_dir = os.path.join(self.directory, LEASE_DIR)
        os.makedirs(self.lease_dir, exist_ok=True)
        self._lock_path = os.path.join(self.lease_dir, ".lock")

    @contextmanager
    def _locked(self):
        fd = os.open(self._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the descriptor releases the flock

    def _path(self, key_id: str) -> str:
        return os.path.join(self.lease_dir, key_id + ".lease")

    def _read(self, key_id: str) -> Optional[Lease]:
        try:
            with open(self._path(key_id), "r", encoding="utf-8") as handle:
                return Lease.from_dict(json.load(handle))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, ValueError):
            # Unreadable lease (e.g. interrupted manual edit): treat as
            # absent — the worst case is an extra claim race, which the
            # flock still serializes.
            return None

    def _write(self, lease: Lease) -> None:
        path = self._path(lease.key_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(lease.to_dict(), handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def claim(self, key: RunKey, owner: str, ttl: float) -> Optional[Lease]:
        key_id = key.key_id()
        with self._locked():
            now = self._clock()
            if not _may_claim(self._read(key_id), owner, now):
                return None
            lease = Lease(
                key_id=key_id,
                owner=owner,
                acquired_at=now,
                expires_at=now + float(ttl),
                pid=os.getpid(),
                host=socket.gethostname(),
            )
            self._write(lease)
            return lease

    def renew(self, key: RunKey, owner: str, ttl: float) -> bool:
        key_id = key.key_id()
        with self._locked():
            existing = self._read(key_id)
            if existing is None or existing.owner != owner:
                return False
            self._write(
                Lease(
                    key_id=key_id,
                    owner=owner,
                    acquired_at=existing.acquired_at,
                    expires_at=self._clock() + float(ttl),
                    pid=existing.pid,
                    host=existing.host,
                )
            )
            return True

    def release(self, key: RunKey, owner: str) -> bool:
        key_id = key.key_id()
        with self._locked():
            existing = self._read(key_id)
            if existing is None:
                return True
            if existing.owner != owner:
                return False
            try:
                os.remove(self._path(key_id))
            except FileNotFoundError:
                pass
            return True

    def get(self, key: RunKey) -> Optional[Lease]:
        return self._read(key.key_id())

    def _key_ids(self) -> List[str]:
        try:
            names = os.listdir(self.lease_dir)
        except FileNotFoundError:
            return []
        return [name[: -len(".lease")] for name in names if name.endswith(".lease")]

    def leases(self) -> List[Lease]:
        rows = (self._read(key_id) for key_id in self._key_ids())
        return [lease for lease in rows if lease is not None]

    def reclaim_expired(self) -> List[Lease]:
        with self._locked():
            now = self._clock()
            reclaimed = []
            for key_id in self._key_ids():
                lease = self._read(key_id)
                if lease is not None and lease.expired(now):
                    try:
                        os.remove(self._path(key_id))
                    except FileNotFoundError:
                        continue
                    reclaimed.append(lease)
            return reclaimed

    def clear(self) -> None:
        with self._locked():
            for key_id in self._key_ids():
                try:
                    os.remove(self._path(key_id))
                except FileNotFoundError:
                    pass


class SqliteLeaseStore(LeaseStore):
    """Lease table inside the run store's WAL ``runs.sqlite``.

    A claim is one conditional upsert — the insert wins outright, the
    conflict branch only fires when the existing row is expired or already
    ours — so exclusivity under concurrent claimants is the database's own
    atomicity, across threads, processes and machines sharing the file.
    The single connection is shared between the worker's main loop and its
    heartbeat thread, hence ``check_same_thread=False`` plus a mutex.
    """

    def __init__(self, directory, clock: Callable[[], float] = time.time):
        super().__init__(clock)
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, DB_NAME)
        self._conn = sqlite3.connect(
            self.path, timeout=BUSY_TIMEOUT_MS / 1000.0, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        self._conn.executescript(LEASE_SCHEMA)
        self._conn.commit()
        self._mutex = threading.Lock()
        self._closed = False

    def claim(self, key: RunKey, owner: str, ttl: float) -> Optional[Lease]:
        with self._mutex:
            now = self._clock()
            lease = Lease(
                key_id=key.key_id(),
                owner=owner,
                acquired_at=now,
                expires_at=now + float(ttl),
                pid=os.getpid(),
                host=socket.gethostname(),
            )
            cursor = self._conn.execute(
                "INSERT INTO leases (key_id, owner, acquired_at, expires_at, pid, host) "
                "VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(key_id) DO UPDATE SET "
                "owner=excluded.owner, acquired_at=excluded.acquired_at, "
                "expires_at=excluded.expires_at, pid=excluded.pid, host=excluded.host "
                "WHERE leases.expires_at <= excluded.acquired_at "
                "OR leases.owner = excluded.owner",
                (
                    lease.key_id,
                    lease.owner,
                    lease.acquired_at,
                    lease.expires_at,
                    lease.pid,
                    lease.host,
                ),
            )
            self._conn.commit()
            return lease if cursor.rowcount else None

    def renew(self, key: RunKey, owner: str, ttl: float) -> bool:
        with self._mutex:
            cursor = self._conn.execute(
                "UPDATE leases SET expires_at = ? WHERE key_id = ? AND owner = ?",
                (self._clock() + float(ttl), key.key_id(), owner),
            )
            self._conn.commit()
            return bool(cursor.rowcount)

    def release(self, key: RunKey, owner: str) -> bool:
        with self._mutex:
            cursor = self._conn.execute(
                "DELETE FROM leases WHERE key_id = ? AND owner = ?",
                (key.key_id(), owner),
            )
            self._conn.commit()
            if cursor.rowcount:
                return True
            row = self._conn.execute(
                "SELECT 1 FROM leases WHERE key_id = ?", (key.key_id(),)
            ).fetchone()
            return row is None

    _COLUMNS = "key_id, owner, acquired_at, expires_at, pid, host"

    def _row_lease(self, row) -> Lease:
        return Lease(
            key_id=row[0],
            owner=row[1],
            acquired_at=float(row[2]),
            expires_at=float(row[3]),
            pid=int(row[4]),
            host=row[5],
        )

    def get(self, key: RunKey) -> Optional[Lease]:
        with self._mutex:
            row = self._conn.execute(
                f"SELECT {self._COLUMNS} FROM leases WHERE key_id = ?",
                (key.key_id(),),
            ).fetchone()
        return self._row_lease(row) if row is not None else None

    def leases(self) -> List[Lease]:
        with self._mutex:
            rows = self._conn.execute(
                f"SELECT {self._COLUMNS} FROM leases"
            ).fetchall()
        return [self._row_lease(row) for row in rows]

    def reclaim_expired(self) -> List[Lease]:
        with self._mutex:
            now = self._clock()
            rows = self._conn.execute(
                f"SELECT {self._COLUMNS} FROM leases WHERE expires_at <= ?", (now,)
            ).fetchall()
            self._conn.execute("DELETE FROM leases WHERE expires_at <= ?", (now,))
            self._conn.commit()
        return [self._row_lease(row) for row in rows]

    def clear(self) -> None:
        with self._mutex:
            self._conn.execute("DELETE FROM leases")
            self._conn.commit()

    def close(self) -> None:
        if not self._closed:
            self._conn.close()
            self._closed = True


def lease_store_for(store, clock: Callable[[], float] = time.time) -> LeaseStore:
    """The lease backend matching a run store's own backend.

    Memory stores get a :class:`MemoryLeaseStore` cached *on the store
    instance* (so every in-process worker sharing the store shares the
    queue); directory-backed stores get a lease store over the same
    directory/database, visible to every process holding the directory.
    """
    if isinstance(store, MemoryStore):
        cached = getattr(store, "_cluster_lease_store", None)
        if cached is None:
            cached = MemoryLeaseStore(clock)
            store._cluster_lease_store = cached
        return cached
    if isinstance(store, JsonlStore):
        return JsonlLeaseStore(store.directory, clock)
    if isinstance(store, SqliteStore):
        return SqliteLeaseStore(store.directory, clock)
    raise TypeError(
        f"no lease backend for {type(store).__name__}; expected a "
        "MemoryStore, JsonlStore or SqliteStore"
    )
