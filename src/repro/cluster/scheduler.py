"""Cell scheduling over a shared store: claims, steals, and status.

The scheduler is the read-modify-claim half of a worker: scan the campaign
grid in sweep order, skip cells whose record is already in the run store,
claim the first cell nobody holds — and, when everything left is leased,
steal the first cell whose lease has *expired* (its worker stopped
heartbeating: presumed dead).  A stolen cell resumes from the straggler's
latest driver checkpoint, so the simulations it already paid for are kept.

The same scan, minus the claiming, powers ``ls --status``
(:func:`cell_states`): every cell is exactly one of ``done``, ``leased``
(live), ``expired`` (stealable), ``pending`` or ``quarantined`` (its
execution terminally failed after bounded retries — never handed out
again until the quarantine is lifted).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cluster.leases import Lease, LeaseStore
from repro.store.base import RunKey
from repro.store.campaign import Campaign, RunRequest

#: The mutually exclusive states of a campaign cell.
CELL_STATES = ("done", "leased", "expired", "pending", "quarantined")


@dataclass
class Assignment:
    """One claimed cell handed to a worker for execution.

    Attributes:
        request: The grid cell to execute.
        key: Its canonical store key.
        lease: The lease the worker now holds (renew it while running).
        stolen: The claim went over another owner's expired lease.
        resumed: A driver checkpoint existed at claim time — execution will
            continue mid-method instead of starting from step zero.
    """

    request: RunRequest
    key: RunKey
    lease: Lease
    stolen: bool = False
    resumed: bool = False


class WorkScheduler:
    """Claims pending campaign cells (and steals expired ones) for one owner."""

    def __init__(
        self,
        campaign: Campaign,
        lease_store: LeaseStore,
        owner: str,
        ttl: float,
        clock: Callable[[], float] = time.time,
    ):
        self.campaign = campaign
        self.lease_store = lease_store
        self.owner = owner
        self.ttl = float(ttl)
        self._clock = clock

    def _resumed(self, key: RunKey) -> bool:
        return self.campaign.store.get_checkpoint(key) is not None

    def next_assignment(self) -> Optional[Assignment]:
        """Claim the next executable cell, or ``None`` if nothing is claimable.

        Unclaimed cells win over steals: stealing re-simulates whatever the
        straggler computed after its last checkpoint, so it is a last
        resort.  ``None`` means either the sweep is finished
        (:meth:`outstanding` == 0) or every remaining cell is under a live
        lease — the caller should poll again after a wait.
        """
        self.campaign.store.refresh()
        stealable: List[RunRequest] = []
        now = self._clock()
        for request in self.campaign.requests():
            key = self.campaign.key_for(request)
            if self.campaign.store.get(key) is not None:
                continue
            if self.campaign.store.get_quarantine(key) is not None:
                # Poisoned cell: bounded retries were already spent on it;
                # handing it out again would livelock the sweep.
                continue
            lease = self.lease_store.get(key)
            if lease is None or lease.owner == self.owner:
                claimed = self.lease_store.claim(key, self.owner, self.ttl)
                if claimed is not None:
                    return Assignment(
                        request=request,
                        key=key,
                        lease=claimed,
                        stolen=False,
                        resumed=self._resumed(key),
                    )
                # Lost the race to a concurrent claimant; treat as leased.
                continue
            if lease.expired(now):
                stealable.append(request)
        for request in stealable:
            key = self.campaign.key_for(request)
            claimed = self.lease_store.claim(key, self.owner, self.ttl)
            if claimed is not None:
                return Assignment(
                    request=request,
                    key=key,
                    lease=claimed,
                    stolen=True,
                    resumed=self._resumed(key),
                )
        return None

    def outstanding(self) -> int:
        """Cells whose final record is not in the store yet."""
        self.campaign.store.refresh()
        return len(self.campaign.pending())

    def reclaim_expired(self) -> List[Lease]:
        """Drop every expired lease so pending scans see those cells free."""
        return self.lease_store.reclaim_expired()


@dataclass
class CellState:
    """Status of one campaign cell, for ``ls --status``."""

    request: RunRequest
    key: RunKey
    state: str  # one of CELL_STATES
    lease: Optional[Lease] = None

    def describe(self, now: Optional[float] = None) -> str:
        """Human-oriented one-line form."""
        request = self.request
        text = (
            f"[{self.state}] {request.method} {request.circuit} "
            f"{request.technology} seed={request.seed} steps={request.steps}"
        )
        if self.lease is not None:
            text += f"  by {self.lease.owner}"
            if now is not None:
                text += f" age={self.lease.age(now):.1f}s"
        return text


def cell_states(
    campaign: Campaign,
    lease_store: LeaseStore,
    clock: Callable[[], float] = time.time,
) -> List[CellState]:
    """Per-cell state of a (possibly running) sweep, in sweep order."""
    campaign.store.refresh()
    now = clock()
    states = []
    for request in campaign.requests():
        key = campaign.key_for(request)
        if campaign.store.get(key) is not None:
            states.append(CellState(request=request, key=key, state="done"))
            continue
        if campaign.store.get_quarantine(key) is not None:
            states.append(
                CellState(request=request, key=key, state="quarantined")
            )
            continue
        lease = lease_store.get(key)
        if lease is None:
            states.append(CellState(request=request, key=key, state="pending"))
        elif lease.expired(now):
            states.append(
                CellState(request=request, key=key, state="expired", lease=lease)
            )
        else:
            states.append(
                CellState(request=request, key=key, state="leased", lease=lease)
            )
    return states
