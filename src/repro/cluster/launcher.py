"""Spawn N local campaign workers as subprocesses over one shared store.

The launcher is deliberately thin: each worker is just
``python -m repro.experiments worker --store-dir ... --spec ...`` — the
exact command any *other* machine mounting the same store directory would
run to join the sweep.  All coordination happens through the store's lease
backend; the launcher only forks, waits, and summarizes.

Run-key-affecting configuration travels to the children explicitly: the
grid as one ``--spec`` JSON argument, the RL warm-up fraction and the
evaluator stack as ``REPRO_*`` environment variables.  Anything less and a
child would compute different canonical keys than the parent — and the
sweep would silently duplicate every cell.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.leases import DEFAULT_TTL
from repro.store.campaign import CampaignSpec


@dataclass
class ClusterReport:
    """Outcome of one :meth:`ClusterLauncher.run`.

    Attributes:
        workers: Number of worker processes spawned.
        exit_codes: Their exit codes, in spawn order.
        total: Cells in the grid.
        completed: Cells whose final record is in the store afterwards.
        duration_s: Wall-clock seconds from spawn to last exit.
    """

    workers: int
    exit_codes: List[int] = field(default_factory=list)
    total: int = 0
    completed: int = 0
    duration_s: float = 0.0

    def ok(self) -> bool:
        """All workers exited cleanly and every cell completed."""
        return all(code == 0 for code in self.exit_codes) and (
            self.completed >= self.total
        )

    def summary(self) -> str:
        state = "complete" if self.completed >= self.total else "incomplete"
        return (
            f"cluster {state}: workers={self.workers} "
            f"exit_codes={self.exit_codes} completed={self.completed}/{self.total} "
            f"duration={self.duration_s:.1f}s"
        )


class ClusterLauncher:
    """Runs one campaign grid with N local worker subprocesses.

    Args:
        spec: The grid to execute.
        store_dir: Shared store directory all workers read/write.
        store_backend: ``"jsonl"`` or ``"sqlite"``.
        workers: Number of worker processes.
        settings: Experiment settings; the run-key-relevant parts
            (warm-up fraction, evaluator stack) are exported to the
            children's environment.
        evaluator_config: Evaluator stack override (else from settings).
        ttl: Lease time-to-live each worker uses.
        checkpoint_every: Driver checkpoint period (steps) in each worker.
        poll_interval: Worker sleep when all remaining cells are leased.
        worker_prefix: Worker ids are ``{prefix}{index}``.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store_dir: str,
        store_backend: str = "jsonl",
        workers: int = 2,
        settings=None,
        evaluator_config=None,
        ttl: float = DEFAULT_TTL,
        checkpoint_every: int = 1,
        poll_interval: float = 0.5,
        worker_prefix: str = "worker",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if store_backend not in ("jsonl", "sqlite"):
            raise ValueError(
                "a distributed sweep needs a directory-backed store "
                f"(jsonl or sqlite), got {store_backend!r}"
            )
        self.spec = spec
        self.store_dir = str(store_dir)
        self.store_backend = store_backend
        self.workers = int(workers)
        self.settings = settings
        self.evaluator_config = evaluator_config
        self.ttl = float(ttl)
        self.checkpoint_every = int(checkpoint_every)
        self.poll_interval = float(poll_interval)
        self.worker_prefix = worker_prefix
        self.processes: List[subprocess.Popen] = []

    def worker_command(self, index: int) -> List[str]:
        """The standalone CLI invocation of worker ``index``.

        Identical to what an operator would type on another machine to join
        this sweep (with their own ``--worker-id``).
        """
        return [
            sys.executable,
            "-m",
            "repro.experiments",
            "worker",
            "--store-dir",
            self.store_dir,
            "--store-backend",
            self.store_backend,
            "--spec",
            json.dumps(self.spec.to_dict(), sort_keys=True),
            "--worker-id",
            f"{self.worker_prefix}{index}",
            "--ttl",
            str(self.ttl),
            "--poll",
            str(self.poll_interval),
            "--checkpoint-every",
            str(self.checkpoint_every),
        ]

    def _worker_env(self) -> dict:
        env = dict(os.environ)
        # The children must import this very repro tree, launcher-from-source
        # included (PYTHONPATH may not reach the subprocess otherwise).
        import repro

        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        # Everything that flows into run keys must match the parent exactly.
        if self.settings is not None:
            env["REPRO_WARMUP_FRACTION"] = str(self.settings.warmup_fraction)
        evaluator = self.evaluator_config
        if evaluator is None and self.settings is not None:
            evaluator = self.settings.evaluator_config()
        if evaluator is not None:
            env["REPRO_EVAL_BACKEND"] = evaluator.backend
            env["REPRO_EVAL_WORKERS"] = str(evaluator.max_workers or 0)
            env["REPRO_EVAL_CACHE"] = str(evaluator.cache_size)
        return env

    def spawn(self) -> List[subprocess.Popen]:
        """Start all worker processes (stdout/stderr inherited)."""
        env = self._worker_env()
        self.processes = [
            subprocess.Popen(self.worker_command(index), env=env)
            for index in range(self.workers)
        ]
        return self.processes

    def run(self, timeout: Optional[float] = None) -> ClusterReport:
        """Spawn the workers, wait for them, and report completion."""
        from repro.store import open_run_store
        from repro.store.campaign import Campaign

        started = time.perf_counter()
        if not self.processes:
            self.spawn()
        deadline = None if timeout is None else started + timeout
        try:
            for process in self.processes:
                remaining = None if deadline is None else max(
                    0.0, deadline - time.perf_counter()
                )
                process.wait(timeout=remaining)
        except (KeyboardInterrupt, subprocess.TimeoutExpired):
            self.terminate()
            raise
        report = ClusterReport(
            workers=self.workers,
            exit_codes=[process.returncode for process in self.processes],
            duration_s=time.perf_counter() - started,
        )
        with open_run_store(self.store_backend, self.store_dir) as store:
            campaign = Campaign(
                self.spec,
                store,
                settings=self.settings,
                evaluator_config=self.evaluator_config,
            )
            status = campaign.status()
        report.total = status["total"]
        report.completed = status["completed"]
        return report

    def terminate(self, grace_s: float = 10.0) -> None:
        """SIGTERM every worker (checkpoint-and-release), then SIGKILL."""
        for process in self.processes:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        deadline = time.perf_counter() + grace_s
        for process in self.processes:
            if process.poll() is None:
                remaining = max(0.0, deadline - time.perf_counter())
                try:
                    process.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
