"""Distributed campaign execution over a shared run store.

``repro.cluster`` turns any shared store directory (or in-process
:class:`~repro.store.MemoryStore`) into a work queue for sweep cells:
workers claim cells under expiring, heartbeat-renewed leases
(:mod:`~repro.cluster.leases`), execute them through the checkpointable
driver (:mod:`~repro.cluster.worker`), and steal cells from dead workers
mid-method (:mod:`~repro.cluster.scheduler`) with bit-identical resume.
:class:`~repro.cluster.launcher.ClusterLauncher` spawns N local worker
processes — the same CLI command extra machines run to join a sweep.
"""

from repro.cluster.leases import (
    DEFAULT_TTL,
    JsonlLeaseStore,
    Lease,
    LeaseLostError,
    LeaseStore,
    MemoryLeaseStore,
    SqliteLeaseStore,
    lease_store_for,
    make_owner_id,
)
from repro.cluster.launcher import ClusterLauncher, ClusterReport
from repro.cluster.scheduler import (
    Assignment,
    CELL_STATES,
    CellState,
    WorkScheduler,
    cell_states,
)
from repro.cluster.worker import CampaignWorker, LeaseHeartbeat, WorkerReport

__all__ = [
    "Assignment",
    "CELL_STATES",
    "CampaignWorker",
    "CellState",
    "ClusterLauncher",
    "ClusterReport",
    "DEFAULT_TTL",
    "JsonlLeaseStore",
    "Lease",
    "LeaseHeartbeat",
    "LeaseLostError",
    "LeaseStore",
    "MemoryLeaseStore",
    "SqliteLeaseStore",
    "WorkScheduler",
    "WorkerReport",
    "cell_states",
    "lease_store_for",
    "make_owner_id",
]
