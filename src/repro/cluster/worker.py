"""The campaign worker loop: claim, execute, heartbeat, release.

A :class:`CampaignWorker` turns one process (or thread) into a sweep
executor over a shared store: it repeatedly asks the
:class:`~repro.cluster.scheduler.WorkScheduler` for a claimable cell, runs
it through :func:`~repro.experiments.runner.run_method` with periodic
driver checkpoints, and keeps its lease alive from a background
:class:`LeaseHeartbeat` thread while the method runs.

Shutdown paths, in decreasing order of grace:

* **Sweep drained** — no pending cells anywhere: the loop exits.
* **SIGTERM / ``request_stop()``** — the driver's ``pause_check`` sees the
  stop flag before the next ask/tell cycle, writes a checkpoint, and the
  worker releases its lease.  Whoever claims the cell next resumes
  mid-method, bit-identically.
* **Lease stolen** — the heartbeat failed to renew (this worker stalled
  past its TTL and another worker took the cell).  ``pause_check`` raises
  :class:`~repro.cluster.leases.LeaseLostError`: the run aborts *without*
  writing a checkpoint or touching the lease — both belong to the thief.
* **SIGKILL** — nothing runs here, by definition.  The lease simply
  expires and the cell is stolen with at most ``checkpoint_every`` steps
  of simulation re-paid.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cluster.leases import (
    DEFAULT_TTL,
    LeaseLostError,
    LeaseStore,
    lease_store_for,
    make_owner_id,
)
from repro.cluster.scheduler import Assignment, WorkScheduler
from repro.store.base import RunKey
from repro.store.campaign import Campaign


@dataclass
class WorkerReport:
    """Outcome of one :meth:`CampaignWorker.run` loop.

    Attributes:
        worker_id: The worker's owner identity (``host:pid:name``).
        executed: Cells this worker ran to completion.
        skipped: Claimed cells that turned out already done (raced another
            worker's final put; released without executing).
        stolen: Executed/paused cells claimed over an expired lease.
        resumed: Executed/paused cells continued from a driver checkpoint.
        paused: Cells checkpointed and released on a stop request.
        lost: Cells abandoned mid-run because the lease was stolen.
        quarantined: Cells that terminally failed after bounded retries and
            were marked poisoned in the store (never handed out again).
        evaluations: Total evaluations recorded by the cells this worker
            completed.  A resumed cell's record includes the evaluations
            its previous owner paid before the last checkpoint, so summing
            this across workers equals the grid's total budget exactly
            when no simulation was duplicated.
        wall_time_s: Wall-clock duration of the loop.
    """

    worker_id: str
    executed: int = 0
    skipped: int = 0
    stolen: int = 0
    resumed: int = 0
    paused: int = 0
    lost: int = 0
    quarantined: int = 0
    evaluations: int = 0
    wall_time_s: float = 0.0
    keys: List[RunKey] = field(default_factory=list)

    def summary(self) -> str:
        """Stable one-line form (grep target of the cluster-smoke CI job).

        New counters append at the end so substring greps over the older
        fields keep matching.
        """
        return (
            f"worker {self.worker_id} done: executed={self.executed} "
            f"skipped={self.skipped} stolen={self.stolen} "
            f"resumed={self.resumed} paused={self.paused} lost={self.lost} "
            f"evaluations={self.evaluations} quarantined={self.quarantined}"
        )


class LeaseHeartbeat(threading.Thread):
    """Renews one lease in the background while a method runs.

    Daemon thread: renews every ``interval`` seconds until stopped.  A
    failed renewal means the lease is gone (stolen after an expiry, or
    released elsewhere) — the thread sets :attr:`lost` and exits, and the
    executing driver aborts at its next ``pause_check`` poll.

    Renew *errors* (store exceptions, as opposed to ``renewed=False``) are
    tolerated individually — a transient sqlite-busy must not kill a run —
    but their time is accumulated: once renewals have been failing for a
    full TTL, the lease has certainly expired on the store and another
    worker may already own the cell, so the heartbeat declares the lease
    :attr:`lost` instead of letting both workers compute it.
    """

    def __init__(
        self,
        lease_store: LeaseStore,
        key: RunKey,
        owner: str,
        ttl: float,
        interval: Optional[float] = None,
    ):
        super().__init__(name=f"lease-heartbeat-{key.key_id()[:8]}", daemon=True)
        self.lease_store = lease_store
        self.key = key
        self.owner = owner
        self.ttl = float(ttl)
        # Renew well inside the TTL so one missed beat isn't fatal.
        self.interval = interval if interval is not None else max(ttl / 3.0, 0.05)
        # guarded-by: single-writer — only run() assigns; GIL-atomic
        # bool/int flags read by the executing worker's pause polls.
        self.lost = False  # guarded-by: single-writer (heartbeat thread)
        #: Consecutive renew attempts that raised (reset by any success).
        self.consecutive_errors = 0  # guarded-by: single-writer (heartbeat thread)
        # Note: not "_stop" — threading.Thread has a private method by
        # that name and shadowing it breaks join().
        self._stop_event = threading.Event()

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=max(self.interval * 4, 1.0))

    def run(self) -> None:
        error_since: Optional[float] = None
        while not self._stop_event.wait(self.interval):
            try:
                renewed = self.lease_store.renew(self.key, self.owner, self.ttl)
            except Exception:
                # One transient store error (e.g. sqlite busy beyond the
                # timeout) must not kill the run; the lease has ttl-worth
                # of slack and the next beat retries.  But errors that
                # *persist* past the TTL mean the lease is expired on the
                # store and stealable — stop computing a cell that may
                # already belong to someone else.
                self.consecutive_errors += 1
                now = time.monotonic()
                if error_since is None:
                    error_since = now
                if now - error_since >= self.ttl:
                    self.lost = True
                    return
                continue
            self.consecutive_errors = 0
            error_since = None
            if not renewed:
                self.lost = True
                return


class CampaignWorker:
    """Executes campaign cells from a shared store until the sweep drains.

    Args:
        campaign: The grid + store (+ settings) to execute against.  The
            store must be shared with the other workers (same directory, or
            the same :class:`~repro.store.MemoryStore` instance in-process).
        lease_store: Lease backend; defaults to the one matching the
            campaign's store backend (:func:`lease_store_for`).
        worker_id: Stable owner identity; defaults to a fresh
            ``host:pid:random`` id.
        ttl: Lease time-to-live (seconds).  Trade-off: a dead worker's cell
            stays blocked for up to this long, but a live worker must
            heartbeat faster than it.
        heartbeat_interval: Seconds between renewals (default ``ttl / 3``).
        checkpoint_every: Driver checkpoint period in ask/tell steps; also
            the worst-case re-simulation a steal pays.  1 = maximal safety.
        poll_interval: Sleep between scheduler scans when every remaining
            cell is under a live lease.
        cell_retries: Attempts per cell before it is quarantined.  A cell
            whose execution raises (anything but a lost lease) is retried
            in place with exponential backoff; once the budget is spent the
            cell is marked poisoned in the store so no worker — this one or
            a future one — livelocks the sweep re-running it.
        retry_backoff_s: Base backoff between cell attempts; doubles per
            attempt.  Interruptible by :meth:`request_stop`.
        progress: Optional ``callback(assignment, outcome)`` with outcome
            in ``{"executed", "skipped", "paused", "lost", "quarantined"}``.
        step_callbacks: Extra per-step driver callbacks, forwarded to
            :func:`run_method` (testing/telemetry).
        evaluator: Evaluator shared by every cell this worker executes;
            defaults to one built from the campaign's evaluator config.
            Injectable so tests can wrap it in a fault injector.
    """

    def __init__(
        self,
        campaign: Campaign,
        lease_store: Optional[LeaseStore] = None,
        worker_id: Optional[str] = None,
        ttl: float = DEFAULT_TTL,
        heartbeat_interval: Optional[float] = None,
        checkpoint_every: int = 1,
        poll_interval: float = 0.5,
        cell_retries: int = 3,
        retry_backoff_s: float = 0.05,
        progress: Optional[Callable[[Assignment, str], None]] = None,
        step_callbacks: Sequence[Callable] = (),
        evaluator=None,
    ):
        if cell_retries < 1:
            raise ValueError(f"cell_retries must be >= 1, got {cell_retries}")
        self.campaign = campaign
        self.lease_store = (
            lease_store if lease_store is not None else lease_store_for(campaign.store)
        )
        self.worker_id = worker_id or make_owner_id()
        self.ttl = float(ttl)
        self.heartbeat_interval = heartbeat_interval
        self.checkpoint_every = int(checkpoint_every)
        self.poll_interval = float(poll_interval)
        self.cell_retries = int(cell_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.progress = progress
        self.step_callbacks = list(step_callbacks)
        self.scheduler = WorkScheduler(
            campaign, self.lease_store, owner=self.worker_id, ttl=self.ttl
        )
        self._stop = threading.Event()
        # guarded-by: worker-thread confinement — each CampaignWorker is
        # driven by exactly one thread (launcher spawns one per worker);
        # lazy construction in _shared_evaluator never races itself.
        self._evaluator = evaluator  # guarded-by: worker-thread confinement
        self._owns_evaluator = evaluator is None

    def _shared_evaluator(self):
        """One evaluator for every cell this worker executes (lazy).

        Each run binds a per-circuit view of it, so caches, pools and
        (vectorized) request batches persist across the worker's cells.
        """
        if self._evaluator is None:
            from repro.eval import EvaluatorConfig

            config = self.campaign.evaluator_config or EvaluatorConfig()
            self._evaluator = config.build()
        return self._evaluator

    def request_stop(self) -> None:
        """Ask the worker to checkpoint, release, and exit (signal-safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def run(self, max_cells: Optional[int] = None) -> WorkerReport:
        """Claim-and-execute until the sweep drains (or ``max_cells``)."""
        report = WorkerReport(worker_id=self.worker_id)
        started = time.perf_counter()
        visited = 0
        while not self._stop.is_set():
            if max_cells is not None and visited >= max_cells:
                break
            assignment = self.scheduler.next_assignment()
            if assignment is None:
                if self.scheduler.outstanding() == 0:
                    break
                # Everything left is under a live lease; wait for either a
                # release (cell done → outstanding drops) or an expiry.
                self._stop.wait(self.poll_interval)
                continue
            visited += 1
            self._execute(assignment, report)
        if self._evaluator is not None and self._owns_evaluator:
            self._evaluator.close()
            self._evaluator = None
        report.wall_time_s = time.perf_counter() - started
        return report

    def _notify(self, assignment: Assignment, outcome: str) -> None:
        if self.progress is not None:
            self.progress(assignment, outcome)

    def _execute(self, assignment: Assignment, report: WorkerReport) -> None:
        from repro.experiments.runner import run_method

        key, request = assignment.key, assignment.request
        # Between our pending-scan and the claim another worker may have
        # finished this very cell; re-read before paying for simulation.
        self.campaign.store.refresh()
        if self.campaign.store.get(key) is not None:
            self.lease_store.release(key, self.worker_id)
            report.skipped += 1
            self._notify(assignment, "skipped")
            return

        heartbeat = LeaseHeartbeat(
            self.lease_store,
            key,
            self.worker_id,
            self.ttl,
            interval=self.heartbeat_interval,
        )

        def pause_check() -> bool:
            if heartbeat.lost:
                raise LeaseLostError(
                    f"lease on {key.key_id()} lost by {self.worker_id}"
                )
            return self._stop.is_set()

        heartbeat.start()
        record = None
        failure: Optional[BaseException] = None
        attempts = 0
        try:
            for attempt in range(1, self.cell_retries + 1):
                attempts = attempt
                try:
                    record = run_method(
                        request.method,
                        request.circuit,
                        technology=request.technology,
                        steps=request.steps,
                        seed=request.seed,
                        settings=self.campaign.settings,
                        weight_overrides=request.weight_overrides,
                        apply_spec=request.apply_spec,
                        evaluator_config=self.campaign.evaluator_config,
                        evaluator=self._shared_evaluator(),
                        store=self.campaign.store,
                        checkpoint_every=self.checkpoint_every,
                        callbacks=self.step_callbacks,
                        pause_check=pause_check,
                    )
                    failure = None
                    break
                except LeaseLostError:
                    # The cell belongs to the thief now: leave the lease
                    # and the thief's checkpoints strictly alone.  Never
                    # retried — the failure is ours, not the cell's.
                    report.lost += 1
                    self._notify(assignment, "lost")
                    return
                except Exception as error:
                    failure = error
                    if attempt < self.cell_retries:
                        # Interruptible backoff: request_stop() shortcuts
                        # the wait and the remaining attempts run (and, if
                        # the fault is persistent, fail) back to back.
                        self._stop.wait(
                            self.retry_backoff_s * (2 ** (attempt - 1))
                        )
        finally:
            heartbeat.stop()

        if failure is not None:
            # Retry budget spent: the cell is poisoned.  Record the
            # taxonomy in the store so schedulers (ours and every other
            # worker's) stop handing it out, then free the lease.
            from repro.resilience import classify_exception

            self.campaign.store.put_quarantine(
                key,
                {
                    "kind": classify_exception(failure),
                    "message": str(failure) or type(failure).__name__,
                    "attempts": attempts,
                    "worker": self.worker_id,
                },
            )
            self.lease_store.release(key, self.worker_id)
            report.quarantined += 1
            self._notify(assignment, "quarantined")
            return

        if record is None:
            # Paused by request_stop(): checkpoint is on the store; free
            # the lease so any worker (us included, later) can resume.
            self.lease_store.release(key, self.worker_id)
            report.paused += 1
            if assignment.stolen:
                report.stolen += 1
            if assignment.resumed:
                report.resumed += 1
            self._notify(assignment, "paused")
            return

        self.lease_store.release(key, self.worker_id)
        report.executed += 1
        report.evaluations += sum(record.step_evaluations)
        report.keys.append(key)
        if assignment.stolen:
            report.stolen += 1
        if assignment.resumed:
            report.resumed += 1
        self._notify(assignment, "executed")
