"""Exploration noise for the DDPG agent.

The paper uses "a truncated norm noise with exponential decay": Gaussian
noise added to the actor's output, truncated so the perturbed action stays in
``[-1, 1]``, with the standard deviation decaying exponentially over the
exploration episodes.
"""

from __future__ import annotations

import numpy as np


class TruncatedGaussianNoise:
    """Truncated Gaussian exploration noise with exponential decay."""

    def __init__(
        self,
        initial_sigma: float = 0.5,
        final_sigma: float = 0.05,
        decay: float = 0.99,
        low: float = -1.0,
        high: float = 1.0,
    ):
        """Configure the noise process.

        Args:
            initial_sigma: Standard deviation at the first exploration step.
            final_sigma: Floor below which the deviation never decays.
            decay: Multiplicative decay applied after each exploration step.
            low: Lower truncation bound of the perturbed action.
            high: Upper truncation bound of the perturbed action.
        """
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.initial_sigma = initial_sigma
        self.final_sigma = final_sigma
        self.decay = decay
        self.low = low
        self.high = high
        self.sigma = initial_sigma

    def reset(self) -> None:
        """Restore the initial standard deviation."""
        self.sigma = self.initial_sigma

    def step(self) -> None:
        """Decay the standard deviation by one exploration step."""
        self.sigma = max(self.sigma * self.decay, self.final_sigma)

    def perturb(self, actions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Add truncated Gaussian noise to an action array."""
        actions = np.asarray(actions, dtype=float)
        noisy = actions + rng.normal(0.0, self.sigma, size=actions.shape)
        return np.clip(noisy, self.low, self.high)

    def state_dict(self) -> dict:
        """The decayed deviation (the only mutable state of the schedule)."""
        return {"sigma": float(self.sigma)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a schedule position saved by :meth:`state_dict`."""
        self.sigma = float(state["sigma"])
