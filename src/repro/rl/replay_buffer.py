"""Replay buffer storing (state, action, reward) transitions.

The sizing task is a single-step (contextual-bandit style) RL problem: the
state of a circuit/technology pair is fixed and every episode evaluates one
full set of actions, so transitions carry no successor state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass
class Transition:
    """One stored experience tuple."""

    states: np.ndarray
    actions: np.ndarray
    reward: float


class ReplayBuffer:
    """Fixed-capacity FIFO replay buffer with uniform sampling."""

    def __init__(self, capacity: int = 10000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._storage: List[Transition] = []
        self._next_index = 0

    def __len__(self) -> int:
        return len(self._storage)

    def add(self, states: np.ndarray, actions: np.ndarray, reward: float) -> None:
        """Store a transition, overwriting the oldest entry when full."""
        transition = Transition(
            states=np.asarray(states, dtype=float).copy(),
            actions=np.asarray(actions, dtype=float).copy(),
            reward=float(reward),
        )
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._next_index] = transition
            self._next_index = (self._next_index + 1) % self.capacity

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> Sequence[Transition]:
        """Sample ``batch_size`` transitions uniformly with replacement."""
        if not self._storage:
            raise ValueError("cannot sample from an empty replay buffer")
        indices = rng.integers(0, len(self._storage), size=batch_size)
        return [self._storage[i] for i in indices]

    def rewards(self) -> np.ndarray:
        """All stored rewards (useful for diagnostics and tests)."""
        return np.asarray([t.reward for t in self._storage], dtype=float)

    def clear(self) -> None:
        """Remove every stored transition."""
        self._storage = []
        self._next_index = 0
