"""Replay buffer storing (state, action, reward) transitions.

The sizing task is a single-step (contextual-bandit style) RL problem: the
state of a circuit/technology pair is fixed and every episode evaluates one
full set of actions, so transitions carry no successor state.

Storage is a set of preallocated ring arrays — ``(capacity, n, state_dim)``
states, ``(capacity, n, action_dim)`` actions and ``(capacity,)`` rewards —
so :meth:`ReplayBuffer.sample` returns stacked ``(B, n, F)`` tensors ready
for the batched critic update with a single fancy-index gather, no Python
loop over transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np


@dataclass
class Transition:
    """One experience tuple (a per-sample view of a :class:`TransitionBatch`)."""

    states: np.ndarray
    actions: np.ndarray
    reward: float


@dataclass
class TransitionBatch:
    """A stacked batch of sampled transitions.

    Attributes:
        states: ``(B, n, state_dim)`` stacked state matrices.
        actions: ``(B, n, action_dim)`` stacked action matrices.
        rewards: ``(B,)`` rewards.
    """

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray

    def __len__(self) -> int:
        return self.rewards.shape[0]

    def __getitem__(self, index: int) -> Transition:
        return Transition(
            states=self.states[index],
            actions=self.actions[index],
            reward=float(self.rewards[index]),
        )

    def __iter__(self) -> Iterator[Transition]:
        for index in range(len(self)):
            yield self[index]


class ReplayBuffer:
    """Fixed-capacity FIFO replay buffer with uniform sampling.

    The backing arrays are allocated on the first :meth:`add` (their shapes
    depend on the attached circuit) and reused as a ring thereafter; every
    stored transition of one buffer generation must share the same state and
    action shapes.  :meth:`clear` drops the arrays so the buffer can be
    reused for a different topology after transfer.
    """

    def __init__(self, capacity: int = 10000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._states: Optional[np.ndarray] = None
        self._actions: Optional[np.ndarray] = None
        self._rewards: Optional[np.ndarray] = None
        self._size = 0
        self._next_index = 0

    def __len__(self) -> int:
        return self._size

    def add(self, states: np.ndarray, actions: np.ndarray, reward: float) -> None:
        """Store a transition, overwriting the oldest entry when full."""
        states = np.asarray(states, dtype=float)
        actions = np.asarray(actions, dtype=float)
        if self._states is None:
            self._states = np.empty((self.capacity,) + states.shape)
            self._actions = np.empty((self.capacity,) + actions.shape)
            self._rewards = np.empty(self.capacity)
        elif (
            states.shape != self._states.shape[1:]
            or actions.shape != self._actions.shape[1:]
        ):
            raise ValueError(
                f"transition shapes {states.shape}/{actions.shape} do not match "
                f"buffer storage {self._states.shape[1:]}/{self._actions.shape[1:]}"
                " (clear() the buffer before switching topologies)"
            )
        self._states[self._next_index] = states
        self._actions[self._next_index] = actions
        self._rewards[self._next_index] = float(reward)
        self._next_index = (self._next_index + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> TransitionBatch:
        """Sample ``batch_size`` transitions uniformly with replacement.

        Returns:
            A :class:`TransitionBatch` of freshly gathered (copied) stacked
            arrays; mutating it never touches the ring storage.
        """
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        indices = rng.integers(0, self._size, size=batch_size)
        return TransitionBatch(
            states=self._states[indices],
            actions=self._actions[indices],
            rewards=self._rewards[indices],
        )

    def rewards(self) -> np.ndarray:
        """All stored rewards (useful for diagnostics and tests)."""
        if self._rewards is None:
            return np.empty(0)
        return self._rewards[: self._size].copy()

    def clear(self) -> None:
        """Remove every stored transition and release the ring arrays."""
        self._states = None
        self._actions = None
        self._rewards = None
        self._size = 0
        self._next_index = 0

    def state_dict(self) -> dict:
        """Resumable snapshot of the buffer contents and ring position.

        Only the live entries are copied: until the ring wraps they occupy
        ``[0, size)``, so unfilled capacity is never serialised; once the
        buffer is full the whole ring (whose order encodes overwrite
        position) is stored.
        """
        if self._states is None:
            return {"capacity": self.capacity, "size": 0, "next_index": 0}
        live = self.capacity if self._size == self.capacity else self._size
        return {
            "capacity": self.capacity,
            "size": int(self._size),
            "next_index": int(self._next_index),
            "states": self._states[:live].copy(),
            "actions": self._actions[:live].copy(),
            "rewards": self._rewards[:live].copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot saved by :meth:`state_dict`."""
        self.capacity = int(state["capacity"])
        if state["size"] == 0:
            self.clear()
            return
        states = np.asarray(state["states"], dtype=float)
        actions = np.asarray(state["actions"], dtype=float)
        rewards = np.asarray(state["rewards"], dtype=float)
        self._states = np.empty((self.capacity,) + states.shape[1:])
        self._actions = np.empty((self.capacity,) + actions.shape[1:])
        self._rewards = np.empty(self.capacity)
        self._states[: len(states)] = states
        self._actions[: len(actions)] = actions
        self._rewards[: len(rewards)] = rewards
        self._size = int(state["size"])
        self._next_index = int(state["next_index"])
