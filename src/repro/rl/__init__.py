"""Reinforcement-learning agent (DDPG + GCN) and transfer utilities."""

from repro.rl.agent import AgentConfig, GCNRLAgent, TrainingRecord
from repro.rl.networks import GCNActor, GCNCritic
from repro.rl.noise import TruncatedGaussianNoise
from repro.rl.replay_buffer import ReplayBuffer, Transition, TransitionBatch
from repro.rl.strategy import GCNRLStrategy, NGRLStrategy
from repro.rl.transfer import (
    load_agent_weights,
    make_environment,
    pretrain_agent,
    save_agent_weights,
    train_agent,
    transfer_to_technology,
    transfer_to_topology,
)

__all__ = [
    "AgentConfig",
    "GCNRLAgent",
    "TrainingRecord",
    "GCNActor",
    "GCNCritic",
    "TruncatedGaussianNoise",
    "ReplayBuffer",
    "Transition",
    "TransitionBatch",
    "GCNRLStrategy",
    "NGRLStrategy",
    "make_environment",
    "pretrain_agent",
    "train_agent",
    "save_agent_weights",
    "load_agent_weights",
    "transfer_to_technology",
    "transfer_to_topology",
]
