"""Knowledge-transfer utilities (Section III-E of the paper).

Two transfer scenarios are supported:

* **Technology transfer** — the same circuit in a different technology node.
  State dimensions are unchanged, so the pretrained agent is simply
  re-attached to the new environment and fine-tuned with a small budget.
* **Topology transfer** — a different circuit.  Both environments must be
  built with ``transferable_state=True`` so the per-component state width is
  topology-independent (scalar index instead of one-hot); the GCN layers and
  per-type heads then transfer directly.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Dict, Optional, Union


from repro.circuits.library import get_circuit
from repro.env.environment import SizingEnvironment
from repro.env.fom import default_fom_config
from repro.eval import EvaluatorConfig
from repro.rl.agent import AgentConfig, GCNRLAgent


def train_agent(
    agent: GCNRLAgent,
    episodes: int,
    store=None,
    run_key=None,
    checkpoint_every: int = 0,
) -> GCNRLAgent:
    """Train an agent for ``episodes`` through the generic driver loop.

    This is the single training entry point of the transfer harness: the
    agent is wrapped in its ask/tell strategy and driven by an
    :class:`~repro.experiments.driver.OptimizationDriver`, so pretraining
    and fine-tuning inherit budget accounting, callbacks and mid-run
    checkpointing (pass ``store``/``run_key``/``checkpoint_every``) exactly
    like every other method.  The episode sequence is bit-identical to the
    legacy ``agent.train(episodes)`` loop.
    """
    # Lazy imports: repro.experiments.driver imports repro.optim, which this
    # package's strategy module registers itself into.
    from repro.experiments.driver import OptimizationDriver
    from repro.rl.strategy import GCNRLStrategy

    strategy = GCNRLStrategy.from_agent(agent)
    OptimizationDriver(
        strategy,
        budget=episodes,
        store=store,
        run_key=run_key,
        checkpoint_every=checkpoint_every,
    ).run()
    return agent


def save_agent_weights(agent: GCNRLAgent, path: Union[str, Path]) -> Path:
    """Serialise an agent's actor/critic weights to ``path`` (pickle)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        pickle.dump(agent.state_dict(), handle)
    return path


def load_agent_weights(agent: GCNRLAgent, path: Union[str, Path]) -> GCNRLAgent:
    """Load actor/critic weights into an existing agent."""
    with Path(path).open("rb") as handle:
        state = pickle.load(handle)
    agent.load_state_dict(state)
    return agent


def make_environment(
    circuit_name: str,
    technology: str = "180nm",
    transferable_state: bool = False,
    apply_spec: bool = True,
    evaluator_config: Optional[EvaluatorConfig] = None,
) -> SizingEnvironment:
    """Build a standard sizing environment for a benchmark circuit."""
    circuit = get_circuit(circuit_name, technology)
    evaluator = (evaluator_config or EvaluatorConfig()).build(circuit)
    fom = default_fom_config(circuit, apply_spec=apply_spec, evaluator=evaluator)
    return SizingEnvironment(
        circuit,
        fom_config=fom,
        transferable_state=transferable_state,
        evaluator=evaluator,
    )


def pretrain_agent(
    circuit_name: str,
    technology: str = "180nm",
    episodes: int = 300,
    config: Optional[AgentConfig] = None,
    transferable_state: bool = False,
    seed: int = 0,
    evaluator_config: Optional[EvaluatorConfig] = None,
) -> GCNRLAgent:
    """Train a fresh agent on a source circuit/technology pair."""
    environment = make_environment(
        circuit_name,
        technology,
        transferable_state=transferable_state,
        evaluator_config=evaluator_config,
    )
    agent = GCNRLAgent(environment, config=config, seed=seed)
    return train_agent(agent, episodes)


def transfer_to_technology(
    agent: GCNRLAgent,
    circuit_name: str,
    target_technology: str,
    episodes: int,
    apply_spec: bool = True,
    evaluator_config: Optional[EvaluatorConfig] = None,
) -> GCNRLAgent:
    """Fine-tune a pretrained agent on the same circuit in a new node.

    The agent keeps its actor-critic weights (the transferred knowledge) but
    its replay buffer, reward baseline and exploration schedule are reset,
    matching the paper's transfer protocol.
    """
    environment = make_environment(
        circuit_name,
        target_technology,
        transferable_state=agent.environment.transferable_state,
        apply_spec=apply_spec,
        evaluator_config=evaluator_config,
    )
    agent.attach_environment(environment)
    return train_agent(agent, episodes)


def transfer_to_topology(
    agent: GCNRLAgent,
    target_circuit: str,
    technology: str,
    episodes: int,
    apply_spec: bool = True,
    evaluator_config: Optional[EvaluatorConfig] = None,
) -> GCNRLAgent:
    """Fine-tune a pretrained agent on a different circuit topology.

    Requires the source agent to have been trained with
    ``transferable_state=True`` (scalar component index), otherwise the state
    widths of the two topologies differ and the transfer is rejected.
    """
    if not agent.environment.transferable_state:
        raise ValueError(
            "topology transfer requires an agent trained with "
            "transferable_state=True"
        )
    environment = make_environment(
        target_circuit,
        technology,
        transferable_state=True,
        apply_spec=apply_spec,
        evaluator_config=evaluator_config,
    )
    agent.attach_environment(environment)
    return train_agent(agent, episodes)
