"""DDPG agent with GCN actor-critic (Algorithm 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.circuits.components import MAX_ACTION_DIM, TYPE_ORDER
from repro.env.environment import SizingEnvironment, StepResult
from repro.nn.losses import mse_loss, mse_loss_grad
from repro.nn.optim import Adam, clip_gradients
from repro.rl.networks import GCNActor, GCNCritic
from repro.rl.noise import TruncatedGaussianNoise
from repro.rl.replay_buffer import ReplayBuffer


@dataclass
class AgentConfig:
    """Hyper-parameters of the GCN-RL / NG-RL agent.

    Attributes:
        hidden_dim: Width of the hidden layers.
        num_gcn_layers: Number of stacked GCN layers (7 in the paper).
        use_gcn: If False, graph aggregation is disabled (NG-RL ablation).
        actor_lr / critic_lr: Adam learning rates.
        batch_size: Replay-buffer samples per policy update (``Ns``).
        warmup: Number of random warm-up episodes (``W``).
        buffer_capacity: Replay-buffer size.
        reward_baseline_decay: Exponential-moving-average factor for the
            reward baseline ``B``.
        noise_sigma / noise_sigma_final / noise_decay: Exploration noise.
        grad_clip: Global-norm gradient clip for both networks.
        updates_per_episode: Gradient updates performed after each episode.
    """

    hidden_dim: int = 64
    num_gcn_layers: int = 7
    use_gcn: bool = True
    actor_lr: float = 5e-3
    critic_lr: float = 5e-3
    batch_size: int = 48
    warmup: int = 30
    buffer_capacity: int = 10000
    reward_baseline_decay: float = 0.95
    noise_sigma: float = 0.7
    noise_sigma_final: float = 0.08
    noise_decay: float = 0.97
    grad_clip: float = 5.0
    updates_per_episode: int = 5


@dataclass
class TrainingRecord:
    """Per-episode training log entry."""

    episode: int
    reward: float
    best_reward: float
    critic_loss: float = float("nan")
    exploration_sigma: float = float("nan")
    warmup: bool = False


class GCNRLAgent:
    """GCN-RL circuit designer agent (DDPG with a GCN actor-critic).

    The same class implements the NG-RL ablation (``config.use_gcn=False``)
    and supports knowledge transfer by saving/loading its actor-critic
    weights and re-attaching to a different environment.
    """

    def __init__(
        self,
        environment: SizingEnvironment,
        config: Optional[AgentConfig] = None,
        seed: int = 0,
    ):
        self.config = config or AgentConfig()
        self.rng = np.random.default_rng(seed)
        self.environment = environment
        self.state_dim = environment.state_dim
        self.action_dim = MAX_ACTION_DIM

        net_rng = np.random.default_rng(seed + 1)
        self.actor = GCNActor(
            self.state_dim,
            hidden_dim=self.config.hidden_dim,
            num_gcn_layers=self.config.num_gcn_layers,
            action_dim=self.action_dim,
            use_gcn=self.config.use_gcn,
            rng=net_rng,
        )
        self.critic = GCNCritic(
            self.state_dim,
            hidden_dim=self.config.hidden_dim,
            num_gcn_layers=self.config.num_gcn_layers,
            action_dim=self.action_dim,
            use_gcn=self.config.use_gcn,
            rng=net_rng,
        )
        # Parameter lists are immutable after construction; collecting them
        # once keeps zero_grad/clip out of the attribute-tree walk on the
        # per-update hot path.
        self._actor_params = self.actor.parameters()
        self._critic_params = self.critic.parameters()
        self.actor_optimizer = Adam(self._actor_params, lr=self.config.actor_lr)
        self.critic_optimizer = Adam(self._critic_params, lr=self.config.critic_lr)
        self.noise = TruncatedGaussianNoise(
            initial_sigma=self.config.noise_sigma,
            final_sigma=self.config.noise_sigma_final,
            decay=self.config.noise_decay,
        )
        self.replay_buffer = ReplayBuffer(self.config.buffer_capacity)
        self.reward_baseline: Optional[float] = None
        self.training_log: List[TrainingRecord] = []
        self._episode = 0
        self._cached_type_indices: Optional[np.ndarray] = None
        self._cached_observation: Optional[tuple] = None

    # --- environment handling -----------------------------------------------------
    def attach_environment(self, environment: SizingEnvironment) -> None:
        """Point the agent at a new environment (knowledge transfer).

        The new environment must produce state vectors of the same width; use
        ``transferable_state=True`` environments when transferring between
        topologies with different component counts.
        """
        if environment.state_dim != self.state_dim:
            raise ValueError(
                "state dimension mismatch: "
                f"agent expects {self.state_dim}, environment provides "
                f"{environment.state_dim} (use transferable_state=True for "
                "topology transfer)"
            )
        self.environment = environment
        self.replay_buffer.clear()
        self.reward_baseline = None
        self.noise.reset()
        self._episode = 0
        self._cached_type_indices = None
        self._cached_observation = None

    def _type_indices(self) -> np.ndarray:
        """Component-type index per node, cached per attached environment."""
        if self._cached_type_indices is None:
            self._cached_type_indices = np.asarray(
                [
                    TYPE_ORDER.index(comp.ctype)
                    for comp in self.environment.circuit.components
                ],
                dtype=int,
            )
        return self._cached_type_indices

    def _observe(self):
        """The environment's (states, adjacency) pair, cached per attachment.

        Both arrays are deterministic functions of the attached circuit and
        technology, so they are computed once per environment instead of on
        every act/update.
        """
        if self._cached_observation is None:
            self._cached_observation = self.environment.observe()
        return self._cached_observation

    # --- acting -----------------------------------------------------------------------
    def act(self, explore: bool = False) -> np.ndarray:
        """Compute the actor's action matrix for the current environment."""
        states, adjacency = self._observe()
        actions = self.actor.forward(states, adjacency, self._type_indices())
        if explore:
            actions = self.noise.perturb(actions, self.rng)
        return actions

    def random_actions(self) -> np.ndarray:
        """Uniformly random action matrix (warm-up phase)."""
        return self.rng.uniform(
            -1.0, 1.0, size=(self.environment.num_components, self.action_dim)
        )

    # --- learning ---------------------------------------------------------------------
    def _update_baseline(self, reward: float) -> float:
        decay = self.config.reward_baseline_decay
        if self.reward_baseline is None:
            self.reward_baseline = reward
        else:
            self.reward_baseline = decay * self.reward_baseline + (1 - decay) * reward
        return self.reward_baseline

    def _update_networks(self) -> float:
        """One critic + actor update from a replay-buffer batch.

        The whole replay batch goes through the critic as one stacked
        ``(B, n, F)`` forward/backward — a handful of large matmuls instead
        of ``batch_size`` sequential graph passes — with the MSE averaged
        in-graph.  The update consumes the identical RNG stream as
        :meth:`_update_networks_loop` and reproduces its weights to stacked-
        reduction precision (~1e-12 over a full training run).
        """
        if len(self.replay_buffer) < 2:
            return float("nan")
        _, adjacency = self._observe()
        type_indices = self._type_indices()
        critic_loss = self._update_critic_batched(adjacency, type_indices)
        self._update_actor(adjacency, type_indices)
        return critic_loss

    def _update_networks_loop(self) -> float:
        """Per-sample reference implementation of :meth:`_update_networks`.

        Runs the critic update as ``batch_size`` sequential single-graph
        forward/backward passes — the pre-batching training path, preserved
        operation for operation.  Kept as the ground truth for the
        batched/sequential parity tests and the RL throughput benchmark.
        """
        if len(self.replay_buffer) < 2:
            return float("nan")
        _, adjacency = self._observe()
        type_indices = self._type_indices()
        critic_loss = self._update_critic_loop(adjacency, type_indices)
        self._update_actor(adjacency, type_indices)
        return critic_loss

    def _update_critic_batched(
        self, adjacency: np.ndarray, type_indices: np.ndarray
    ) -> float:
        """One stacked critic update: minimise mean_b (R_b - B - Q(S_b, A_b))^2."""
        batch = self.replay_buffer.sample(self.config.batch_size, self.rng)
        baseline = self.reward_baseline or 0.0
        for param in self._critic_params:
            param.zero_grad()
        targets = batch.rewards - baseline
        predictions = self.critic.forward(
            batch.states, batch.actions, adjacency, type_indices
        )
        critic_loss = mse_loss(predictions, targets)
        self.critic.backward(mse_loss_grad(predictions, targets))
        clip_gradients(self._critic_params, self.config.grad_clip)
        self.critic_optimizer.step()
        return float(critic_loss)

    def _update_critic_loop(
        self, adjacency: np.ndarray, type_indices: np.ndarray
    ) -> float:
        """Per-sample critic update (reference for parity and benchmarks)."""
        batch = self.replay_buffer.sample(self.config.batch_size, self.rng)
        baseline = self.reward_baseline or 0.0
        for param in self._critic_params:
            param.zero_grad()
        critic_loss = 0.0
        for transition in batch:
            target = transition.reward - baseline
            prediction = self.critic.forward(
                transition.states, transition.actions, adjacency, type_indices
            )
            critic_loss += mse_loss(np.array([prediction]), np.array([target]))
            grad = mse_loss_grad(np.array([prediction]), np.array([target]))
            self.critic.backward(float(grad[0]) / len(batch))
        critic_loss /= len(batch)
        clip_gradients(self._critic_params, self.config.grad_clip)
        self.critic_optimizer.step()
        return float(critic_loss)

    def _update_actor(
        self, adjacency: np.ndarray, type_indices: np.ndarray
    ) -> None:
        """One actor ascent step on dQ/da (shared by both critic paths)."""
        states, _ = self._observe()
        for param in self._actor_params:
            param.zero_grad()
        for param in self._critic_params:
            param.zero_grad()
        actions = self.actor.forward(states, adjacency, type_indices)
        self.critic.forward(states, actions, adjacency, type_indices)
        _, grad_actions = self.critic.backward(1.0)
        # Gradient ascent on Q: feed -dQ/da so the Adam step minimises -Q.
        self.actor.backward(-grad_actions)
        clip_gradients(self._actor_params, self.config.grad_clip)
        self.actor_optimizer.step()
        # The critic's parameter gradients from the actor pass are discarded.
        for param in self._critic_params:
            param.zero_grad()

    def train_episode(self) -> TrainingRecord:
        """Run one optimization episode (one circuit simulation)."""
        states, _ = self._observe()
        warmup = self._episode < self.config.warmup
        if warmup:
            actions = self.random_actions()
        else:
            actions = self.act(explore=True)
        result: StepResult = self.environment.step(actions)
        self.replay_buffer.add(states, actions, result.reward)
        self._update_baseline(result.reward)

        critic_loss = float("nan")
        if not warmup:
            for _ in range(self.config.updates_per_episode):
                critic_loss = self._update_networks()
            self.noise.step()

        record = TrainingRecord(
            episode=self._episode,
            reward=result.reward,
            best_reward=self.environment.best_reward,
            critic_loss=critic_loss,
            exploration_sigma=self.noise.sigma,
            warmup=warmup,
        )
        self.training_log.append(record)
        self._episode += 1
        return record

    def _train_warmup_batch(self, num_episodes: int) -> List[TrainingRecord]:
        """Run ``num_episodes`` random warm-up episodes as one evaluator batch.

        Warm-up episodes perform no network updates, so their action matrices
        can all be sampled up front (the identical RNG stream as sequential
        sampling) and simulated through ``step_batch``.  Replay-buffer,
        baseline and log updates then replay per episode in order, so the
        resulting agent state and training log are exactly those of
        ``num_episodes`` sequential :meth:`train_episode` calls.
        """
        states, _ = self._observe()
        actions_batch = [self.random_actions() for _ in range(num_episodes)]
        running_best = self.environment.best_reward
        results = self.environment.step_batch(actions_batch)
        records = []
        for actions, result in zip(actions_batch, results):
            self.replay_buffer.add(states, actions, result.reward)
            self._update_baseline(result.reward)
            running_best = max(running_best, result.reward)
            record = TrainingRecord(
                episode=self._episode,
                reward=result.reward,
                best_reward=running_best,
                critic_loss=float("nan"),
                exploration_sigma=self.noise.sigma,
                warmup=True,
            )
            self.training_log.append(record)
            self._episode += 1
            records.append(record)
        return records

    def train(self, num_episodes: int) -> List[TrainingRecord]:
        """Run ``num_episodes`` episodes and return their training records.

        Leading warm-up episodes are batched through the environment's
        evaluator; the exploration episodes that follow stay sequential
        because each action depends on the networks updated by the previous
        episode.
        """
        records: List[TrainingRecord] = []
        warmup_left = min(num_episodes, self.config.warmup - self._episode)
        if warmup_left > 1:
            records.extend(self._train_warmup_batch(warmup_left))
        while len(records) < num_episodes:
            records.append(self.train_episode())
        return records

    # --- results / persistence -----------------------------------------------------------
    @property
    def best_reward(self) -> float:
        """Best FoM found so far in the attached environment."""
        return self.environment.best_reward

    @property
    def best_sizing(self):
        """Best sizing found so far in the attached environment."""
        return self.environment.best_sizing

    # Deliberately weights-only (the unit of knowledge transfer); the
    # complete mid-run state is training_state_dict() below.
    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:  # repro-lint: ignore[checkpoint-completeness]
        """Weights of both networks (used for knowledge transfer)."""
        return {"actor": self.actor.state_dict(), "critic": self.critic.state_dict()}

    def load_state_dict(self, state: Dict[str, Dict[str, np.ndarray]]) -> None:
        """Load actor/critic weights saved by :meth:`state_dict`."""
        self.actor.load_state_dict(state["actor"])
        self.critic.load_state_dict(state["critic"])

    def training_state_dict(self) -> Dict:
        """The *complete* mid-run training state (checkpointing).

        Unlike :meth:`state_dict` (weights only, the unit of knowledge
        transfer), this covers everything a bit-identical resume needs:
        weights, both Adam moment sets, the replay buffer, the reward
        baseline, the exploration schedule, the episode counter, the
        training log and the agent's RNG stream.
        """
        return {
            "weights": self.state_dict(),
            "actor_optimizer": self.actor_optimizer.state_dict(),
            "critic_optimizer": self.critic_optimizer.state_dict(),
            "replay_buffer": self.replay_buffer.state_dict(),
            "reward_baseline": self.reward_baseline,
            "noise": self.noise.state_dict(),
            "episode": int(self._episode),
            "rng": self.rng.bit_generator.state,
            "training_log": [replace(record) for record in self.training_log],
        }

    def load_training_state_dict(self, state: Dict) -> None:
        """Restore a checkpoint saved by :meth:`training_state_dict`."""
        self.load_state_dict(state["weights"])
        self.actor_optimizer.load_state_dict(state["actor_optimizer"])
        self.critic_optimizer.load_state_dict(state["critic_optimizer"])
        self.replay_buffer.load_state_dict(state["replay_buffer"])
        self.reward_baseline = state["reward_baseline"]
        self.noise.load_state_dict(state["noise"])
        self._episode = int(state["episode"])
        self.rng.bit_generator.state = state["rng"]
        self.training_log = [replace(record) for record in state["training_log"]]
