"""The GCN-RL / NG-RL agents behind the ask/tell :class:`Strategy` protocol.

One training episode is one ask/tell cycle: :meth:`ask` produces the action
matrix (the actor's exploration action, or — during warm-up — a whole batch
of random actions at once, exactly the batching ``GCNRLAgent.train`` used),
the driver simulates it through the environment, and :meth:`tell` replays
the learning side of the episode (replay buffer, reward baseline, network
updates, exploration decay, training log).  The split leaves the agent's
RNG stream untouched, so a driver-driven run is bit-identical to the legacy
``agent.train(num_episodes)`` loop.

Two registry names map to the same wrapper: ``gcn_rl`` (graph aggregation
on) and ``ng_rl`` (the paper's no-graph ablation).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.optim.registry import register_strategy
from repro.optim.strategy import Proposal, Strategy
from repro.rl.agent import AgentConfig, GCNRLAgent, TrainingRecord


@register_strategy
class GCNRLStrategy(Strategy):
    """DDPG GCN actor-critic agent speaking the ask/tell protocol."""

    name = "gcn_rl"
    #: Default graph-aggregation flavour when no config is given.
    use_gcn = True

    def __init__(
        self,
        environment=None,
        seed: int = 0,
        config: Optional[AgentConfig] = None,
        agent: Optional[GCNRLAgent] = None,
    ):
        if agent is not None:
            environment = agent.environment
        if environment is None:
            raise ValueError("provide an environment or a pre-built agent")
        super().__init__(environment, seed)
        if agent is None:
            config = config or AgentConfig(use_gcn=self.use_gcn)
            agent = GCNRLAgent(environment, config=config, seed=seed)
        self.agent = agent
        # Episode context captured by ask() and consumed by tell();
        # transient between the two (checkpoints happen at step
        # boundaries, and the driver replays an interrupted ask).
        self._pending_states: Optional[np.ndarray] = None  # repro-lint: ignore[checkpoint-completeness]
        self._pending_warmup = False  # repro-lint: ignore[checkpoint-completeness]
        self._best_before = -np.inf  # repro-lint: ignore[checkpoint-completeness]

    @classmethod
    def from_agent(cls, agent: GCNRLAgent) -> "GCNRLStrategy":
        """Wrap an existing agent (transfer fine-tuning) without rebuilding it."""
        return cls(agent=agent)

    def ask(self) -> List[Proposal]:
        agent = self.agent
        states, _ = agent._observe()
        self._pending_states = states
        self._best_before = agent.environment.best_reward
        warmup_left = agent.config.warmup - agent._episode
        if warmup_left > 0:
            # Warm-up episodes perform no network updates, so all their
            # action matrices are sampled up front (the identical RNG stream
            # as sequential sampling) and simulated as one evaluator batch.
            count = min(warmup_left, self.budget_remaining())
            self._pending_warmup = True
            return [Proposal(actions=agent.random_actions()) for _ in range(count)]
        self._pending_warmup = False
        return [Proposal(actions=agent.act(explore=True))]

    def tell(self, proposals: Sequence[Proposal], results: Sequence) -> None:
        agent = self.agent
        states = self._pending_states
        if self._pending_warmup:
            running_best = self._best_before
            for proposal, result in zip(proposals, results):
                agent.replay_buffer.add(states, proposal.actions, result.reward)
                agent._update_baseline(result.reward)
                running_best = max(running_best, result.reward)
                agent.training_log.append(
                    TrainingRecord(
                        episode=agent._episode,
                        reward=result.reward,
                        best_reward=running_best,
                        critic_loss=float("nan"),
                        exploration_sigma=agent.noise.sigma,
                        warmup=True,
                    )
                )
                agent._episode += 1
            return
        result = results[0]
        agent.replay_buffer.add(states, proposals[0].actions, result.reward)
        agent._update_baseline(result.reward)
        critic_loss = float("nan")
        for _ in range(agent.config.updates_per_episode):
            critic_loss = agent._update_networks()
        agent.noise.step()
        agent.training_log.append(
            TrainingRecord(
                episode=agent._episode,
                reward=result.reward,
                best_reward=agent.environment.best_reward,
                critic_loss=critic_loss,
                exploration_sigma=agent.noise.sigma,
                warmup=False,
            )
        )
        agent._episode += 1

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["agent"] = self.agent.training_state_dict()
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self.agent.load_training_state_dict(state["agent"])


@register_strategy
class NGRLStrategy(GCNRLStrategy):
    """The paper's NG-RL ablation: the same agent without graph aggregation."""

    name = "ng_rl"
    use_gcn = False
