"""GCN actor and critic networks (Figure 3 of the paper).

Both networks share the same skeleton: a first fully-connected layer shared
by every component, a stack of graph-convolution layers whose weights are
shared across nodes, and component-type-specific heads.  The actor decodes
per-node hidden features into bounded action vectors; the critic encodes the
actions, aggregates over the graph and predicts the scalar reward.

Setting ``use_gcn=False`` replaces the graph aggregation with the identity
matrix, which yields the paper's NG-RL ablation (same capacity, no topology
information).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.components import MAX_ACTION_DIM, TYPE_ORDER
from repro.nn.gcn import GCNLayer
from repro.nn.layers import Linear, ReLU, Tanh
from repro.nn.module import Module

NUM_TYPES = len(TYPE_ORDER)


def _identity_adjacency(num_nodes: int) -> np.ndarray:
    return np.eye(num_nodes)


class GCNActor(Module):
    """Actor network mapping per-node states to per-node actions in [-1, 1]."""

    def __init__(
        self,
        state_dim: int,
        hidden_dim: int = 64,
        num_gcn_layers: int = 7,
        action_dim: int = MAX_ACTION_DIM,
        use_gcn: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.state_dim = state_dim
        self.hidden_dim = hidden_dim
        self.action_dim = action_dim
        self.use_gcn = use_gcn
        self.input_layer = Linear(state_dim, hidden_dim, rng, name="actor.input")
        self.input_activation = ReLU()
        self.gcn_layers = [
            GCNLayer(hidden_dim, hidden_dim, "relu", rng, name=f"actor.gcn{i}")
            for i in range(num_gcn_layers)
        ]
        # One decoder per component type (NMOS, PMOS, R, C).
        self.decoders = [
            Linear(hidden_dim, action_dim, rng, name=f"actor.decoder{i}")
            for i in range(NUM_TYPES)
        ]
        self.output_activation = Tanh()
        self._type_indices: Optional[np.ndarray] = None
        self._decoder_inputs: Optional[np.ndarray] = None

    def forward(
        self,
        states: np.ndarray,
        adjacency: np.ndarray,
        type_indices: Sequence[int],
    ) -> np.ndarray:
        """Compute actions for every node.

        Args:
            states: Node state matrix ``(n, state_dim)``.
            adjacency: Normalised adjacency ``(n, n)``.
            type_indices: Component-type index (into ``TYPE_ORDER``) per node.

        Returns:
            Action matrix ``(n, action_dim)`` with entries in ``[-1, 1]``.
        """
        states = np.asarray(states, dtype=float)
        n = states.shape[0]
        propagation = adjacency if self.use_gcn else _identity_adjacency(n)
        h = self.input_activation(self.input_layer(states))
        for layer in self.gcn_layers:
            h = layer(h, propagation)
        self._decoder_inputs = h
        self._type_indices = np.asarray(type_indices, dtype=int)
        pre_action = np.zeros((n, self.action_dim))
        for t, decoder in enumerate(self.decoders):
            mask = self._type_indices == t
            if np.any(mask):
                pre_action[mask] = decoder(h[mask])
        return self.output_activation(pre_action)

    def backward(self, grad_actions: np.ndarray) -> np.ndarray:
        """Backpropagate a gradient w.r.t. the actions into all parameters."""
        if self._decoder_inputs is None or self._type_indices is None:
            raise RuntimeError("backward called before forward")
        grad_pre = self.output_activation.backward(grad_actions)
        grad_h = np.zeros_like(self._decoder_inputs)
        for t, decoder in enumerate(self.decoders):
            mask = self._type_indices == t
            if np.any(mask):
                # Re-run the decoder forward on the masked rows so its cached
                # input matches, then backpropagate the masked gradient.
                decoder.forward(self._decoder_inputs[mask])
                grad_h[mask] = decoder.backward(grad_pre[mask])
        for layer in reversed(self.gcn_layers):
            grad_h = layer.backward(grad_h)
        grad_h = self.input_activation.backward(grad_h)
        return self.input_layer.backward(grad_h)


class GCNCritic(Module):
    """Critic network predicting the reward of a (state, action) graph."""

    def __init__(
        self,
        state_dim: int,
        hidden_dim: int = 64,
        num_gcn_layers: int = 7,
        action_dim: int = MAX_ACTION_DIM,
        use_gcn: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng(1)
        self.state_dim = state_dim
        self.hidden_dim = hidden_dim
        self.action_dim = action_dim
        self.use_gcn = use_gcn
        self.state_encoder = Linear(state_dim, hidden_dim, rng, name="critic.state")
        # Component-type-specific action encoders (Figure 3, "unique weight").
        self.action_encoders = [
            Linear(action_dim, hidden_dim, rng, name=f"critic.action{i}")
            for i in range(NUM_TYPES)
        ]
        self.input_activation = ReLU()
        self.gcn_layers = [
            GCNLayer(hidden_dim, hidden_dim, "relu", rng, name=f"critic.gcn{i}")
            for i in range(num_gcn_layers)
        ]
        self.output_layer = Linear(hidden_dim, 1, rng, name="critic.output")
        self._type_indices: Optional[np.ndarray] = None
        self._states: Optional[np.ndarray] = None
        self._actions: Optional[np.ndarray] = None
        self._num_nodes: int = 0

    def forward(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        adjacency: np.ndarray,
        type_indices: Sequence[int],
    ) -> float:
        """Predict the scalar reward of a full set of node actions."""
        states = np.asarray(states, dtype=float)
        actions = np.asarray(actions, dtype=float)
        n = states.shape[0]
        self._num_nodes = n
        self._states = states
        self._actions = actions
        self._type_indices = np.asarray(type_indices, dtype=int)
        propagation = adjacency if self.use_gcn else _identity_adjacency(n)

        encoded = self.state_encoder(states)
        action_encoded = np.zeros_like(encoded)
        for t, encoder in enumerate(self.action_encoders):
            mask = self._type_indices == t
            if np.any(mask):
                action_encoded[mask] = encoder(actions[mask])
        h = self.input_activation(encoded + action_encoded)
        for layer in self.gcn_layers:
            h = layer(h, propagation)
        node_values = self.output_layer(h)
        return float(node_values.mean())

    def backward(self, grad_q: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """Backpropagate the scalar gradient ``dL/dQ``.

        Returns:
            ``(grad_states, grad_actions)`` — the gradient of the predicted
            value w.r.t. the input states and actions.  The action gradient is
            what DDPG feeds into the actor update.
        """
        if self._states is None or self._actions is None:
            raise RuntimeError("backward called before forward")
        n = self._num_nodes
        grad_node_values = np.full((n, 1), grad_q / n)
        grad_h = self.output_layer.backward(grad_node_values)
        for layer in reversed(self.gcn_layers):
            grad_h = layer.backward(grad_h)
        grad_sum = self.input_activation.backward(grad_h)

        # State path.
        grad_states = self.state_encoder.backward(grad_sum)
        # Action path (per-type encoders).
        grad_actions = np.zeros_like(self._actions, dtype=float)
        for t, encoder in enumerate(self.action_encoders):
            mask = self._type_indices == t
            if np.any(mask):
                encoder.forward(self._actions[mask])
                grad_actions[mask] = encoder.backward(grad_sum[mask])
        return grad_states, grad_actions
