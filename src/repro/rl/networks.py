"""GCN actor and critic networks (Figure 3 of the paper).

Both networks share the same skeleton: a first fully-connected layer shared
by every component, a stack of graph-convolution layers whose weights are
shared across nodes, and component-type-specific heads.  The actor decodes
per-node hidden features into bounded action vectors; the critic encodes the
actions, aggregates over the graph and predicts the scalar reward.

Every forward/backward accepts either a single graph (``(n, F)`` states) or
a stacked batch (``(B, n, F)``) sharing one topology — the batched form is
what turns a replay-batch critic update into a handful of large matmuls.
The per-type heads gather their nodes once in ``forward`` and keep the
gathered inputs cached inside each :class:`~repro.nn.layers.Linear`, so
``backward`` never re-runs a forward pass to restore layer state.

Setting ``use_gcn=False`` replaces the graph aggregation with the identity
matrix, which yields the paper's NG-RL ablation (same capacity, no topology
information).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.components import MAX_ACTION_DIM, TYPE_ORDER
from repro.nn.gcn import GCNLayer
from repro.nn.layers import Linear, ReLU, Tanh
from repro.nn.module import Module

NUM_TYPES = len(TYPE_ORDER)


def _identity_adjacency(num_nodes: int) -> np.ndarray:
    return np.eye(num_nodes)


@lru_cache(maxsize=64)
def _type_groups_cached(type_key: Tuple[int, ...]) -> Tuple[Tuple[int, np.ndarray], ...]:
    indices = np.asarray(type_key, dtype=int)
    return tuple(
        (t, np.flatnonzero(indices == t))
        for t in range(NUM_TYPES)
        if t in type_key
    )


def _type_groups(type_indices) -> Tuple[Tuple[int, np.ndarray], ...]:
    """Non-empty ``(type, node_indices)`` groups, cached per node typing.

    Gathering rows through a cached integer index array selects exactly the
    same rows in the same order as a freshly built boolean mask, without
    rebuilding four masks on every forward/backward call.
    """
    return _type_groups_cached(tuple(int(t) for t in type_indices))


class GCNActor(Module):
    """Actor network mapping per-node states to per-node actions in [-1, 1]."""

    def __init__(
        self,
        state_dim: int,
        hidden_dim: int = 64,
        num_gcn_layers: int = 7,
        action_dim: int = MAX_ACTION_DIM,
        use_gcn: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.state_dim = state_dim
        self.hidden_dim = hidden_dim
        self.action_dim = action_dim
        self.use_gcn = use_gcn
        self.input_layer = Linear(state_dim, hidden_dim, rng, name="actor.input")
        self.input_activation = ReLU()
        self.gcn_layers = [
            GCNLayer(hidden_dim, hidden_dim, "relu", rng, name=f"actor.gcn{i}")
            for i in range(num_gcn_layers)
        ]
        # One decoder per component type (NMOS, PMOS, R, C).
        self.decoders = [
            Linear(hidden_dim, action_dim, rng, name=f"actor.decoder{i}")
            for i in range(NUM_TYPES)
        ]
        self.output_activation = Tanh()
        self._groups: Optional[tuple] = None
        self._hidden_shape: Optional[Tuple[int, ...]] = None

    def forward(
        self,
        states: np.ndarray,
        adjacency: np.ndarray,
        type_indices: Sequence[int],
    ) -> np.ndarray:
        """Compute actions for every node.

        Args:
            states: Node state matrix ``(n, state_dim)`` or a stacked batch
                ``(B, n, state_dim)``.
            adjacency: Normalised adjacency ``(n, n)`` (shared by the whole
                batch in the stacked case).
            type_indices: Component-type index (into ``TYPE_ORDER``) per node.

        Returns:
            Action tensor matching the leading axes of ``states``, i.e.
            ``(n, action_dim)`` or ``(B, n, action_dim)``, entries in
            ``[-1, 1]``.
        """
        states = np.asarray(states, dtype=float)
        n = states.shape[-2]
        propagation = adjacency if self.use_gcn else _identity_adjacency(n)
        h = self.input_activation(self.input_layer(states))
        for layer in self.gcn_layers:
            h = layer(h, propagation)
        self._hidden_shape = h.shape
        self._groups = _type_groups(type_indices)
        pre_action = np.zeros(h.shape[:-1] + (self.action_dim,))
        for t, rows in self._groups:
            # The gathered rows stay cached inside the decoder, so the
            # backward pass can reuse them without a second forward.
            pre_action[..., rows, :] = self.decoders[t](h[..., rows, :])
        return self.output_activation(pre_action)

    def backward(self, grad_actions: np.ndarray) -> np.ndarray:
        """Backpropagate a gradient w.r.t. the actions into all parameters."""
        if self._hidden_shape is None or self._groups is None:
            raise RuntimeError("backward called before forward")
        grad_pre = self.output_activation.backward(grad_actions)
        grad_h = np.zeros(self._hidden_shape)
        for t, rows in self._groups:
            grad_h[..., rows, :] = self.decoders[t].backward(
                grad_pre[..., rows, :]
            )
        for layer in reversed(self.gcn_layers):
            grad_h = layer.backward(grad_h)
        grad_h = self.input_activation.backward(grad_h)
        return self.input_layer.backward(grad_h)


class GCNCritic(Module):
    """Critic network predicting the reward of a (state, action) graph."""

    def __init__(
        self,
        state_dim: int,
        hidden_dim: int = 64,
        num_gcn_layers: int = 7,
        action_dim: int = MAX_ACTION_DIM,
        use_gcn: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng(1)
        self.state_dim = state_dim
        self.hidden_dim = hidden_dim
        self.action_dim = action_dim
        self.use_gcn = use_gcn
        self.state_encoder = Linear(state_dim, hidden_dim, rng, name="critic.state")
        # Component-type-specific action encoders (Figure 3, "unique weight").
        self.action_encoders = [
            Linear(action_dim, hidden_dim, rng, name=f"critic.action{i}")
            for i in range(NUM_TYPES)
        ]
        self.input_activation = ReLU()
        self.gcn_layers = [
            GCNLayer(hidden_dim, hidden_dim, "relu", rng, name=f"critic.gcn{i}")
            for i in range(num_gcn_layers)
        ]
        self.output_layer = Linear(hidden_dim, 1, rng, name="critic.output")
        self._groups: Optional[tuple] = None
        self._action_shape: Optional[Tuple[int, ...]] = None
        self._batched: bool = False
        self._num_nodes: int = 0

    def forward(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        adjacency: np.ndarray,
        type_indices: Sequence[int],
    ) -> Union[float, np.ndarray]:
        """Predict the reward of a full set of node actions.

        Args:
            states: ``(n, state_dim)`` node states, or ``(B, n, state_dim)``.
            actions: ``(n, action_dim)`` node actions, or
                ``(B, n, action_dim)``.
            adjacency: Normalised adjacency ``(n, n)``.
            type_indices: Component-type index per node.

        Returns:
            A scalar ``float`` for single-graph input, or a ``(B,)`` array of
            per-design value predictions for a stacked batch.
        """
        states = np.asarray(states, dtype=float)
        actions = np.asarray(actions, dtype=float)
        n = states.shape[-2]
        self._num_nodes = n
        self._batched = states.ndim == 3
        self._action_shape = actions.shape
        self._groups = _type_groups(type_indices)
        propagation = adjacency if self.use_gcn else _identity_adjacency(n)

        encoded = self.state_encoder(states)
        for t, rows in self._groups:
            # Cached inside the encoder for the backward pass; added
            # straight into the (freshly written) state encoding.
            encoded[..., rows, :] += self.action_encoders[t](
                actions[..., rows, :]
            )
        h = self.input_activation(encoded)
        for layer in self.gcn_layers:
            h = layer(h, propagation)
        node_values = self.output_layer(h)
        if self._batched:
            return node_values.mean(axis=(1, 2))
        return float(node_values.mean())

    def backward(
        self, grad_q: Union[float, np.ndarray] = 1.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Backpropagate the gradient ``dL/dQ``.

        Args:
            grad_q: Scalar for single-graph input, or ``(B,)`` array with one
                loss gradient per design of the stacked batch.

        Returns:
            ``(grad_states, grad_actions)`` — the gradient of the predicted
            value w.r.t. the input states and actions, matching the input
            shapes.  The action gradient is what DDPG feeds into the actor
            update.
        """
        if self._action_shape is None or self._groups is None:
            raise RuntimeError("backward called before forward")
        n = self._num_nodes
        if self._batched:
            grad_q = np.asarray(grad_q, dtype=float).reshape(-1)
            grad_node_values = np.tile((grad_q / n)[:, None, None], (1, n, 1))
        else:
            grad_node_values = np.full((n, 1), float(grad_q) / n)
        grad_h = self.output_layer.backward(grad_node_values)
        for layer in reversed(self.gcn_layers):
            grad_h = layer.backward(grad_h)
        grad_sum = self.input_activation.backward(grad_h)

        # State path.
        grad_states = self.state_encoder.backward(grad_sum)
        # Action path (per-type encoders, inputs cached at forward time).
        grad_actions = np.zeros(self._action_shape)
        for t, rows in self._groups:
            grad_actions[..., rows, :] = self.action_encoders[t].backward(
                grad_sum[..., rows, :]
            )
        return grad_states, grad_actions
