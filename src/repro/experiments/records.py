"""Result records and aggregation helpers for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


@dataclass
class RunRecord:
    """Result of one optimization run (one method, circuit, node, seed).

    Attributes:
        method: Method registry name (``"gcn_rl"``, ``"bo"``, ...).
        circuit: Circuit registry name.
        technology: Technology node name.
        seed: Random seed of the run.
        steps: Simulation budget used.
        best_reward: Best FoM found.
        best_metrics: Raw metrics of the best design.
        rewards: Per-step rewards (for learning curves).
        extra: Free-form annotations (e.g. transfer source).
        wall_time_s: Wall-clock seconds the optimization loop consumed
            (accumulated across checkpoint/resume cycles), so learning
            curves can be plotted against wall-clock as well as sim-count.
        step_evaluations: Simulator evaluations per ask/tell driver step,
            in order (``sum(step_evaluations) == len(rewards)``).
    """

    method: str
    circuit: str
    technology: str
    seed: int
    steps: int
    best_reward: float
    best_metrics: Dict[str, float] = field(default_factory=dict)
    rewards: List[float] = field(default_factory=list)
    extra: Dict[str, str] = field(default_factory=dict)
    wall_time_s: float = 0.0
    step_evaluations: List[int] = field(default_factory=list)

    def best_so_far(self) -> np.ndarray:
        """Running maximum of the reward."""
        if not self.rewards:
            return np.asarray([self.best_reward])
        return np.maximum.accumulate(np.asarray(self.rewards, dtype=float))

    def to_dict(self) -> Dict:
        """JSON-serializable dict form (exact round-trip via `from_dict`).

        Numpy scalars are coerced to plain floats — ``float(np.float64(x))``
        is value-preserving, so serialization never perturbs results.
        """
        return {
            "method": self.method,
            "circuit": self.circuit,
            "technology": self.technology,
            "seed": int(self.seed),
            "steps": int(self.steps),
            "best_reward": float(self.best_reward),
            "best_metrics": {k: float(v) for k, v in self.best_metrics.items()},
            "rewards": [float(r) for r in self.rewards],
            "extra": dict(self.extra),
            "wall_time_s": float(self.wall_time_s),
            "step_evaluations": [int(n) for n in self.step_evaluations],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunRecord":
        """Rebuild a record from its :meth:`to_dict` form."""
        return cls(
            method=data["method"],
            circuit=data["circuit"],
            technology=data["technology"],
            seed=int(data["seed"]),
            steps=int(data["steps"]),
            best_reward=float(data["best_reward"]),
            best_metrics={
                k: float(v) for k, v in data.get("best_metrics", {}).items()
            },
            rewards=[float(r) for r in data.get("rewards", [])],
            extra=dict(data.get("extra", {})),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            step_evaluations=[int(n) for n in data.get("step_evaluations", [])],
        )


@dataclass
class AggregateResult:
    """Mean and standard deviation of the best FoM across seeds."""

    mean: float
    std: float
    count: int
    best_metrics: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        if self.count <= 1:
            return f"{self.mean:.2f}"
        return f"{self.mean:.2f} ± {self.std:.2f}"


def aggregate(records: Sequence[RunRecord]) -> AggregateResult:
    """Aggregate several runs of the same configuration."""
    if not records:
        return AggregateResult(mean=float("nan"), std=float("nan"), count=0)
    values = np.asarray([r.best_reward for r in records], dtype=float)
    best = max(records, key=lambda r: r.best_reward)
    return AggregateResult(
        mean=float(np.mean(values)),
        std=float(np.std(values)),
        count=len(records),
        best_metrics=dict(best.best_metrics),
    )


def mean_learning_curve(
    records: Sequence[RunRecord], length: Optional[int] = None
) -> np.ndarray:
    """Average best-so-far curve across runs, truncated to a common length."""
    if not records:
        return np.asarray([])
    curves = [r.best_so_far() for r in records]
    if length is None:
        length = min(len(c) for c in curves)
    curves = [c[:length] for c in curves if len(c) >= length]
    return np.mean(np.vstack(curves), axis=0)


def max_learning_curve(
    records: Sequence[RunRecord], length: Optional[int] = None
) -> np.ndarray:
    """Per-step maximum best-so-far curve across runs (as plotted in Fig. 5)."""
    if not records:
        return np.asarray([])
    curves = [r.best_so_far() for r in records]
    if length is None:
        length = min(len(c) for c in curves)
    curves = [c[:length] for c in curves if len(c) >= length]
    return np.max(np.vstack(curves), axis=0)
