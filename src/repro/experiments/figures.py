"""Builders for the learning-curve figures of the paper (Figures 5, 7, 8).

Plotting libraries are not available offline, so each figure is produced as a
:class:`FigureData` object holding the numeric series (step index vs. best
FoM so far) plus helpers to render an ASCII sketch and to export CSV.  The
series are exactly what the paper plots; a user with matplotlib installed can
plot them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.config import CIRCUIT_LABELS, METHOD_LABELS, ExperimentSettings
from repro.experiments.records import max_learning_curve, mean_learning_curve
from repro.experiments.runner import run_methods
from repro.experiments.transfer import (
    technology_transfer_experiment,
    topology_transfer_experiment,
)
from repro.store import RunStore


@dataclass
class FigureData:
    """Numeric data of one figure panel: named best-so-far curves."""

    title: str
    xlabel: str
    ylabel: str
    series: Dict[str, np.ndarray] = field(default_factory=dict)

    def add_series(self, name: str, values: np.ndarray) -> None:
        """Add one named curve."""
        self.series[name] = np.asarray(values, dtype=float)

    def to_csv(self) -> str:
        """Export all curves as CSV text (step, one column per series)."""
        if not self.series:
            return "step\n"
        length = max(len(v) for v in self.series.values())
        names = list(self.series)
        lines = ["step," + ",".join(names)]
        for i in range(length):
            row = [str(i)]
            for name in names:
                values = self.series[name]
                row.append(f"{values[min(i, len(values) - 1)]:.6g}")
            lines.append(",".join(row))
        return "\n".join(lines)

    def render_ascii(self, width: int = 60, height: int = 12) -> str:
        """Render a coarse ASCII plot of all curves (for terminal reports)."""
        if not self.series:
            return f"{self.title}: (no data)"
        all_values = np.concatenate([v for v in self.series.values() if len(v)])
        lo, hi = float(np.min(all_values)), float(np.max(all_values))
        if hi <= lo:
            hi = lo + 1.0
        grid = [[" "] * width for _ in range(height)]
        markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        legend = []
        for idx, (name, values) in enumerate(self.series.items()):
            marker = markers[idx % len(markers)]
            legend.append(f"{marker}={name}")
            if len(values) == 0:
                continue
            xs = np.linspace(0, width - 1, len(values)).astype(int)
            ys = ((values - lo) / (hi - lo) * (height - 1)).astype(int)
            for x, y in zip(xs, ys):
                grid[height - 1 - y][x] = marker
        lines = [f"{self.title}  [{self.ylabel}: {lo:.2f} .. {hi:.2f}]"]
        lines.extend("|" + "".join(row) for row in grid)
        lines.append("+" + "-" * width + f"> {self.xlabel}")
        lines.append("legend: " + ", ".join(legend))
        return "\n".join(lines)


def figure5_learning_curves(
    settings: Optional[ExperimentSettings] = None,
    store: Optional[RunStore] = None,
) -> Dict[str, FigureData]:
    """Figure 5: best-FoM learning curves of every method on each circuit."""
    settings = settings or ExperimentSettings()
    methods = [m for m in settings.methods if m != "human"]
    figures: Dict[str, FigureData] = {}
    for circuit in settings.circuits:
        figure = FigureData(
            title=f"Figure 5 — {CIRCUIT_LABELS[circuit]}",
            xlabel="simulation step",
            ylabel="max FoM",
        )
        results = run_methods(methods, circuit, settings, store=store)
        for method in methods:
            curve = max_learning_curve(results[method])
            figure.add_series(METHOD_LABELS[method], curve)
        figures[circuit] = figure
    return figures


def figure7_technology_transfer_curves(
    settings: Optional[ExperimentSettings] = None,
    circuit: str = "three_tia",
    store: Optional[RunStore] = None,
) -> Dict[str, FigureData]:
    """Figure 7: transfer vs no-transfer learning curves per target node."""
    settings = settings or ExperimentSettings()
    experiment = technology_transfer_experiment(circuit, settings, store=store)
    figures: Dict[str, FigureData] = {}
    for target in settings.transfer_targets:
        figure = FigureData(
            title=f"Figure 7 — {CIRCUIT_LABELS[circuit]} 180nm -> {target}",
            xlabel="simulation step",
            ylabel="max FoM",
        )
        figure.add_series(
            "Transfer", mean_learning_curve(experiment.transfer[target])
        )
        figure.add_series(
            "No transfer", mean_learning_curve(experiment.no_transfer[target])
        )
        figures[target] = figure
    return figures


def figure8_topology_transfer_curves(
    settings: Optional[ExperimentSettings] = None,
    store: Optional[RunStore] = None,
) -> Dict[str, FigureData]:
    """Figure 8: topology-transfer learning curves for both directions."""
    settings = settings or ExperimentSettings()
    directions = [("two_tia", "three_tia"), ("three_tia", "two_tia")]
    figures: Dict[str, FigureData] = {}
    for source, target in directions:
        experiment = topology_transfer_experiment(source, target, settings, store=store)
        key = f"{source}_to_{target}"
        figure = FigureData(
            title=(
                f"Figure 8 — {CIRCUIT_LABELS[source]} -> {CIRCUIT_LABELS[target]}"
            ),
            xlabel="simulation step",
            ylabel="max FoM",
        )
        figure.add_series(
            "GCN-RL transfer", mean_learning_curve(experiment.gcn_transfer)
        )
        figure.add_series(
            "NG-RL transfer", mean_learning_curve(experiment.ng_transfer)
        )
        figure.add_series(
            "No transfer", mean_learning_curve(experiment.no_transfer)
        )
        figures[key] = figure
    return figures
