"""Experiment settings with environment-variable overrides.

The paper runs 10,000 simulation steps per method and 5-hour BO budgets; this
reproduction keeps every experiment's *protocol* identical but scales the step
budgets so the whole suite runs on a laptop CPU in minutes.  Budgets can be
raised towards the paper's scale through environment variables:

* ``REPRO_STEPS`` — per-method search budget for Tables I–III / Figure 5.
* ``REPRO_SEEDS`` — number of independent runs per configuration.
* ``REPRO_PRETRAIN_STEPS`` — source-task training budget for transfer.
* ``REPRO_TRANSFER_STEPS`` — fine-tuning budget (paper: 300 = 100 warm-up +
  200 exploration).
* ``REPRO_WARMUP_FRACTION`` — fraction of the budget used as RL warm-up.
* ``REPRO_EVAL_BACKEND`` / ``REPRO_EVAL_WORKERS`` / ``REPRO_EVAL_CACHE`` —
  evaluator stack used for every simulator call (see
  :class:`repro.eval.EvaluatorConfig`).
* ``REPRO_STORE_BACKEND`` / ``REPRO_STORE_DIR`` — persistent run store every
  completed run is written to (see :mod:`repro.store`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List

from repro.eval import BACKENDS, EvaluatorConfig
from repro.store import STORE_BACKENDS, RunStore, open_run_store


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return max(int(value), 1)
    except ValueError:
        return default


def _env_nonneg_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return max(int(value), 0)
    except ValueError:
        return default


def _env_choice(name: str, default: str, choices) -> str:
    value = os.environ.get(name)
    if value in choices:
        return value
    return default


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        return default


def _env_list(name: str, default: List[str]) -> List[str]:
    value = os.environ.get(name)
    if not value:
        return list(default)
    items = [item.strip() for item in value.split(",") if item.strip()]
    return items or list(default)


@dataclass
class ExperimentSettings:
    """Budgets and seeds shared by the experiment harness.

    Attributes:
        steps: Simulation budget per optimization run (paper: 10,000).
        seeds: Number of repeated runs per configuration (paper: 3).
        pretrain_steps: Source-task budget for transfer experiments.
        transfer_steps: Fine-tuning budget on the target task (paper: 300).
        transfer_warmup: Warm-up episodes inside the transfer budget
            (paper: 100).
        warmup_fraction: RL warm-up fraction of ``steps``.
        circuits: Circuits included in Table I / Figure 5.
        methods: Methods included in Table I / Figure 5.
        technology: Default technology node (paper designs at 180nm).
        transfer_targets: Target nodes of Table IV / Figure 7.
        eval_backend: Evaluation backend (``local``, ``thread``, ``process``,
            ``vectorized``).
        eval_workers: Worker-pool size; 0 means the machine's CPU count.
        eval_cache_size: LRU design-cache capacity; 0 disables caching.
        store_backend: Run-store backend (``memory``, ``jsonl``, ``sqlite``).
        store_dir: Run-store directory (required by the persistent backends).
    """

    steps: int = field(default_factory=lambda: _env_int("REPRO_STEPS", 80))
    seeds: int = field(default_factory=lambda: _env_int("REPRO_SEEDS", 2))
    pretrain_steps: int = field(
        default_factory=lambda: _env_int("REPRO_PRETRAIN_STEPS", 120)
    )
    transfer_steps: int = field(
        default_factory=lambda: _env_int("REPRO_TRANSFER_STEPS", 60)
    )
    transfer_warmup: int = field(
        default_factory=lambda: _env_int("REPRO_TRANSFER_WARMUP", 20)
    )
    warmup_fraction: float = field(
        default_factory=lambda: _env_float("REPRO_WARMUP_FRACTION", 0.33)
    )
    circuits: List[str] = field(
        default_factory=lambda: _env_list(
            "REPRO_CIRCUITS", ["two_tia", "two_volt", "three_tia", "ldo"]
        )
    )
    methods: List[str] = field(
        default_factory=lambda: _env_list(
            "REPRO_METHODS",
            ["human", "random", "es", "bo", "mace", "ng_rl", "gcn_rl"],
        )
    )
    technology: str = "180nm"
    transfer_targets: List[str] = field(
        default_factory=lambda: ["250nm", "130nm", "65nm", "45nm"]
    )
    eval_backend: str = field(
        default_factory=lambda: _env_choice("REPRO_EVAL_BACKEND", "local", BACKENDS)
    )
    eval_workers: int = field(
        default_factory=lambda: _env_nonneg_int("REPRO_EVAL_WORKERS", 0)
    )
    eval_cache_size: int = field(
        default_factory=lambda: _env_nonneg_int("REPRO_EVAL_CACHE", 0)
    )
    store_backend: str = field(
        default_factory=lambda: _env_choice(
            "REPRO_STORE_BACKEND", "memory", STORE_BACKENDS
        )
    )
    store_dir: str = field(default_factory=lambda: os.environ.get("REPRO_STORE_DIR", ""))

    def rl_warmup(self, steps: int) -> int:
        """Number of RL warm-up episodes for a given budget."""
        return max(5, min(int(steps * self.warmup_fraction), steps - 1))

    def evaluator_config(self) -> EvaluatorConfig:
        """The evaluator stack every run of this settings object uses."""
        return EvaluatorConfig(
            backend=self.eval_backend,
            max_workers=self.eval_workers or None,
            cache_size=self.eval_cache_size,
        )

    def build_run_store(self) -> RunStore:
        """Open the run store these settings describe (a fresh handle)."""
        return open_run_store(self.store_backend, self.store_dir or None)


#: Method display names as used in the paper's tables.
METHOD_LABELS = {
    "human": "Human",
    "random": "Random",
    "es": "ES",
    "bo": "BO",
    "mace": "MACE",
    "ng_rl": "NG-RL",
    "gcn_rl": "GCN-RL",
}

#: Circuit display names as used in the paper's tables.
CIRCUIT_LABELS = {
    "two_tia": "Two-TIA",
    "two_volt": "Two-Volt",
    "three_tia": "Three-TIA",
    "ldo": "LDO",
}
