"""Builders for every table in the paper's evaluation section.

Every builder accepts an optional ``store=`` (a :class:`~repro.store.RunStore`):
runs already present in the store are read back instead of re-simulated, and
fresh runs are written to it, so regenerating a table against a persistent
store is incremental across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.circuits.library import get_circuit
from repro.experiments.config import CIRCUIT_LABELS, METHOD_LABELS, ExperimentSettings
from repro.experiments.records import AggregateResult, RunRecord, aggregate
from repro.experiments.runner import run_method, run_methods
from repro.experiments.transfer import (
    technology_transfer_experiment,
    topology_transfer_experiment,
)
from repro.store import RunStore


@dataclass
class Table:
    """A generic labelled table of string cells (rendered as aligned text)."""

    title: str
    row_labels: List[str]
    column_labels: List[str]
    cells: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def set(self, row: str, column: str, value: str) -> None:
        """Set one cell."""
        self.cells.setdefault(row, {})[column] = value

    def get(self, row: str, column: str) -> str:
        """Read one cell (empty string if unset)."""
        return self.cells.get(row, {}).get(column, "")

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [max(len(r) for r in self.row_labels + [self.title])]
        for column in self.column_labels:
            width = max(
                [len(column)] + [len(self.get(r, column)) for r in self.row_labels]
            )
            widths.append(width)
        header = [self.title.ljust(widths[0])] + [
            c.rjust(w) for c, w in zip(self.column_labels, widths[1:])
        ]
        lines = ["  ".join(header), "-" * (sum(widths) + 2 * len(widths))]
        for row in self.row_labels:
            cells = [row.ljust(widths[0])] + [
                self.get(row, c).rjust(w)
                for c, w in zip(self.column_labels, widths[1:])
            ]
            lines.append("  ".join(cells))
        return "\n".join(lines)


# --- Table I -------------------------------------------------------------------------


def table1_fom_comparison(
    settings: Optional[ExperimentSettings] = None,
    store: Optional[RunStore] = None,
) -> Table:
    """Table I: FoM of every method on the four benchmark circuits."""
    settings = settings or ExperimentSettings()
    table = Table(
        title="Table I (FoM)",
        row_labels=[METHOD_LABELS[m] for m in settings.methods],
        column_labels=[CIRCUIT_LABELS[c] for c in settings.circuits],
    )
    for circuit in settings.circuits:
        results = run_methods(settings.methods, circuit, settings, store=store)
        for method in settings.methods:
            agg = aggregate(results[method])
            table.set(METHOD_LABELS[method], CIRCUIT_LABELS[circuit], str(agg))
    return table


# --- Tables II & III (metric breakdowns) ----------------------------------------------


def _metric_row(circuit_name: str, metrics: Dict[str, float]) -> Dict[str, str]:
    circuit = get_circuit(circuit_name)
    row = {}
    for definition in circuit.metric_definitions():
        value = metrics.get(definition.name)
        if value is None:
            row[definition.name] = "-"
        else:
            row[definition.name] = f"{value * definition.display_scale:.3g}"
    return row


def metric_breakdown_table(
    circuit_name: str,
    settings: Optional[ExperimentSettings] = None,
    title: str = "",
    store: Optional[RunStore] = None,
) -> Table:
    """Best-design metric breakdown for every method on one circuit."""
    settings = settings or ExperimentSettings()
    circuit = get_circuit(circuit_name)
    metric_defs = circuit.metric_definitions()
    column_labels = [f"{m.name} [{m.unit}]" for m in metric_defs] + ["FoM"]
    table = Table(
        title=title or f"Metrics ({CIRCUIT_LABELS[circuit_name]})",
        row_labels=[METHOD_LABELS[m] for m in settings.methods],
        column_labels=column_labels,
    )
    results = run_methods(settings.methods, circuit_name, settings, store=store)
    for method in settings.methods:
        agg = aggregate(results[method])
        best = max(results[method], key=lambda r: r.best_reward)
        row = _metric_row(circuit_name, best.best_metrics)
        for definition, label in zip(metric_defs, column_labels):
            table.set(METHOD_LABELS[method], label, row[definition.name])
        table.set(METHOD_LABELS[method], "FoM", str(agg))
    return table


#: The metric emphasised by each GCN-RL-k row of Table II.
TABLE2_EMPHASIS = {
    "GCN-RL-1": "bandwidth",
    "GCN-RL-2": "gain",
    "GCN-RL-3": "power",
    "GCN-RL-4": "noise",
    "GCN-RL-5": "peaking",
}


def table2_two_tia(
    settings: Optional[ExperimentSettings] = None,
    emphasis_factor: float = 10.0,
    store: Optional[RunStore] = None,
) -> Table:
    """Table II: Two-TIA metric breakdown plus the weighted-FoM variants.

    The last five rows re-run GCN-RL with a 10x larger weight on one metric
    each (bandwidth, gain, power, noise, peaking) and no hard spec, exactly as
    described in Section IV-A of the paper.
    """
    settings = settings or ExperimentSettings()
    base = metric_breakdown_table(
        "two_tia", settings, title="Table II (Two-TIA)", store=store
    )
    circuit = get_circuit("two_tia")
    metric_defs = circuit.metric_definitions()
    column_labels = [f"{m.name} [{m.unit}]" for m in metric_defs]

    for row_name, metric in TABLE2_EMPHASIS.items():
        base.row_labels.append(row_name)
        records = []
        for seed in range(settings.seeds):
            records.append(
                run_method(
                    "gcn_rl",
                    "two_tia",
                    technology=settings.technology,
                    steps=settings.steps,
                    seed=seed,
                    settings=settings,
                    weight_overrides={metric: emphasis_factor},
                    apply_spec=False,
                    store=store,
                )
            )
        best = max(records, key=lambda r: r.best_reward)
        row = _metric_row("two_tia", best.best_metrics)
        for definition, label in zip(metric_defs, column_labels):
            base.set(row_name, label, row[definition.name])
        base.set(row_name, "FoM", "-")
    return base


def table3_two_volt(
    settings: Optional[ExperimentSettings] = None,
    store: Optional[RunStore] = None,
) -> Table:
    """Table III: Two-Volt metric breakdown for every method."""
    return metric_breakdown_table(
        "two_volt", settings, title="Table III (Two-Volt)", store=store
    )


# --- Table IV (technology transfer) -----------------------------------------------------


def table4_technology_transfer(
    settings: Optional[ExperimentSettings] = None,
    store: Optional[RunStore] = None,
) -> Table:
    """Table IV: transfer from 180nm to other nodes on Two-TIA and Three-TIA."""
    settings = settings or ExperimentSettings()
    rows = []
    table = Table(
        title="Table IV (tech transfer)",
        row_labels=rows,
        column_labels=list(settings.transfer_targets),
    )
    for circuit in ("two_tia", "three_tia"):
        experiment = technology_transfer_experiment(circuit, settings, store=store)
        label_base = CIRCUIT_LABELS[circuit]
        no_transfer_row = f"{label_base} (no transfer)"
        transfer_row = f"{label_base} (transfer from 180nm)"
        rows.extend([no_transfer_row, transfer_row])
        for target in settings.transfer_targets:
            table.set(
                no_transfer_row, target, str(aggregate(experiment.no_transfer[target]))
            )
            table.set(
                transfer_row, target, str(aggregate(experiment.transfer[target]))
            )
    return table


# --- Table V (topology transfer) ---------------------------------------------------------


def table5_topology_transfer(
    settings: Optional[ExperimentSettings] = None,
    store: Optional[RunStore] = None,
) -> Table:
    """Table V: knowledge transfer between the Two-TIA and Three-TIA topologies."""
    settings = settings or ExperimentSettings()
    directions = [("two_tia", "three_tia"), ("three_tia", "two_tia")]
    column_labels = [
        f"{CIRCUIT_LABELS[src]} -> {CIRCUIT_LABELS[dst]}" for src, dst in directions
    ]
    table = Table(
        title="Table V (topology transfer)",
        row_labels=["No Transfer", "NG-RL Transfer", "GCN-RL Transfer"],
        column_labels=column_labels,
    )
    for (source, target), column in zip(directions, column_labels):
        experiment = topology_transfer_experiment(source, target, settings, store=store)
        table.set("No Transfer", column, str(aggregate(experiment.no_transfer)))
        table.set("NG-RL Transfer", column, str(aggregate(experiment.ng_transfer)))
        table.set("GCN-RL Transfer", column, str(aggregate(experiment.gcn_transfer)))
    return table
