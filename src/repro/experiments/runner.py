"""Run one optimization method on one circuit, backed by a run store.

Tables and figures share runs: Table I and Figure 5 need exactly the same
experiments, and Table II reuses the Two-TIA runs of Table I.  Every
completed run is therefore written to a :class:`~repro.store.RunStore` under
its canonical :class:`~repro.store.RunKey`; an identical request is served
from the store instead of re-simulating.  The default store is an in-process
:class:`~repro.store.MemoryStore` (the behaviour of the old ``_RUN_CACHE``
dict); passing ``store=`` a :class:`~repro.store.JsonlStore` or
:class:`~repro.store.SqliteStore` makes runs durable across processes, which
is what the :class:`~repro.store.Campaign` orchestrator builds on.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.circuits.library import get_circuit
from repro.env.environment import SizingEnvironment
from repro.env.fom import default_fom_config
from repro.eval import EvaluatorConfig
from repro.experiments.config import ExperimentSettings
from repro.experiments.records import RunRecord
from repro.optim.registry import get_optimizer
from repro.rl.agent import AgentConfig, GCNRLAgent
from repro.store import MemoryStore, RunKey, RunStore, make_run_key

#: Methods implemented by the runner.
RL_METHODS = ("gcn_rl", "ng_rl")
BLACK_BOX_METHODS = ("random", "es", "bo", "mace")
ALL_METHODS = ("human",) + BLACK_BOX_METHODS + RL_METHODS

#: Process-wide default store (what the old ``_RUN_CACHE`` dict used to be).
_DEFAULT_STORE = MemoryStore()


def default_run_store() -> RunStore:
    """The process-wide in-memory store used when no ``store=`` is given."""
    return _DEFAULT_STORE


def clear_run_cache() -> None:
    """Drop all runs from the default in-process store (useful in tests)."""
    _DEFAULT_STORE.clear()


def build_environment(
    circuit_name: str,
    technology: str,
    weight_overrides: Optional[Mapping[str, float]] = None,
    apply_spec: bool = True,
    transferable_state: bool = False,
    evaluator_config: Optional[EvaluatorConfig] = None,
) -> SizingEnvironment:
    """Construct the standard experiment environment for a circuit."""
    circuit = get_circuit(circuit_name, technology)
    evaluator = (evaluator_config or EvaluatorConfig()).build(circuit)
    fom = default_fom_config(
        circuit,
        weight_overrides=weight_overrides,
        apply_spec=apply_spec,
        evaluator=evaluator,
    )
    return SizingEnvironment(
        circuit,
        fom_config=fom,
        transferable_state=transferable_state,
        evaluator=evaluator,
    )


def default_agent_config(
    steps: int, settings: ExperimentSettings, use_gcn: bool
) -> AgentConfig:
    """Agent hyper-parameters used throughout the experiment harness."""
    return AgentConfig(
        use_gcn=use_gcn,
        warmup=settings.rl_warmup(steps),
        num_gcn_layers=4,
        hidden_dim=48,
    )


def run_key_for(
    method: str,
    circuit_name: str,
    technology: str = "180nm",
    steps: int = 80,
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
    weight_overrides: Optional[Mapping[str, float]] = None,
    apply_spec: bool = True,
    evaluator_config: Optional[EvaluatorConfig] = None,
) -> RunKey:
    """Canonical store key of the run :func:`run_method` would produce.

    The key must cover every setting that can change the produced record:
    besides the obvious (method, circuit, node, budget, seed), that is the
    canonicalised weight overrides, the spec toggle, the evaluator stack,
    and — for the RL methods — the warm-up schedule the settings object
    implies.  Leaving any of them out would let two different configurations
    alias to the same stored record.
    """
    settings = settings or ExperimentSettings()
    evaluator_config = evaluator_config or settings.evaluator_config()
    extra = {}
    if method in RL_METHODS:
        extra["warmup"] = settings.rl_warmup(steps)
    return make_run_key(
        method,
        circuit_name,
        technology,
        steps,
        seed,
        weight_overrides=weight_overrides,
        apply_spec=apply_spec,
        evaluator_key=evaluator_config.cache_key(),
        extra=extra,
    )


def run_method(
    method: str,
    circuit_name: str,
    technology: str = "180nm",
    steps: int = 80,
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
    weight_overrides: Optional[Mapping[str, float]] = None,
    apply_spec: bool = True,
    use_cache: bool = True,
    evaluator_config: Optional[EvaluatorConfig] = None,
    store: Optional[RunStore] = None,
) -> RunRecord:
    """Run one sizing method and return its :class:`RunRecord`.

    Args:
        method: One of ``human``, ``random``, ``es``, ``bo``, ``mace``,
            ``ng_rl`` or ``gcn_rl``.
        circuit_name: Benchmark circuit registry name.
        technology: Technology node name.
        steps: Simulation budget (ignored for ``human``).
        seed: Random seed.
        settings: Experiment settings (warm-up schedule for the RL agents,
            default evaluator stack).
        weight_overrides: Optional FoM weight multipliers (Table II variants).
        apply_spec: Enforce the circuit's hard spec in the FoM.
        use_cache: Reuse a previous identical run from the store if present.
        evaluator_config: Evaluator stack override; defaults to the one in
            ``settings``.
        store: Run store to read/write.  Defaults to the process-wide
            in-memory store; pass a persistent backend to make runs durable.
            An explicitly given store is always written to (even with
            ``use_cache=False``, which only disables *reading*).
    """
    settings = settings or ExperimentSettings()
    evaluator_config = evaluator_config or settings.evaluator_config()
    key = run_key_for(
        method,
        circuit_name,
        technology=technology,
        steps=steps,
        seed=seed,
        settings=settings,
        weight_overrides=weight_overrides,
        apply_spec=apply_spec,
        evaluator_config=evaluator_config,
    )
    target_store = store if store is not None else _DEFAULT_STORE
    if use_cache:
        cached = target_store.get(key)
        if cached is not None:
            return cached

    environment = build_environment(
        circuit_name,
        technology,
        weight_overrides,
        apply_spec,
        evaluator_config=evaluator_config,
    )

    try:
        if method == "human":
            result = environment.evaluate_sizing(environment.circuit.expert_sizing())
            record = RunRecord(
                method=method,
                circuit=circuit_name,
                technology=technology,
                seed=seed,
                steps=1,
                best_reward=result.reward,
                best_metrics=dict(result.metrics),
                rewards=[result.reward],
            )
        elif method in RL_METHODS:
            config = default_agent_config(steps, settings, use_gcn=(method == "gcn_rl"))
            agent = GCNRLAgent(environment, config=config, seed=seed)
            agent.train(steps)
            record = RunRecord(
                method=method,
                circuit=circuit_name,
                technology=technology,
                seed=seed,
                steps=steps,
                best_reward=environment.best_reward,
                best_metrics=dict(environment.best_metrics or {}),
                rewards=list(environment.rewards()),
            )
        elif method in BLACK_BOX_METHODS:
            optimizer = get_optimizer(method, environment, seed=seed)
            result = optimizer.run(steps)
            record = RunRecord(
                method=method,
                circuit=circuit_name,
                technology=technology,
                seed=seed,
                steps=steps,
                best_reward=result.best_reward,
                best_metrics=dict(result.best_metrics),
                rewards=list(result.rewards),
            )
        else:
            raise KeyError(f"unknown method {method!r}; expected one of {ALL_METHODS}")
    finally:
        # Release worker pools even when the optimizer/agent raises.
        environment.evaluator.close()

    if use_cache or store is not None:
        target_store.put(key, record)
    return record


def run_methods(
    methods,
    circuit_name: str,
    settings: Optional[ExperimentSettings] = None,
    technology: Optional[str] = None,
    steps: Optional[int] = None,
    seeds: Optional[int] = None,
    **kwargs,
) -> Dict[str, list]:
    """Run several methods across seeds; returns ``{method: [RunRecord, ...]}``.

    Extra keyword arguments (``store=``, ``use_cache=``, ...) are forwarded
    to :func:`run_method`.
    """
    settings = settings or ExperimentSettings()
    # Explicit None checks: 0 is a legitimate caller value for steps/seeds
    # (an empty sweep) and must not fall back to the settings defaults.
    if technology is None:
        technology = settings.technology
    if steps is None:
        steps = settings.steps
    if seeds is None:
        seeds = settings.seeds
    results: Dict[str, list] = {}
    for method in methods:
        records = []
        run_seeds = 1 if method == "human" else seeds
        for seed in range(run_seeds):
            records.append(
                run_method(
                    method,
                    circuit_name,
                    technology=technology,
                    steps=steps,
                    seed=seed,
                    settings=settings,
                    **kwargs,
                )
            )
        results[method] = records
    return results
