"""Run one optimization method on one circuit, backed by a run store.

Tables and figures share runs: Table I and Figure 5 need exactly the same
experiments, and Table II reuses the Two-TIA runs of Table I.  Every
completed run is therefore written to a :class:`~repro.store.RunStore` under
its canonical :class:`~repro.store.RunKey`; an identical request is served
from the store instead of re-simulating.  The default store is an in-process
:class:`~repro.store.MemoryStore` (the behaviour of the old ``_RUN_CACHE``
dict); passing ``store=`` a :class:`~repro.store.JsonlStore` or
:class:`~repro.store.SqliteStore` makes runs durable across processes, which
is what the :class:`~repro.store.Campaign` orchestrator builds on.

Every method — black-box baselines, the human expert and the RL agents —
executes through one :class:`~repro.experiments.driver.OptimizationDriver`
loop over the ask/tell :class:`~repro.optim.Strategy` protocol, so budget
accounting, per-step callbacks and mid-run checkpoint/resume behave
identically across methods.  With ``checkpoint_every`` set the driver files
periodic checkpoints under the run's key; a killed run re-requested later
resumes from its last checkpoint instead of restarting.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.circuits.library import get_circuit
from repro.env.environment import SizingEnvironment
from repro.env.fom import default_fom_config
from repro.eval import Evaluator, EvaluatorConfig
from repro.experiments.config import ExperimentSettings
from repro.experiments.driver import OptimizationDriver, StepCallback
from repro.experiments.records import RunRecord
from repro.optim.registry import get_strategy, list_optimizers
from repro.optim.strategy import Strategy
from repro.rl.agent import AgentConfig
from repro.store import MemoryStore, RunKey, RunStore, make_run_key

#: Methods needing the RL agent configuration (warm-up schedule in the key).
RL_METHODS = ("gcn_rl", "ng_rl")

#: All runnable methods — the strategy registry is the single source of truth.
ALL_METHODS = tuple(list_optimizers())

#: Process-wide default store (what the old ``_RUN_CACHE`` dict used to be).
_DEFAULT_STORE = MemoryStore()


def default_run_store() -> RunStore:
    """The process-wide in-memory store used when no ``store=`` is given."""
    return _DEFAULT_STORE


def clear_run_cache() -> None:
    """Drop all runs from the default in-process store (useful in tests)."""
    _DEFAULT_STORE.clear()


def build_environment(
    circuit_name: str,
    technology: str,
    weight_overrides: Optional[Mapping[str, float]] = None,
    apply_spec: bool = True,
    transferable_state: bool = False,
    evaluator_config: Optional[EvaluatorConfig] = None,
    evaluator: Optional[Evaluator] = None,
) -> SizingEnvironment:
    """Construct the standard experiment environment for a circuit.

    With ``evaluator`` given (a shared, typically unbound evaluator), the
    environment gets a per-circuit bound view of it instead of a private
    stack — campaigns and cluster workers use this to funnel every cell's
    traffic through one evaluator, whose caches and batches then span
    circuits; the view's ``close()`` is a no-op, so the shared evaluator
    survives the runner's per-run cleanup.
    """
    circuit = get_circuit(circuit_name, technology)
    if evaluator is not None:
        evaluator = evaluator.bind(circuit)
    else:
        evaluator = (evaluator_config or EvaluatorConfig()).build(circuit)
    fom = default_fom_config(
        circuit,
        weight_overrides=weight_overrides,
        apply_spec=apply_spec,
        evaluator=evaluator,
    )
    return SizingEnvironment(
        circuit,
        fom_config=fom,
        transferable_state=transferable_state,
        evaluator=evaluator,
    )


def default_agent_config(
    steps: int, settings: ExperimentSettings, use_gcn: bool
) -> AgentConfig:
    """Agent hyper-parameters used throughout the experiment harness."""
    return AgentConfig(
        use_gcn=use_gcn,
        warmup=settings.rl_warmup(steps),
        num_gcn_layers=4,
        hidden_dim=48,
    )


def build_strategy(
    method: str,
    environment: SizingEnvironment,
    steps: int,
    seed: int,
    settings: Optional[ExperimentSettings] = None,
) -> Strategy:
    """Instantiate the registered strategy the runner uses for ``method``.

    The RL methods receive the harness's standard agent configuration (the
    warm-up schedule depends on the budget and settings); every other
    strategy is constructed with its registry defaults.
    """
    settings = settings or ExperimentSettings()
    if method in RL_METHODS:
        config = default_agent_config(steps, settings, use_gcn=(method == "gcn_rl"))
        return get_strategy(method, environment, seed=seed, config=config)
    return get_strategy(method, environment, seed=seed)


def run_key_for(
    method: str,
    circuit_name: str,
    technology: str = "180nm",
    steps: int = 80,
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
    weight_overrides: Optional[Mapping[str, float]] = None,
    apply_spec: bool = True,
    evaluator_config: Optional[EvaluatorConfig] = None,
) -> RunKey:
    """Canonical store key of the run :func:`run_method` would produce.

    The key must cover every setting that can change the produced record:
    besides the obvious (method, circuit, node, budget, seed), that is the
    canonicalised weight overrides, the spec toggle, the evaluator stack,
    and — for the RL methods — the warm-up schedule the settings object
    implies.  Leaving any of them out would let two different configurations
    alias to the same stored record.
    """
    settings = settings or ExperimentSettings()
    evaluator_config = evaluator_config or settings.evaluator_config()
    extra = {}
    if method in RL_METHODS:
        extra["warmup"] = settings.rl_warmup(steps)
    return make_run_key(
        method,
        circuit_name,
        technology,
        steps,
        seed,
        weight_overrides=weight_overrides,
        apply_spec=apply_spec,
        evaluator_key=evaluator_config.cache_key(),
        extra=extra,
    )


def run_method(
    method: str,
    circuit_name: str,
    technology: str = "180nm",
    steps: int = 80,
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
    weight_overrides: Optional[Mapping[str, float]] = None,
    apply_spec: bool = True,
    use_cache: bool = True,
    evaluator_config: Optional[EvaluatorConfig] = None,
    evaluator: Optional[Evaluator] = None,
    store: Optional[RunStore] = None,
    checkpoint_every: int = 0,
    max_steps: Optional[int] = None,
    callbacks: Sequence[StepCallback] = (),
    pause_check: Optional[Callable[[], bool]] = None,
) -> Optional[RunRecord]:
    """Run one sizing method and return its :class:`RunRecord`.

    Args:
        method: Any registered strategy name (``human``, ``random``, ``es``,
            ``bo``, ``mace``, ``ng_rl``, ``gcn_rl``, ...).
        circuit_name: Benchmark circuit registry name.
        technology: Technology node name.
        steps: Simulation budget (ignored for ``human``).
        seed: Random seed.
        settings: Experiment settings (warm-up schedule for the RL agents,
            default evaluator stack).
        weight_overrides: Optional FoM weight multipliers (Table II variants).
        apply_spec: Enforce the circuit's hard spec in the FoM.
        use_cache: Reuse a previous identical run — or resume its mid-run
            checkpoint — from the store if present.
        evaluator_config: Evaluator stack override; defaults to the one in
            ``settings``.  Still determines the run-cache key when a shared
            ``evaluator`` is passed, so pass the config the shared evaluator
            was built from.
        evaluator: Shared evaluator to bind this run's environment to
            (see :func:`build_environment`); the per-run ``close()`` then
            leaves it alive for the caller's next run.
        store: Run store to read/write.  Defaults to the process-wide
            in-memory store; pass a persistent backend to make runs durable.
            An explicitly given store is always written to (even with
            ``use_cache=False``, which only disables *reading*).
        checkpoint_every: Persist the driver's full mid-run state to the
            store every K ask/tell steps (0 disables periodic checkpoints).
        max_steps: Pause the run after this many ask/tell steps, writing a
            final checkpoint, and return ``None`` (the record is incomplete).
            Re-running the same request later resumes from the checkpoint.
        callbacks: Per-step driver callbacks (progress streaming, telemetry,
            early stop); forwarded verbatim to the
            :class:`~repro.experiments.driver.OptimizationDriver`.  Note a
            run served straight from the store never steps, so callbacks
            only fire on actual execution.
        pause_check: Forwarded to the driver — polled before each ask/tell
            cycle; truthy pauses the run like ``max_steps`` (checkpoint
            written, ``None`` returned), an exception aborts it without
            touching the store (cluster lease-loss path).

    Returns:
        The completed :class:`RunRecord`, or ``None`` when ``max_steps``
        paused the run before the budget was spent.
    """
    settings = settings or ExperimentSettings()
    evaluator_config = evaluator_config or settings.evaluator_config()
    key = run_key_for(
        method,
        circuit_name,
        technology=technology,
        steps=steps,
        seed=seed,
        settings=settings,
        weight_overrides=weight_overrides,
        apply_spec=apply_spec,
        evaluator_config=evaluator_config,
    )
    target_store = store if store is not None else _DEFAULT_STORE
    if use_cache:
        cached = target_store.get(key)
        if cached is not None:
            return cached

    environment = build_environment(
        circuit_name,
        technology,
        weight_overrides,
        apply_spec,
        evaluator_config=evaluator_config,
        evaluator=evaluator,
    )

    try:
        budget = 1 if method == "human" else steps
        strategy = build_strategy(method, environment, steps, seed, settings)
        driver = OptimizationDriver(
            strategy,
            environment,
            budget=budget,
            store=target_store,
            run_key=key,
            checkpoint_every=checkpoint_every,
            callbacks=callbacks,
            resume=use_cache,
            pause_check=pause_check,
        )
        result = driver.run(max_steps=max_steps)
    finally:
        # Release worker pools even when the strategy/driver raises.  A
        # shared evaluator's bound view makes this a no-op, so campaign-wide
        # evaluators survive their cells.
        environment.evaluator.close()

    if not driver.finished:
        # Paused by max_steps: the checkpoint holds the partial state.
        return None

    record = RunRecord(
        method=method,
        circuit=circuit_name,
        technology=technology,
        seed=seed,
        steps=budget,
        best_reward=result.best_reward,
        best_metrics=dict(result.best_metrics),
        rewards=list(result.rewards),
        wall_time_s=result.wall_time_s,
        step_evaluations=list(result.step_evaluations),
    )
    if use_cache or store is not None:
        target_store.put(key, record)
        # The completed record supersedes any mid-run checkpoint.
        target_store.delete_checkpoint(key)
    return record


def run_methods(
    methods,
    circuit_name: str,
    settings: Optional[ExperimentSettings] = None,
    technology: Optional[str] = None,
    steps: Optional[int] = None,
    seeds: Optional[int] = None,
    **kwargs,
) -> Dict[str, list]:
    """Run several methods across seeds; returns ``{method: [RunRecord, ...]}``.

    Extra keyword arguments (``store=``, ``use_cache=``, ...) are forwarded
    to :func:`run_method`.
    """
    settings = settings or ExperimentSettings()
    # Explicit None checks: 0 is a legitimate caller value for steps/seeds
    # (an empty sweep) and must not fall back to the settings defaults.
    if technology is None:
        technology = settings.technology
    if steps is None:
        steps = settings.steps
    if seeds is None:
        seeds = settings.seeds
    results: Dict[str, list] = {}
    for method in methods:
        records = []
        run_seeds = 1 if method == "human" else seeds
        for seed in range(run_seeds):
            records.append(
                run_method(
                    method,
                    circuit_name,
                    technology=technology,
                    steps=steps,
                    seed=seed,
                    settings=settings,
                    **kwargs,
                )
            )
        results[method] = records
    return results
