"""The generic stepwise optimization driver every paper method runs on.

One :class:`OptimizationDriver` owns what the old per-method ``run(budget)``
monoliths each reimplemented: the ask/evaluate/tell loop, budget accounting,
wall-clock timing, per-step callbacks (progress, telemetry, early stop) and
— when bound to a :class:`~repro.store.RunStore` — periodic checkpointing of
``strategy.state_dict() + environment history + RNG state``, so a killed
campaign resumes *mid-run* bit-identically instead of re-simulating from
scratch.

Proposals are dispatched to the environment's batch entry points by kind
(flat vectors, RL action matrices, physical sizings), so every simulator
batch reaches the :class:`~repro.eval.Evaluator` in exactly the shape the
strategy asked for — parallelism and caching stay below the method, and
the batches are identical to the pre-redesign loops (verified by the
parity tests in ``tests/test_driver.py``).
"""

from __future__ import annotations

import logging
import pickle
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.env.environment import SizingEnvironment, StepResult
from repro.optim.base import OptimizationResult
from repro.optim.strategy import Proposal, Strategy
from repro.store.base import RunKey, RunStore

#: Checkpoint blob format version (bump on incompatible layout changes).
CHECKPOINT_VERSION = 1


@dataclass
class DriverStep:
    """Telemetry handed to per-step callbacks after each ask/tell cycle.

    Attributes:
        step: 1-based index of the completed ask/tell cycle.
        num_proposals: Evaluations consumed by this cycle.
        evaluated: Total evaluations consumed so far (across resumes).
        budget: The run's total evaluation budget.
        best_reward: Best FoM found so far.
        wall_time_s: Wall-clock seconds spent so far (across resumes).
    """

    step: int
    num_proposals: int
    evaluated: int
    budget: int
    best_reward: float
    wall_time_s: float


#: A per-step callback; returning a truthy value stops the run early.
StepCallback = Callable[[DriverStep], Optional[bool]]


class OptimizationDriver:
    """Drives one ask/tell :class:`Strategy` against one environment.

    Args:
        strategy: The optimization strategy to drive.
        environment: The environment evaluations go through; defaults to
            (and must be) the strategy's own environment — the optimization
            history lives there.
        budget: Total simulator evaluations the run may consume.
        store: Optional run store holding mid-run checkpoints.
        run_key: Canonical key the checkpoints are filed under (required for
            checkpointing/resume when ``store`` is given).
        checkpoint_every: Write a checkpoint every K ask/tell steps
            (0 disables periodic checkpoints; an interrupted ``run`` still
            writes one final checkpoint so ``max_steps`` workflows resume).
        callbacks: Per-step :data:`StepCallback` hooks; any truthy return
            value stops the run early (the run still counts as finished).
        resume: Load the stored checkpoint (if any) before the first step.
        pause_check: Optional zero-argument hook polled before every
            ask/tell cycle.  A truthy return *pauses* the run exactly like
            ``max_steps`` — checkpoint written, :attr:`finished` left False,
            partial result returned — letting an external supervisor (a
            cluster worker's SIGTERM handler) stop mid-run resumably.  An
            exception raised by the hook propagates *without* writing a
            checkpoint: that path signals the run no longer belongs to this
            process (see ``repro.cluster.LeaseLostError``) and its state on
            the store must not be touched.
    """

    def __init__(
        self,
        strategy: Strategy,
        environment: Optional[SizingEnvironment] = None,
        budget: int = 0,
        store: Optional[RunStore] = None,
        run_key: Optional[RunKey] = None,
        checkpoint_every: int = 0,
        callbacks: Sequence[StepCallback] = (),
        resume: bool = True,
        pause_check: Optional[Callable[[], bool]] = None,
    ):
        if environment is None:
            environment = strategy.environment
        if environment is not strategy.environment:
            raise ValueError(
                "the driver must run a strategy against its own environment "
                "(the optimization history is recorded there)"
            )
        self.strategy = strategy
        self.environment = environment
        self.budget = int(budget)
        self.store = store
        self.run_key = run_key
        self.checkpoint_every = int(checkpoint_every)
        self.callbacks: List[StepCallback] = list(callbacks)
        self.resume = resume
        self.pause_check = pause_check

        self.evaluated = 0
        self.step = 0
        self.step_evaluations: List[int] = []
        self.wall_time_s = 0.0
        #: True once the budget is exhausted, the strategy reports ``done``
        #: or a callback stopped the run; False after a ``max_steps`` pause.
        self.finished = False
        self.resumed = False
        self._resume_attempted = False
        self._checkpointed = False

    # --- persistence --------------------------------------------------------------
    def _checkpoint_state(self) -> bytes:
        payload = {
            "version": CHECKPOINT_VERSION,
            "strategy": self.strategy.state_dict(),
            "environment": self.environment.state_dict(),
            "evaluated": int(self.evaluated),
            "step": int(self.step),
            "step_evaluations": list(self.step_evaluations),
            "wall_time_s": float(self.wall_time_s),
        }
        return pickle.dumps(payload)

    def save_checkpoint(self) -> None:
        """Persist the full mid-run state under the run's canonical key."""
        if self.store is None or self.run_key is None:
            raise ValueError("checkpointing needs both a store and a run_key")
        self.store.put_checkpoint(self.run_key, self._checkpoint_state())
        self._checkpointed = True

    def _maybe_resume(self) -> None:
        if self._resume_attempted:
            return
        self._resume_attempted = True
        if not self.resume or self.store is None or self.run_key is None:
            return
        blob = self.store.get_checkpoint(self.run_key)
        if blob is None:
            return
        try:
            payload = pickle.loads(blob)
        except Exception as error:
            payload = error  # fall through to the corrupt-blob branch
        if not isinstance(payload, dict):
            # A torn or corrupt checkpoint (worker killed mid-write on a
            # backend without atomic blob replace, disk truncation, ...)
            # must not wedge the cell forever: drop it and restart the run
            # from step zero.  Only the steps since the last good
            # checkpoint are re-paid.
            logging.getLogger(__name__).warning(
                "discarding corrupt checkpoint for %s: %s",
                self.run_key.key_id(),
                payload if isinstance(payload, Exception) else type(payload).__name__,
            )
            self.store.delete_checkpoint(self.run_key)
            return
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {version} is not supported "
                f"(expected {CHECKPOINT_VERSION}); delete the stale checkpoint"
            )
        self.strategy.load_state_dict(payload["strategy"])
        self.environment.load_state_dict(payload["environment"])
        self.evaluated = int(payload["evaluated"])
        self.step = int(payload["step"])
        self.step_evaluations = list(payload["step_evaluations"])
        self.wall_time_s = float(payload["wall_time_s"])
        self.resumed = True
        self._checkpointed = True

    # --- evaluation dispatch ------------------------------------------------------
    def _dispatch(self, proposals: Sequence[Proposal]) -> List[StepResult]:
        """Evaluate proposals through the environment, grouped by kind.

        Consecutive proposals of the same kind form one environment batch
        (and therefore one evaluator batch), preserving submission order.
        Clipping to the design cube is owned by the environment's
        :class:`~repro.env.normalized.NormalizedEnv` wrapper — the driver
        forwards proposals untouched.
        """
        results: List[StepResult] = []
        start = 0
        while start < len(proposals):
            kind = proposals[start].kind()
            stop = start
            while stop < len(proposals) and proposals[stop].kind() == kind:
                stop += 1
            chunk = proposals[start:stop]
            if kind == "vector":
                points = np.asarray([p.vector for p in chunk], dtype=float)
                results.extend(self.environment.evaluate_normalized_batch(points))
            elif kind == "actions":
                results.extend(
                    self.environment.step_batch([p.actions for p in chunk])
                )
            else:
                results.extend(
                    self.environment.evaluate_sizings([p.sizing for p in chunk])
                )
            start = stop
        return results

    # --- the loop -----------------------------------------------------------------
    def run(self, max_steps: Optional[int] = None) -> OptimizationResult:
        """Run ask/tell cycles until the budget is spent (or ``max_steps``).

        Args:
            max_steps: Pause after this many ask/tell cycles *in this call*.
                A paused run writes a final checkpoint (when a store is
                bound), leaves :attr:`finished` False and returns the
                partial result; calling :meth:`run` again — or rebuilding
                the driver against the same store — continues bit-identically.
        """
        self._maybe_resume()
        wall_base = self.wall_time_s
        start_time = time.perf_counter()
        steps_this_call = 0
        stopped_early = False

        def sync_wall_time() -> None:
            self.wall_time_s = wall_base + (time.perf_counter() - start_time)

        while self.evaluated < self.budget and not self.strategy.done():
            if (max_steps is not None and steps_this_call >= max_steps) or (
                self.pause_check is not None and self.pause_check()
            ):
                sync_wall_time()
                if self.store is not None and self.run_key is not None:
                    self.save_checkpoint()
                self.finished = False
                return self.result()
            self.strategy.remaining = self.budget - self.evaluated
            proposals = self.strategy.ask()
            if not proposals:
                raise RuntimeError(
                    f"strategy {self.strategy.name!r} proposed nothing but is "
                    "not done(); refusing to spin"
                )
            proposals = proposals[: self.budget - self.evaluated]
            results = self._dispatch(proposals)
            self.strategy.tell(proposals, results)
            self.evaluated += len(proposals)
            self.step += 1
            steps_this_call += 1
            self.step_evaluations.append(len(proposals))
            sync_wall_time()

            event = DriverStep(
                step=self.step,
                num_proposals=len(proposals),
                evaluated=self.evaluated,
                budget=self.budget,
                best_reward=float(self.environment.best_reward),
                wall_time_s=self.wall_time_s,
            )
            for callback in self.callbacks:
                if callback(event):
                    stopped_early = True
            if stopped_early:
                break
            if (
                self.checkpoint_every > 0
                and self.store is not None
                and self.run_key is not None
                and self.step % self.checkpoint_every == 0
                and self.evaluated < self.budget
            ):
                self.save_checkpoint()

        sync_wall_time()
        self.finished = True
        # A run that ever checkpointed overwrites its last mid-run blob with
        # the *completed* state, so a later driver bound to the same
        # store+key "resumes" into an already-exhausted budget (an instant
        # no-op) instead of re-simulating the final segment from a stale
        # checkpoint.  The record-writing caller (run_method) deletes the
        # blob outright once the final record is stored.
        if self._checkpointed and self.store is not None and self.run_key is not None:
            self.save_checkpoint()
        return self.result()

    def result(self) -> OptimizationResult:
        """Package the environment history into an :class:`OptimizationResult`."""
        environment = self.environment
        return OptimizationResult(
            method=self.strategy.name,
            best_reward=environment.best_reward,
            best_metrics=dict(environment.best_metrics or {}),
            best_sizing=dict(environment.best_sizing or {}),
            rewards=list(environment.rewards()),
            num_evaluations=len(environment.history),
            wall_time_s=self.wall_time_s,
            step_evaluations=list(self.step_evaluations),
        )
