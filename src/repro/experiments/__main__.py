"""Command-line entry point for regenerating the paper's tables and figures.

Runs can be persisted to a durable store (``--store-dir``/``--store-backend``
or ``REPRO_STORE_DIR``/``REPRO_STORE_BACKEND``), which makes every target
incremental across invocations and enables campaign-style workflows:

* ``sweep`` — run the methods × circuits × technologies × seeds grid,
  skipping cells already in the store (kill-and-resume safe).  With
  ``--workers N`` the grid is executed by N local worker processes over the
  shared store directory (leases + work-stealing; see :mod:`repro.cluster`).
* ``worker`` — join an in-progress distributed sweep from this machine:
  claim, execute and steal cells until the grid drains (SIGTERM
  checkpoints mid-method and releases cleanly).
* ``ls`` — list the runs currently in the store (with coordinate filters);
  ``--status`` shows per-cell sweep state (pending / leased / done) instead.
* ``export`` — dump stored runs as JSON for downstream analysis.
* ``serve`` — start the long-lived optimization service (cross-client batch
  coalescing, supervised runs, lossless restart; see :mod:`repro.service`).
* ``client`` — one-shot requests against a running server.

Examples:
    python -m repro.experiments table1 --steps 100 --seeds 2
    python -m repro.experiments table1 --eval-backend vectorized
    python -m repro.experiments sweep --store-dir runs --store-backend jsonl
    python -m repro.experiments sweep --store-dir runs --workers 4
    python -m repro.experiments worker --store-dir runs --worker-id lab-box-1
    python -m repro.experiments ls --store-dir runs --method gcn_rl
    python -m repro.experiments ls --store-dir runs --status
    python -m repro.experiments export --store-dir runs --output runs.json
    python -m repro.experiments serve --store-dir runs --port 8711
    python -m repro.experiments client --request run --method es --circuit two_tia
    python -m repro.experiments client --request evaluate --circuit two_tia --random 8
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments.config import ExperimentSettings
from repro.optim.registry import list_optimizers, unknown_method_message
from repro.experiments.figures import (
    figure5_learning_curves,
    figure7_technology_transfer_curves,
    figure8_topology_transfer_curves,
)
from repro.experiments.tables import (
    table1_fom_comparison,
    table2_two_tia,
    table3_two_volt,
    table4_technology_transfer,
    table5_topology_transfer,
)
from repro.store import Campaign, CampaignSpec, RunStore, STORE_BACKENDS

TARGETS = ["table1", "table2", "table3", "table4", "table5", "figure5", "figure7", "figure8"]
STORE_COMMANDS = ["sweep", "worker", "ls", "export"]
SERVICE_COMMANDS = ["serve", "client"]


def _build_settings(args: argparse.Namespace) -> ExperimentSettings:
    settings = ExperimentSettings()
    if args.methods:
        # Method choices (and the did-you-mean hint) come straight from the
        # strategy registry — the single source of truth for all methods.
        methods = [m.strip() for m in args.methods.split(",") if m.strip()]
        known = set(list_optimizers())
        for method in methods:
            if method not in known:
                raise ValueError(unknown_method_message(method))
        settings.methods = methods
    if args.steps:
        settings.steps = args.steps
    if args.seeds:
        settings.seeds = args.seeds
    if args.pretrain_steps:
        settings.pretrain_steps = args.pretrain_steps
    if args.transfer_steps:
        settings.transfer_steps = args.transfer_steps
    # Explicit None checks: 0 is a meaningful value for both flags
    # (--workers 0 = CPU count, --cache-size 0 = caching off).
    if args.eval_backend:
        settings.eval_backend = args.eval_backend
    # For the sweep target --workers means *campaign worker processes*
    # (distributed execution over the shared store), not the evaluator
    # pool; everywhere else it keeps its evaluator-pool meaning.
    if args.workers is not None and args.target != "sweep":
        settings.eval_workers = args.workers
        # --workers without an explicit backend implies real parallelism.
        if not args.eval_backend and settings.eval_backend == "local":
            settings.eval_backend = "process"
    if args.cache_size is not None:
        settings.eval_cache_size = args.cache_size
    if args.store_dir:
        settings.store_dir = args.store_dir
    if args.store_backend:
        settings.store_backend = args.store_backend
    # A store directory (flag or REPRO_STORE_DIR) without an explicitly
    # chosen backend implies durable storage — a memory store would ignore
    # the directory and silently discard every result on exit.  The server
    # defaults to sqlite instead: its WAL mode lets run workers and external
    # CLI readers share one store without "database is locked" errors.
    if settings.store_dir and not args.store_backend and settings.store_backend == "memory":
        settings.store_backend = "sqlite" if args.target == "serve" else "jsonl"
    # Fail fast on inconsistent combinations before any run starts.
    if args.max_steps is not None and args.max_runs is None:
        raise ValueError(
            "--max-steps only takes effect together with --max-runs "
            "(it bounds the partial run after the allowed executions)"
        )
    settings.evaluator_config()
    if settings.store_backend != "memory" and not settings.store_dir:
        raise ValueError(
            f"store backend {settings.store_backend!r} requires --store-dir "
            "(or REPRO_STORE_DIR)"
        )
    return settings


def _open_store(settings: ExperimentSettings) -> Optional[RunStore]:
    """The run store the CLI should use (``None`` = runner's default)."""
    if settings.store_backend == "memory" and not settings.store_dir:
        return None
    return settings.build_run_store()


def _emit_figures(figures) -> None:
    for figure in figures.values():
        print(figure.render_ascii())
        print()


def _campaign_spec(settings: ExperimentSettings, args) -> CampaignSpec:
    """The sweep grid: an explicit ``--spec`` JSON (or @file), else settings."""
    spec_text = getattr(args, "spec", None)
    if spec_text:
        if spec_text.startswith("@"):
            with open(spec_text[1:], "r", encoding="utf-8") as handle:
                spec_text = handle.read()
        return CampaignSpec.from_dict(json.loads(spec_text))
    technologies = None
    if args.technologies:
        technologies = [t.strip() for t in args.technologies.split(",") if t.strip()]
    return CampaignSpec.from_settings(settings, technologies=technologies)


def _sweep(settings: ExperimentSettings, store: Optional[RunStore], args) -> None:
    if store is None:
        # A sweep's entire point is persistence; silently executing into a
        # throwaway in-memory store would discard every result on exit.
        print("no store configured (use --store-dir / --store-backend)")
        return
    spec = _campaign_spec(settings, args)
    campaign = Campaign(spec, store, settings=settings)

    if args.workers is not None and args.workers > 1:
        # Distributed sweep: N worker processes over the shared store
        # directory; per-cell progress prints on each worker's stdout.
        report = campaign.run(
            workers=args.workers,
            checkpoint_every=1
            if args.checkpoint_every is None
            else args.checkpoint_every,
        )
        print(report.summary())
        return

    def progress(request, outcome):
        print(
            f"  [{outcome:>8s}] {request.method} {request.circuit} "
            f"{request.technology} seed={request.seed} steps={request.steps}"
        )

    report = campaign.run(
        max_runs=args.max_runs,
        progress=progress,
        checkpoint_every=10 if args.checkpoint_every is None else args.checkpoint_every,
        max_steps=args.max_steps,
    )
    print(report.summary())


def _worker(settings: ExperimentSettings, store: Optional[RunStore], args) -> None:
    import signal

    from repro.cluster import CampaignWorker, make_owner_id

    if store is None:
        print("no store configured (use --store-dir / --store-backend)")
        return
    spec = _campaign_spec(settings, args)
    campaign = Campaign(spec, store, settings=settings)
    worker = CampaignWorker(
        campaign,
        worker_id=make_owner_id(args.worker_id) if args.worker_id else None,
        ttl=args.ttl,
        checkpoint_every=1 if args.checkpoint_every is None else args.checkpoint_every,
        poll_interval=args.poll,
        cell_retries=args.cell_retries,
        progress=lambda assignment, outcome: print(
            f"  [{outcome:>8s}] {assignment.request.method} "
            f"{assignment.request.circuit} {assignment.request.technology} "
            f"seed={assignment.request.seed} steps={assignment.request.steps}"
            + (" (stolen)" if assignment.stolen else "")
            + (" (resumed)" if assignment.resumed else ""),
            flush=True,
        ),
    )
    # SIGTERM/SIGINT → checkpoint mid-method at the next ask/tell boundary,
    # release the lease, and exit cleanly; another worker resumes the cell.
    previous = {
        signum: signal.signal(signum, lambda *_: worker.request_stop())
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    print(f"worker {worker.worker_id} joining sweep on {store.describe()}", flush=True)
    try:
        report = worker.run(max_cells=args.max_cells)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print(report.summary(), flush=True)


def _service_config(settings: ExperimentSettings, args):
    """Build the server configuration from settings + serve flags."""
    from repro.service import ServiceConfig
    from repro.service.config import DEFAULT_CACHE_SIZE

    kwargs = {}
    if args.host:
        kwargs["host"] = args.host
    if args.port is not None:
        kwargs["port"] = args.port
    if args.checkpoint_every is not None:
        kwargs["checkpoint_every"] = args.checkpoint_every
    if args.linger_ms is not None:
        kwargs["linger_ms"] = args.linger_ms
    if args.max_pending is not None:
        kwargs["max_pending"] = args.max_pending
    # The coalescer's dedup substrate is the design cache, so serving with
    # the batch default of 0 would silently disable stored-result dedup.
    cache = settings.eval_cache_size or DEFAULT_CACHE_SIZE
    return ServiceConfig(
        store_backend=settings.store_backend,
        store_dir=settings.store_dir,
        eval_backend=settings.eval_backend,
        eval_workers=settings.eval_workers,
        cache_size=cache,
        **kwargs,
    )


def _serve(settings: ExperimentSettings, args) -> None:
    from repro.service import run_service

    config = _service_config(settings, args)
    if config.store_backend == "memory":
        print(
            "warning: serving from an in-memory store — run results and "
            "restart recovery will not survive this process "
            "(use --store-dir for lossless restart)"
        )
    run_service(config)


def _load_client_sizings(args) -> list:
    """Sizings for a one-shot evaluate: inline JSON, @file, or random."""
    if args.sizings:
        text = args.sizings
        if text.startswith("@"):
            with open(text[1:], "r", encoding="utf-8") as handle:
                text = handle.read()
        sizings = json.loads(text)
        if isinstance(sizings, dict):
            sizings = [sizings]
        return sizings
    import numpy as np

    from repro.circuits.library import get_circuit

    circuit = get_circuit(args.circuit, args.technology or "180nm")
    rng = np.random.default_rng(args.seed or 0)
    return [circuit.random_sizing(rng) for _ in range(args.random)]


def _client(settings: ExperimentSettings, args) -> None:
    from repro.service import DEFAULT_PORT, ServiceClient

    host = args.host or "127.0.0.1"
    port = args.port if args.port is not None else DEFAULT_PORT
    request = args.request
    with ServiceClient(host=host, port=port) as client:
        if request == "health":
            payload = client.health()
        elif request == "stats":
            payload = client.stats()
        elif request == "jobs":
            payload = {"jobs": client.jobs()}
        elif request == "result":
            if not args.job_id:
                raise SystemExit("--request result needs --job-id")
            payload = client.result(args.job_id, wait=not args.no_wait)
        elif request == "evaluate":
            if not args.circuit and not args.sizings:
                raise SystemExit(
                    "--request evaluate needs --circuit (and --random N or --sizings)"
                )
            results = client.evaluate(
                args.circuit,
                _load_client_sizings(args),
                technology=args.technology or "180nm",
            )
            payload = {"results": results}
        else:  # run
            if not args.method or not args.circuit:
                raise SystemExit("--request run needs --method and --circuit")
            known = set(list_optimizers())
            if args.method not in known:
                raise SystemExit(unknown_method_message(args.method))
            if args.no_wait:
                job_id = client.submit_run(
                    args.method,
                    args.circuit,
                    technology=args.technology or "180nm",
                    steps=args.steps or 80,
                    seed=args.seed or 0,
                    checkpoint_every=args.checkpoint_every,
                )
                payload = {"job_id": job_id}
            else:
                def progress(frame):
                    print(
                        f"  step {frame['step']:>4d}  "
                        f"evaluated {frame['evaluated']}/{frame['budget']}  "
                        f"best {frame['best_reward']:.4f}"
                    )

                payload = client.run(
                    args.method,
                    args.circuit,
                    technology=args.technology or "180nm",
                    steps=args.steps or 80,
                    seed=args.seed or 0,
                    checkpoint_every=args.checkpoint_every,
                    on_progress=progress,
                )
    print(json.dumps(payload, indent=2, sort_keys=True))


def _ls(settings: ExperimentSettings, store: Optional[RunStore], args) -> None:
    if store is None:
        print("no store configured (use --store-dir / --store-backend)")
        return
    if args.status:
        _ls_status(settings, store, args)
        return
    records = store.query(
        method=args.method or None,
        circuit=args.circuit or None,
        technology=args.technology or None,
        seed=args.seed,
    )
    print(f"{len(records)} run(s) in {store.describe()}")
    order = sorted(
        records, key=lambda r: (r.circuit, r.technology, r.method, r.seed)
    )
    for record in order:
        print(
            f"  {record.method:>24s}  {record.circuit:10s} {record.technology:6s} "
            f"seed={record.seed} steps={record.steps} "
            f"best_reward={record.best_reward:.4f}"
        )


def _ls_status(settings: ExperimentSettings, store: RunStore, args) -> None:
    """Per-cell sweep state (pending / leased-by-whom / done) with counts."""
    from repro.cluster import CELL_STATES, cell_states, lease_store_for

    spec = _campaign_spec(settings, args)
    campaign = Campaign(spec, store, settings=settings)
    lease_store = lease_store_for(store)
    states = cell_states(campaign, lease_store)
    now = lease_store.now()
    print(f"sweep status on {store.describe()}")
    for cell in states:
        print(f"  {cell.describe(now)}")
    counts = {state: 0 for state in CELL_STATES}
    for cell in states:
        counts[cell.state] += 1
    # New counters append at the end: the cluster-smoke CI job greps the
    # prefix of this line.
    print(
        f"cells: total={len(states)} done={counts['done']} "
        f"leased={counts['leased']} expired={counts['expired']} "
        f"pending={counts['pending']} quarantined={counts['quarantined']}"
    )


def _export(store: Optional[RunStore], args) -> None:
    if store is None:
        print("no store configured (use --store-dir / --store-backend)")
        return
    rows = [stored.to_dict() for stored in store.items()]
    rows.sort(key=lambda row: json.dumps(row["key"], sort_keys=True))
    text = json.dumps(rows, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"exported {len(rows)} run(s) to {args.output}")
    else:
        print(text)


def main(argv: List[str] = None) -> int:
    """Run the requested experiment target(s) and print the results."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "target",
        choices=TARGETS + ["all"] + STORE_COMMANDS + SERVICE_COMMANDS,
        help=(
            "what to regenerate, a store command (sweep / ls / export), or a "
            "service command (serve / client)"
        ),
    )
    parser.add_argument("--steps", type=int, default=None, help="search budget per run")
    parser.add_argument("--seeds", type=int, default=None, help="runs per configuration")
    parser.add_argument("--pretrain-steps", type=int, default=None)
    parser.add_argument("--transfer-steps", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "sweep: number of campaign worker processes over the shared "
            "store (distributed execution); elsewhere: evaluator "
            "worker-pool size (implies --eval-backend process)"
        ),
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="LRU design-cache capacity (0 disables caching)",
    )
    parser.add_argument(
        "--eval-backend",
        choices=["local", "thread", "process", "vectorized"],
        default=None,
        help="how simulator batches are evaluated",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="run-store directory (implies --store-backend jsonl)",
    )
    parser.add_argument(
        "--store-backend",
        choices=list(STORE_BACKENDS),
        default=None,
        help="how completed runs are persisted",
    )
    parser.add_argument(
        "--technologies",
        default=None,
        help="comma-separated technology nodes for the sweep grid",
    )
    parser.add_argument(
        "--methods",
        default=None,
        help=(
            "comma-separated method names for the sweep/table grids "
            f"(registered: {', '.join(list_optimizers())})"
        ),
    )
    parser.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="stop the sweep after this many executed runs (resume later)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help=(
            "persist each run's mid-run driver state to the store every K "
            "ask/tell steps, so a killed sweep/server resumes mid-method "
            "(0 disables; default: 10 for sweep, REPRO_SERVE_CHECKPOINT_EVERY "
            "or 1 for serve)"
        ),
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help=(
            "with --max-runs: pause the next pending run after this many "
            "ask/tell steps (checkpointed mid-method kill, for testing resume)"
        ),
    )
    parser.add_argument(
        "--spec",
        default=None,
        help=(
            "worker/sweep: campaign grid as inline JSON or @file (the "
            "launcher passes this to workers so every process executes the "
            "identical grid); default: the grid implied by settings"
        ),
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="worker: stable worker name (owner id becomes host:pid:name)",
    )
    parser.add_argument(
        "--ttl",
        type=float,
        default=30.0,
        help=(
            "worker: lease time-to-live in seconds — a worker silent this "
            "long is presumed dead and its cell becomes stealable"
        ),
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="worker: seconds between scans when all remaining cells are leased",
    )
    parser.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="worker: exit after visiting this many cells (default: run to drain)",
    )
    parser.add_argument(
        "--cell-retries",
        type=int,
        default=3,
        help=(
            "worker: attempts per cell before it is quarantined as "
            "poisoned (never handed out again)"
        ),
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help=(
            "serve: admission-control bound on queued designs; beyond it "
            "submissions fail fast with a retryable 'overloaded' error "
            "(default: REPRO_SERVE_MAX_PENDING or 0 = unbounded)"
        ),
    )
    parser.add_argument(
        "--status",
        action="store_true",
        help="ls: show per-cell sweep state (pending/leased/done) instead of runs",
    )
    parser.add_argument(
        "--method", default=None, help="filter for ls/export: method name"
    )
    parser.add_argument(
        "--circuit", default=None, help="filter for ls/export: circuit name"
    )
    parser.add_argument(
        "--technology", default=None, help="filter for ls/export: technology node"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="filter for ls/export: seed"
    )
    parser.add_argument(
        "--output", default=None, help="output file for export (default: stdout)"
    )
    parser.add_argument(
        "--host",
        default=None,
        help="serve/client: server address (default: REPRO_SERVE_HOST or 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve/client: server port (default: REPRO_SERVE_PORT or 8711)",
    )
    parser.add_argument(
        "--linger-ms",
        type=float,
        default=None,
        help=(
            "serve: coalescing window in ms — how long an evaluate request "
            "waits for same-circuit company before a simulator batch is issued"
        ),
    )
    parser.add_argument(
        "--request",
        choices=["health", "stats", "jobs", "evaluate", "run", "result"],
        default="health",
        help="client: which request to send",
    )
    parser.add_argument(
        "--sizings",
        default=None,
        help=(
            "client evaluate: sizings as inline JSON (a list of "
            "component->parameter->value objects) or @file"
        ),
    )
    parser.add_argument(
        "--random",
        type=int,
        default=4,
        help="client evaluate: generate this many random sizings (with --seed)",
    )
    parser.add_argument(
        "--job-id", default=None, help="client result: the job to fetch"
    )
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help=(
            "client: don't block — submit runs fire-and-forget (returns the "
            "job id) and fetch results without waiting"
        ),
    )
    args = parser.parse_args(argv)
    try:
        settings = _build_settings(args)
    except ValueError as error:
        parser.error(str(error))

    if args.target in SERVICE_COMMANDS:
        if args.target == "serve":
            _serve(settings, args)
        else:
            _client(settings, args)
        return 0

    store = _open_store(settings)
    try:
        if args.target in STORE_COMMANDS:
            if args.target == "sweep":
                _sweep(settings, store, args)
            elif args.target == "worker":
                _worker(settings, store, args)
            elif args.target == "ls":
                _ls(settings, store, args)
            elif args.target == "export":
                _export(store, args)
            return 0

        targets = TARGETS if args.target == "all" else [args.target]
        for target in targets:
            if target == "table1":
                print(table1_fom_comparison(settings, store=store).render())
            elif target == "table2":
                print(table2_two_tia(settings, store=store).render())
            elif target == "table3":
                print(table3_two_volt(settings, store=store).render())
            elif target == "table4":
                print(table4_technology_transfer(settings, store=store).render())
            elif target == "table5":
                print(table5_topology_transfer(settings, store=store).render())
            elif target == "figure5":
                _emit_figures(figure5_learning_curves(settings, store=store))
            elif target == "figure7":
                _emit_figures(figure7_technology_transfer_curves(settings, store=store))
            elif target == "figure8":
                _emit_figures(figure8_topology_transfer_curves(settings, store=store))
            print()
    finally:
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
