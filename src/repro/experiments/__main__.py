"""Command-line entry point for regenerating the paper's tables and figures.

Runs can be persisted to a durable store (``--store-dir``/``--store-backend``
or ``REPRO_STORE_DIR``/``REPRO_STORE_BACKEND``), which makes every target
incremental across invocations and enables campaign-style workflows:

* ``sweep`` — run the methods × circuits × technologies × seeds grid,
  skipping cells already in the store (kill-and-resume safe).
* ``ls`` — list the runs currently in the store (with coordinate filters).
* ``export`` — dump stored runs as JSON for downstream analysis.

Examples:
    python -m repro.experiments table1 --steps 100 --seeds 2
    python -m repro.experiments table1 --eval-backend vectorized
    python -m repro.experiments sweep --store-dir runs --store-backend jsonl
    python -m repro.experiments ls --store-dir runs --method gcn_rl
    python -m repro.experiments export --store-dir runs --output runs.json
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments.config import ExperimentSettings
from repro.optim.registry import list_optimizers, unknown_method_message
from repro.experiments.figures import (
    figure5_learning_curves,
    figure7_technology_transfer_curves,
    figure8_topology_transfer_curves,
)
from repro.experiments.tables import (
    table1_fom_comparison,
    table2_two_tia,
    table3_two_volt,
    table4_technology_transfer,
    table5_topology_transfer,
)
from repro.store import Campaign, CampaignSpec, RunStore, STORE_BACKENDS

TARGETS = ["table1", "table2", "table3", "table4", "table5", "figure5", "figure7", "figure8"]
STORE_COMMANDS = ["sweep", "ls", "export"]


def _build_settings(args: argparse.Namespace) -> ExperimentSettings:
    settings = ExperimentSettings()
    if args.methods:
        # Method choices (and the did-you-mean hint) come straight from the
        # strategy registry — the single source of truth for all methods.
        methods = [m.strip() for m in args.methods.split(",") if m.strip()]
        known = set(list_optimizers())
        for method in methods:
            if method not in known:
                raise ValueError(unknown_method_message(method))
        settings.methods = methods
    if args.steps:
        settings.steps = args.steps
    if args.seeds:
        settings.seeds = args.seeds
    if args.pretrain_steps:
        settings.pretrain_steps = args.pretrain_steps
    if args.transfer_steps:
        settings.transfer_steps = args.transfer_steps
    # Explicit None checks: 0 is a meaningful value for both flags
    # (--workers 0 = CPU count, --cache-size 0 = caching off).
    if args.eval_backend:
        settings.eval_backend = args.eval_backend
    if args.workers is not None:
        settings.eval_workers = args.workers
        # --workers without an explicit backend implies real parallelism.
        if not args.eval_backend and settings.eval_backend == "local":
            settings.eval_backend = "process"
    if args.cache_size is not None:
        settings.eval_cache_size = args.cache_size
    if args.store_dir:
        settings.store_dir = args.store_dir
    if args.store_backend:
        settings.store_backend = args.store_backend
    # A store directory (flag or REPRO_STORE_DIR) without an explicitly
    # chosen backend implies durable storage — a memory store would ignore
    # the directory and silently discard every result on exit.
    if settings.store_dir and not args.store_backend and settings.store_backend == "memory":
        settings.store_backend = "jsonl"
    # Fail fast on inconsistent combinations before any run starts.
    if args.max_steps is not None and args.max_runs is None:
        raise ValueError(
            "--max-steps only takes effect together with --max-runs "
            "(it bounds the partial run after the allowed executions)"
        )
    settings.evaluator_config()
    if settings.store_backend != "memory" and not settings.store_dir:
        raise ValueError(
            f"store backend {settings.store_backend!r} requires --store-dir "
            "(or REPRO_STORE_DIR)"
        )
    return settings


def _open_store(settings: ExperimentSettings) -> Optional[RunStore]:
    """The run store the CLI should use (``None`` = runner's default)."""
    if settings.store_backend == "memory" and not settings.store_dir:
        return None
    return settings.build_run_store()


def _emit_figures(figures) -> None:
    for key, figure in figures.items():
        print(figure.render_ascii())
        print()


def _sweep(settings: ExperimentSettings, store: Optional[RunStore], args) -> None:
    if store is None:
        # A sweep's entire point is persistence; silently executing into a
        # throwaway in-memory store would discard every result on exit.
        print("no store configured (use --store-dir / --store-backend)")
        return
    technologies = None
    if args.technologies:
        technologies = [t.strip() for t in args.technologies.split(",") if t.strip()]
    spec = CampaignSpec.from_settings(settings, technologies=technologies)
    campaign = Campaign(spec, store, settings=settings)

    def progress(request, outcome):
        print(
            f"  [{outcome:>8s}] {request.method} {request.circuit} "
            f"{request.technology} seed={request.seed} steps={request.steps}"
        )

    report = campaign.run(
        max_runs=args.max_runs,
        progress=progress,
        checkpoint_every=args.checkpoint_every,
        max_steps=args.max_steps,
    )
    print(report.summary())


def _ls(store: Optional[RunStore], args) -> None:
    if store is None:
        print("no store configured (use --store-dir / --store-backend)")
        return
    records = store.query(
        method=args.method or None,
        circuit=args.circuit or None,
        technology=args.technology or None,
        seed=args.seed,
    )
    print(f"{len(records)} run(s) in {store.describe()}")
    order = sorted(
        records, key=lambda r: (r.circuit, r.technology, r.method, r.seed)
    )
    for record in order:
        print(
            f"  {record.method:>24s}  {record.circuit:10s} {record.technology:6s} "
            f"seed={record.seed} steps={record.steps} "
            f"best_reward={record.best_reward:.4f}"
        )


def _export(store: Optional[RunStore], args) -> None:
    if store is None:
        print("no store configured (use --store-dir / --store-backend)")
        return
    rows = [stored.to_dict() for stored in store.items()]
    rows.sort(key=lambda row: json.dumps(row["key"], sort_keys=True))
    text = json.dumps(rows, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"exported {len(rows)} run(s) to {args.output}")
    else:
        print(text)


def main(argv: List[str] = None) -> int:
    """Run the requested experiment target(s) and print the results."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "target",
        choices=TARGETS + ["all"] + STORE_COMMANDS,
        help="what to regenerate (or a store command: sweep / ls / export)",
    )
    parser.add_argument("--steps", type=int, default=None, help="search budget per run")
    parser.add_argument("--seeds", type=int, default=None, help="runs per configuration")
    parser.add_argument("--pretrain-steps", type=int, default=None)
    parser.add_argument("--transfer-steps", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="evaluator worker-pool size (implies --eval-backend process)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="LRU design-cache capacity (0 disables caching)",
    )
    parser.add_argument(
        "--eval-backend",
        choices=["local", "thread", "process", "vectorized"],
        default=None,
        help="how simulator batches are evaluated",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="run-store directory (implies --store-backend jsonl)",
    )
    parser.add_argument(
        "--store-backend",
        choices=list(STORE_BACKENDS),
        default=None,
        help="how completed runs are persisted",
    )
    parser.add_argument(
        "--technologies",
        default=None,
        help="comma-separated technology nodes for the sweep grid",
    )
    parser.add_argument(
        "--methods",
        default=None,
        help=(
            "comma-separated method names for the sweep/table grids "
            f"(registered: {', '.join(list_optimizers())})"
        ),
    )
    parser.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="stop the sweep after this many executed runs (resume later)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        help=(
            "persist each run's mid-run driver state to the store every K "
            "ask/tell steps, so a killed sweep resumes mid-method (0 disables)"
        ),
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help=(
            "with --max-runs: pause the next pending run after this many "
            "ask/tell steps (checkpointed mid-method kill, for testing resume)"
        ),
    )
    parser.add_argument(
        "--method", default=None, help="filter for ls/export: method name"
    )
    parser.add_argument(
        "--circuit", default=None, help="filter for ls/export: circuit name"
    )
    parser.add_argument(
        "--technology", default=None, help="filter for ls/export: technology node"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="filter for ls/export: seed"
    )
    parser.add_argument(
        "--output", default=None, help="output file for export (default: stdout)"
    )
    args = parser.parse_args(argv)
    try:
        settings = _build_settings(args)
    except ValueError as error:
        parser.error(str(error))

    store = _open_store(settings)
    try:
        if args.target in STORE_COMMANDS:
            if args.target == "sweep":
                _sweep(settings, store, args)
            elif args.target == "ls":
                _ls(store, args)
            elif args.target == "export":
                _export(store, args)
            return 0

        targets = TARGETS if args.target == "all" else [args.target]
        for target in targets:
            if target == "table1":
                print(table1_fom_comparison(settings, store=store).render())
            elif target == "table2":
                print(table2_two_tia(settings, store=store).render())
            elif target == "table3":
                print(table3_two_volt(settings, store=store).render())
            elif target == "table4":
                print(table4_technology_transfer(settings, store=store).render())
            elif target == "table5":
                print(table5_topology_transfer(settings, store=store).render())
            elif target == "figure5":
                _emit_figures(figure5_learning_curves(settings, store=store))
            elif target == "figure7":
                _emit_figures(figure7_technology_transfer_curves(settings, store=store))
            elif target == "figure8":
                _emit_figures(figure8_topology_transfer_curves(settings, store=store))
            print()
    finally:
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
