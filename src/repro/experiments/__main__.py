"""Command-line entry point for regenerating the paper's tables and figures.

Examples:
    python -m repro.experiments table1 --steps 100 --seeds 2
    python -m repro.experiments figure7 --transfer-steps 80
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.experiments.config import ExperimentSettings
from repro.experiments.figures import (
    figure5_learning_curves,
    figure7_technology_transfer_curves,
    figure8_topology_transfer_curves,
)
from repro.experiments.tables import (
    table1_fom_comparison,
    table2_two_tia,
    table3_two_volt,
    table4_technology_transfer,
    table5_topology_transfer,
)

TARGETS = ["table1", "table2", "table3", "table4", "table5", "figure5", "figure7", "figure8"]


def _build_settings(args: argparse.Namespace) -> ExperimentSettings:
    settings = ExperimentSettings()
    if args.steps:
        settings.steps = args.steps
    if args.seeds:
        settings.seeds = args.seeds
    if args.pretrain_steps:
        settings.pretrain_steps = args.pretrain_steps
    if args.transfer_steps:
        settings.transfer_steps = args.transfer_steps
    # Explicit None checks: 0 is a meaningful value for both flags
    # (--workers 0 = CPU count, --cache-size 0 = caching off).
    if args.eval_backend:
        settings.eval_backend = args.eval_backend
    if args.workers is not None:
        settings.eval_workers = args.workers
        # --workers without an explicit backend implies real parallelism.
        if not args.eval_backend and settings.eval_backend == "local":
            settings.eval_backend = "process"
    if args.cache_size is not None:
        settings.eval_cache_size = args.cache_size
    # Fail fast on an inconsistent combination before any run starts.
    settings.evaluator_config()
    return settings


def _emit_figures(figures) -> None:
    for key, figure in figures.items():
        print(figure.render_ascii())
        print()


def main(argv: List[str] = None) -> int:
    """Run the requested experiment target(s) and print the results."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("target", choices=TARGETS + ["all"], help="what to regenerate")
    parser.add_argument("--steps", type=int, default=None, help="search budget per run")
    parser.add_argument("--seeds", type=int, default=None, help="runs per configuration")
    parser.add_argument("--pretrain-steps", type=int, default=None)
    parser.add_argument("--transfer-steps", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="evaluator worker-pool size (implies --eval-backend process)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="LRU design-cache capacity (0 disables caching)",
    )
    parser.add_argument(
        "--eval-backend",
        choices=["local", "thread", "process"],
        default=None,
        help="how simulator batches are evaluated",
    )
    args = parser.parse_args(argv)
    try:
        settings = _build_settings(args)
    except ValueError as error:
        parser.error(str(error))

    targets = TARGETS if args.target == "all" else [args.target]
    for target in targets:
        if target == "table1":
            print(table1_fom_comparison(settings).render())
        elif target == "table2":
            print(table2_two_tia(settings).render())
        elif target == "table3":
            print(table3_two_volt(settings).render())
        elif target == "table4":
            print(table4_technology_transfer(settings).render())
        elif target == "table5":
            print(table5_topology_transfer(settings).render())
        elif target == "figure5":
            _emit_figures(figure5_learning_curves(settings))
        elif target == "figure7":
            _emit_figures(figure7_technology_transfer_curves(settings))
        elif target == "figure8":
            _emit_figures(figure8_topology_transfer_curves(settings))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
