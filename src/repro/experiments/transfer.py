"""Knowledge-transfer experiments (Tables IV & V, Figures 7 & 8)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.eval import EvaluatorConfig
from repro.experiments.config import ExperimentSettings
from repro.experiments.records import RunRecord
from repro.experiments.runner import build_environment, default_agent_config
from repro.rl.agent import AgentConfig, GCNRLAgent
from repro.rl.transfer import train_agent
from repro.store import RunKey, RunStore, make_run_key

_PRETRAINED_CACHE: Dict[Tuple, Dict] = {}
_TRANSFER_CACHE: Dict[Tuple, RunRecord] = {}

#: Pretrained weights, or a lazy thunk producing them on first use.
PretrainedWeights = Union[Dict, Callable[[], Dict]]


def clear_transfer_cache() -> None:
    """Drop cached pretrained agents and transfer runs (used in tests)."""
    _PRETRAINED_CACHE.clear()
    _TRANSFER_CACHE.clear()


def _transfer_agent_config(
    settings: ExperimentSettings, use_gcn: bool, warmup: int
) -> AgentConfig:
    config = default_agent_config(settings.transfer_steps, settings, use_gcn)
    config.warmup = warmup
    return config


def pretrain_weights(
    circuit_name: str,
    technology: str,
    settings: ExperimentSettings,
    use_gcn: bool = True,
    transferable_state: bool = False,
    seed: int = 0,
) -> Dict:
    """Train a source agent and return its weights (cached per configuration)."""
    key = (
        circuit_name,
        technology,
        settings.pretrain_steps,
        use_gcn,
        transferable_state,
        seed,
    )
    if key in _PRETRAINED_CACHE:
        return _PRETRAINED_CACHE[key]
    environment = build_environment(
        circuit_name, technology, transferable_state=transferable_state
    )
    try:
        config = default_agent_config(settings.pretrain_steps, settings, use_gcn)
        agent = GCNRLAgent(environment, config=config, seed=seed)
        train_agent(agent, settings.pretrain_steps)
        weights = agent.state_dict()
    finally:
        environment.evaluator.close()
    _PRETRAINED_CACHE[key] = weights
    return weights


def transfer_run_key(
    circuit_name: str,
    technology: str,
    settings: ExperimentSettings,
    seed: int,
    use_gcn: bool,
    transferable_state: bool,
    pretrained: bool,
    label: str,
    source: str = "",
) -> RunKey:
    """Canonical store key of one fine-tuning run.

    Besides the run coordinates, the key covers the warm-up split, the agent
    flavour, the state encoding, and — when weights are transferred — the
    source task (circuit or node) and the budget those weights were trained
    with.  Leaving the source out would let fine-tunes from different
    pretraining sources alias to the same stored record.
    """
    extra = {
        "transfer_warmup": settings.transfer_warmup,
        "use_gcn": use_gcn,
        "transferable_state": transferable_state,
        "pretrain_steps": settings.pretrain_steps if pretrained else 0,
        "source": source if pretrained else "",
    }
    return make_run_key(
        label,
        circuit_name,
        technology,
        settings.transfer_steps,
        seed,
        evaluator_key=EvaluatorConfig().cache_key(),
        extra=extra,
    )


def _finetune(
    circuit_name: str,
    technology: str,
    settings: ExperimentSettings,
    seed: int,
    use_gcn: bool,
    transferable_state: bool,
    pretrained: Optional[PretrainedWeights],
    label: str,
    store: Optional[RunStore] = None,
    source: str = "",
) -> RunRecord:
    """Train (or fine-tune) an agent on the target task with a small budget.

    ``pretrained`` may be a weights dict or a zero-argument callable that
    produces one; the callable is only invoked on a cache/store miss, so a
    fully-stored experiment never pays for pretraining.
    """
    cache_key = (
        circuit_name,
        technology,
        settings.transfer_steps,
        settings.transfer_warmup,
        seed,
        use_gcn,
        transferable_state,
        label,
        source if pretrained is not None else "",
    )
    if cache_key in _TRANSFER_CACHE:
        return _TRANSFER_CACHE[cache_key]
    store_key = transfer_run_key(
        circuit_name,
        technology,
        settings,
        seed,
        use_gcn,
        transferable_state,
        pretrained is not None,
        label,
        source=source,
    )
    if store is not None:
        stored = store.get(store_key)
        if stored is not None:
            _TRANSFER_CACHE[cache_key] = stored
            return stored

    environment = build_environment(
        circuit_name, technology, transferable_state=transferable_state
    )
    try:
        config = _transfer_agent_config(settings, use_gcn, settings.transfer_warmup)
        agent = GCNRLAgent(environment, config=config, seed=seed)
        if pretrained is not None:
            weights = pretrained() if callable(pretrained) else pretrained
            agent.load_state_dict(weights)
        train_agent(agent, settings.transfer_steps)
        record = RunRecord(
            method=label,
            circuit=circuit_name,
            technology=technology,
            seed=seed,
            steps=settings.transfer_steps,
            best_reward=environment.best_reward,
            best_metrics=dict(environment.best_metrics or {}),
            rewards=list(environment.rewards()),
            extra={"transfer": label},
        )
    finally:
        environment.evaluator.close()
    _TRANSFER_CACHE[cache_key] = record
    if store is not None:
        store.put(store_key, record)
    return record


@dataclass
class TechnologyTransferResult:
    """Transfer-vs-scratch comparison for one circuit across target nodes."""

    circuit: str
    source_technology: str
    target_technologies: List[str]
    transfer: Dict[str, List[RunRecord]] = field(default_factory=dict)
    no_transfer: Dict[str, List[RunRecord]] = field(default_factory=dict)


def technology_transfer_experiment(
    circuit_name: str,
    settings: Optional[ExperimentSettings] = None,
    source_technology: str = "180nm",
    use_gcn: bool = True,
    store: Optional[RunStore] = None,
) -> TechnologyTransferResult:
    """Reproduce Table IV: train at 180nm, fine-tune at the other nodes.

    For every target node and seed the same warm-up seeds are used for the
    transfer and no-transfer arms (as in the paper, so their warm-up FoMs
    match) and both arms receive ``settings.transfer_steps`` total episodes.
    """
    settings = settings or ExperimentSettings()
    result = TechnologyTransferResult(
        circuit=circuit_name,
        source_technology=source_technology,
        target_technologies=list(settings.transfer_targets),
    )
    # Lazy: pretraining (the dominant cost) only happens if some transfer
    # cell is actually missing from the cache/store; pretrain_weights itself
    # memoises, so at most one source run is paid per process.
    pretrained = lambda: pretrain_weights(  # noqa: E731
        circuit_name, source_technology, settings, use_gcn=use_gcn
    )
    for target in settings.transfer_targets:
        transfer_runs, scratch_runs = [], []
        for seed in range(settings.seeds):
            transfer_runs.append(
                _finetune(
                    circuit_name,
                    target,
                    settings,
                    seed,
                    use_gcn,
                    False,
                    pretrained,
                    "transfer",
                    store=store,
                    source=source_technology,
                )
            )
            scratch_runs.append(
                _finetune(
                    circuit_name,
                    target,
                    settings,
                    seed,
                    use_gcn,
                    False,
                    None,
                    "no_transfer",
                    store=store,
                )
            )
        result.transfer[target] = transfer_runs
        result.no_transfer[target] = scratch_runs
    return result


@dataclass
class TopologyTransferResult:
    """GCN vs non-GCN topology-transfer comparison for one direction."""

    source_circuit: str
    target_circuit: str
    technology: str
    gcn_transfer: List[RunRecord] = field(default_factory=list)
    ng_transfer: List[RunRecord] = field(default_factory=list)
    no_transfer: List[RunRecord] = field(default_factory=list)


def topology_transfer_experiment(
    source_circuit: str,
    target_circuit: str,
    settings: Optional[ExperimentSettings] = None,
    technology: str = "180nm",
    store: Optional[RunStore] = None,
) -> TopologyTransferResult:
    """Reproduce Table V: transfer between Two-TIA and Three-TIA topologies.

    Three arms are compared on the target circuit with the same fine-tuning
    budget: GCN-RL with transferred weights, NG-RL with transferred weights,
    and GCN-RL trained from scratch.  Topology transfer requires the
    dimension-independent (scalar-index) state encoding.
    """
    settings = settings or ExperimentSettings()
    result = TopologyTransferResult(
        source_circuit=source_circuit,
        target_circuit=target_circuit,
        technology=technology,
    )
    # Lazy for the same reason as in technology_transfer_experiment: a
    # fully-stored experiment must not pay for source-task pretraining.
    gcn_weights = lambda: pretrain_weights(  # noqa: E731
        source_circuit, technology, settings, use_gcn=True, transferable_state=True
    )
    ng_weights = lambda: pretrain_weights(  # noqa: E731
        source_circuit, technology, settings, use_gcn=False, transferable_state=True
    )
    for seed in range(settings.seeds):
        result.gcn_transfer.append(
            _finetune(
                target_circuit,
                technology,
                settings,
                seed,
                True,
                True,
                gcn_weights,
                f"gcn_transfer_from_{source_circuit}",
                store=store,
                source=source_circuit,
            )
        )
        result.ng_transfer.append(
            _finetune(
                target_circuit,
                technology,
                settings,
                seed,
                False,
                True,
                ng_weights,
                f"ng_transfer_from_{source_circuit}",
                store=store,
                source=source_circuit,
            )
        )
        result.no_transfer.append(
            _finetune(
                target_circuit,
                technology,
                settings,
                seed,
                True,
                True,
                None,
                "no_transfer_topology",
                store=store,
            )
        )
    return result
