"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.config import (
    CIRCUIT_LABELS,
    METHOD_LABELS,
    ExperimentSettings,
)
from repro.experiments.figures import (
    FigureData,
    figure5_learning_curves,
    figure7_technology_transfer_curves,
    figure8_topology_transfer_curves,
)
from repro.experiments.driver import DriverStep, OptimizationDriver
from repro.experiments.records import (
    AggregateResult,
    RunRecord,
    aggregate,
    max_learning_curve,
    mean_learning_curve,
)
from repro.experiments.runner import (
    ALL_METHODS,
    build_environment,
    build_strategy,
    clear_run_cache,
    default_run_store,
    run_key_for,
    run_method,
    run_methods,
)
from repro.experiments.tables import (
    Table,
    metric_breakdown_table,
    table1_fom_comparison,
    table2_two_tia,
    table3_two_volt,
    table4_technology_transfer,
    table5_topology_transfer,
)
from repro.experiments.transfer import (
    TechnologyTransferResult,
    TopologyTransferResult,
    clear_transfer_cache,
    technology_transfer_experiment,
    topology_transfer_experiment,
)

__all__ = [
    "ExperimentSettings",
    "METHOD_LABELS",
    "CIRCUIT_LABELS",
    "RunRecord",
    "AggregateResult",
    "aggregate",
    "mean_learning_curve",
    "max_learning_curve",
    "ALL_METHODS",
    "OptimizationDriver",
    "DriverStep",
    "run_method",
    "run_methods",
    "run_key_for",
    "build_environment",
    "build_strategy",
    "clear_run_cache",
    "default_run_store",
    "Table",
    "table1_fom_comparison",
    "table2_two_tia",
    "table3_two_volt",
    "table4_technology_transfer",
    "table5_topology_transfer",
    "metric_breakdown_table",
    "FigureData",
    "figure5_learning_curves",
    "figure7_technology_transfer_curves",
    "figure8_topology_transfer_curves",
    "TechnologyTransferResult",
    "TopologyTransferResult",
    "technology_transfer_experiment",
    "topology_transfer_experiment",
    "clear_transfer_cache",
]
