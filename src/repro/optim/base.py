"""Result type shared by every optimization strategy.

The method implementations themselves live behind the ask/tell protocol of
:mod:`repro.optim.strategy`; this module only defines the
:class:`OptimizationResult` record the :class:`~repro.experiments.driver.
OptimizationDriver` produces for every method, so learning curves, budgets
and wall-clock timing are directly comparable across the paper's baselines
and the RL agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

import numpy as np


@dataclass
class OptimizationResult:
    """Outcome of one optimization run.

    Attributes:
        method: Registry name of the optimizer.
        best_reward: Best FoM found.
        best_metrics: Metrics of the best design.
        best_sizing: Physical sizing of the best design.
        rewards: Reward of every evaluation in order.
        num_evaluations: Total simulator calls consumed.
        wall_time_s: Wall-clock seconds spent inside the optimization loop
            (accumulated across checkpoint/resume cycles), so learning curves
            can be plotted against wall-clock as well as simulation count.
        step_evaluations: Simulator evaluations consumed by each ask/tell
            step, in order (``sum(step_evaluations) == num_evaluations``).
    """

    method: str
    best_reward: float
    best_metrics: Dict[str, float]
    best_sizing: Dict[str, Dict[str, float]]
    rewards: List[float] = field(default_factory=list)
    num_evaluations: int = 0
    wall_time_s: float = 0.0
    step_evaluations: List[int] = field(default_factory=list)

    def best_so_far(self) -> np.ndarray:
        """Running maximum of the reward (learning-curve series).

        Always a ``float64`` array, including on an empty history, so
        downstream aggregation can vstack curves without dtype surprises.
        """
        if not self.rewards:
            return np.asarray([], dtype=np.float64)
        return np.maximum.accumulate(np.asarray(self.rewards, dtype=np.float64))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable plain-dict form of the result."""
        return {
            "method": self.method,
            "best_reward": float(self.best_reward),
            "best_metrics": {k: float(v) for k, v in self.best_metrics.items()},
            "best_sizing": {
                comp: {name: float(value) for name, value in params.items()}
                for comp, params in self.best_sizing.items()
            },
            "rewards": [float(r) for r in self.rewards],
            "num_evaluations": int(self.num_evaluations),
            "wall_time_s": float(self.wall_time_s),
            "step_evaluations": [int(n) for n in self.step_evaluations],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "OptimizationResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        return cls(
            method=data["method"],
            best_reward=float(data["best_reward"]),
            best_metrics={k: float(v) for k, v in data.get("best_metrics", {}).items()},
            best_sizing={
                comp: {name: float(value) for name, value in params.items()}
                for comp, params in data.get("best_sizing", {}).items()
            },
            rewards=[float(r) for r in data.get("rewards", [])],
            num_evaluations=int(data.get("num_evaluations", 0)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            step_evaluations=[int(n) for n in data.get("step_evaluations", [])],
        )
