"""Common interface for the black-box baseline optimizers.

Every baseline (random search, ES, BO, MACE) optimizes the FoM over the
normalised design space ``[-1, 1]^d`` through a :class:`SizingEnvironment`;
the environment handles denormalisation, refinement, simulation and history
tracking so that learning curves are directly comparable with the RL agent.
Candidate designs are submitted through the environment's *batch* interface
(``evaluate_normalized_batch``), so whole populations/proposal batches reach
the :class:`~repro.eval.Evaluator` in one call and can be parallelised or
cached below the algorithm.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.env.environment import SizingEnvironment


@dataclass
class OptimizationResult:
    """Outcome of one optimization run.

    Attributes:
        method: Registry name of the optimizer.
        best_reward: Best FoM found.
        best_metrics: Metrics of the best design.
        best_sizing: Physical sizing of the best design.
        rewards: Reward of every evaluation in order.
        num_evaluations: Total simulator calls consumed.
    """

    method: str
    best_reward: float
    best_metrics: Dict[str, float]
    best_sizing: Dict[str, Dict[str, float]]
    rewards: List[float] = field(default_factory=list)
    num_evaluations: int = 0

    def best_so_far(self) -> np.ndarray:
        """Running maximum of the reward (learning-curve series).

        Always a ``float64`` array, including on an empty history, so
        downstream aggregation can vstack curves without dtype surprises.
        """
        if not self.rewards:
            return np.asarray([], dtype=np.float64)
        return np.maximum.accumulate(np.asarray(self.rewards, dtype=np.float64))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable plain-dict form of the result."""
        return {
            "method": self.method,
            "best_reward": float(self.best_reward),
            "best_metrics": {k: float(v) for k, v in self.best_metrics.items()},
            "best_sizing": {
                comp: {name: float(value) for name, value in params.items()}
                for comp, params in self.best_sizing.items()
            },
            "rewards": [float(r) for r in self.rewards],
            "num_evaluations": int(self.num_evaluations),
        }


class BlackBoxOptimizer(abc.ABC):
    """Base class for simulation-in-the-loop black-box optimizers."""

    #: Registry name, overridden by subclasses.
    name = "abstract"

    def __init__(self, environment: SizingEnvironment, seed: int = 0):
        self.environment = environment
        self.rng = np.random.default_rng(seed)
        self.dimension = environment.parameter_dimension

    @abc.abstractmethod
    def run(self, budget: int) -> OptimizationResult:
        """Run the optimizer for ``budget`` simulator evaluations."""

    def _evaluate_batch(self, points: Sequence[np.ndarray]) -> np.ndarray:
        """Evaluate many normalised design points in one environment batch.

        Returns the rewards in input order as a ``float64`` array.
        """
        points = np.clip(np.asarray(points, dtype=float), -1.0, 1.0)
        results = self.environment.evaluate_normalized_batch(points)
        return np.asarray([result.reward for result in results], dtype=np.float64)

    def _evaluate(self, point: np.ndarray) -> float:
        """Evaluate one normalised design point and return its reward."""
        return float(self._evaluate_batch(np.asarray(point, dtype=float)[None, :])[0])

    def _result(self) -> OptimizationResult:
        """Package the environment history into an :class:`OptimizationResult`."""
        return OptimizationResult(
            method=self.name,
            best_reward=self.environment.best_reward,
            best_metrics=dict(self.environment.best_metrics or {}),
            best_sizing=dict(self.environment.best_sizing or {}),
            rewards=list(self.environment.rewards()),
            num_evaluations=len(self.environment.history),
        )
