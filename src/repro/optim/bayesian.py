"""Bayesian Optimization baseline (GP + expected improvement)."""

from __future__ import annotations

import numpy as np

from repro.optim.base import BlackBoxOptimizer, OptimizationResult
from repro.optim.gaussian_process import GaussianProcess, expected_improvement


class BayesianOptimization(BlackBoxOptimizer):
    """Sequential GP-based Bayesian optimization with the EI acquisition.

    The acquisition is maximised over a random candidate pool refined with a
    small local perturbation step around the incumbent, which is accurate
    enough for the modest dimensionality of the sizing problems while keeping
    the O(N^3) GP cost the dominant term, as in the paper's description.
    """

    name = "bo"

    def __init__(
        self,
        environment,
        seed: int = 0,
        num_initial: int = 10,
        candidate_pool: int = 512,
        max_training_points: int = 300,
    ):
        super().__init__(environment, seed)
        self.num_initial = num_initial
        self.candidate_pool = candidate_pool
        self.max_training_points = max_training_points
        self._x: list = []
        self._y: list = []

    def _candidates(self, incumbent: np.ndarray) -> np.ndarray:
        uniform = self.rng.uniform(
            -1.0, 1.0, size=(self.candidate_pool // 2, self.dimension)
        )
        local = incumbent + 0.2 * self.rng.standard_normal(
            (self.candidate_pool - len(uniform), self.dimension)
        )
        return np.clip(np.vstack([uniform, local]), -1.0, 1.0)

    def _training_set(self):
        x = np.asarray(self._x, dtype=float)
        y = np.asarray(self._y, dtype=float)
        if len(x) > self.max_training_points:
            # Keep the best half and a random sample of the rest to bound the
            # GP's cubic cost on long runs.
            order = np.argsort(-y)
            keep = order[: self.max_training_points // 2]
            rest = order[self.max_training_points // 2 :]
            extra = self.rng.choice(
                rest, size=self.max_training_points - len(keep), replace=False
            )
            idx = np.concatenate([keep, extra])
            return x[idx], y[idx]
        return x, y

    def run(self, budget: int) -> OptimizationResult:
        """Run BO for ``budget`` evaluations (including the initial design)."""
        num_initial = min(self.num_initial, budget)
        if num_initial > 0:
            # The initial design is one evaluator batch (same RNG stream as
            # the previous sample-evaluate-sample loop).
            points = self.rng.uniform(
                -1.0, 1.0, size=(num_initial, self.dimension)
            )
            rewards = self._evaluate_batch(points)
            self._x.extend(points)
            self._y.extend(rewards.tolist())

        for _ in range(budget - num_initial):
            x_train, y_train = self._training_set()
            gp = GaussianProcess().fit(x_train, y_train)
            incumbent_point = self._x[int(np.argmax(self._y))]
            candidates = self._candidates(np.asarray(incumbent_point))
            mean, std = gp.predict(candidates)
            acquisition = expected_improvement(mean, std, float(np.max(self._y)))
            chosen = candidates[int(np.argmax(acquisition))]
            reward = self._evaluate(chosen)
            self._x.append(chosen)
            self._y.append(reward)

        return self._result()
