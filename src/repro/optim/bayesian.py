"""Bayesian Optimization baseline (GP + expected improvement)."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.optim.gaussian_process import GaussianProcess, expected_improvement
from repro.optim.registry import register_strategy
from repro.optim.strategy import Proposal, Strategy


@register_strategy
class BayesianOptimization(Strategy):
    """Sequential GP-based Bayesian optimization with the EI acquisition.

    The acquisition is maximised over a random candidate pool refined with a
    small local perturbation step around the incumbent, which is accurate
    enough for the modest dimensionality of the sizing problems while keeping
    the O(N^3) GP cost the dominant term, as in the paper's description.

    The first ask proposes the whole initial design as one batch; every
    later ask refits the GP on the observations accumulated through
    :meth:`tell` and proposes the acquisition maximiser.  The observation
    set *is* the model state, so ``state_dict`` is just (observations, RNG).
    """

    name = "bo"

    def __init__(
        self,
        environment,
        seed: int = 0,
        num_initial: int = 10,
        candidate_pool: int = 512,
        max_training_points: int = 300,
    ):
        super().__init__(environment, seed)
        self.num_initial = num_initial
        self.candidate_pool = candidate_pool
        self.max_training_points = max_training_points
        self._x: List[np.ndarray] = []
        self._y: List[float] = []
        self._initialized = False

    def _candidates(self, incumbent: np.ndarray) -> np.ndarray:
        uniform = self.rng.uniform(
            -1.0, 1.0, size=(self.candidate_pool // 2, self.dimension)
        )
        local = incumbent + 0.2 * self.rng.standard_normal(
            (self.candidate_pool - len(uniform), self.dimension)
        )
        return np.clip(np.vstack([uniform, local]), -1.0, 1.0)

    def _training_set(self):
        x = np.asarray(self._x, dtype=float)
        y = np.asarray(self._y, dtype=float)
        if len(x) > self.max_training_points:
            # Keep the best half and a random sample of the rest to bound the
            # GP's cubic cost on long runs.
            order = np.argsort(-y)
            keep = order[: self.max_training_points // 2]
            rest = order[self.max_training_points // 2 :]
            extra = self.rng.choice(
                rest, size=self.max_training_points - len(keep), replace=False
            )
            idx = np.concatenate([keep, extra])
            return x[idx], y[idx]
        return x, y

    def ask(self) -> List[Proposal]:
        if not self._initialized:
            # The initial design is one evaluator batch (same RNG stream as
            # the previous sample-evaluate-sample loop).
            count = min(self.num_initial, self.budget_remaining())
            points = self.rng.uniform(-1.0, 1.0, size=(count, self.dimension))
            return self.vector_proposals(points)
        x_train, y_train = self._training_set()
        gp = GaussianProcess().fit(x_train, y_train)
        incumbent_point = self._x[int(np.argmax(self._y))]
        candidates = self._candidates(np.asarray(incumbent_point))
        mean, std = gp.predict(candidates)
        acquisition = expected_improvement(mean, std, float(np.max(self._y)))
        chosen = candidates[int(np.argmax(acquisition))]
        return [Proposal(vector=chosen)]

    def tell(self, proposals: Sequence[Proposal], results: Sequence) -> None:
        rewards = self.rewards_of(results)
        for proposal, reward in zip(proposals, rewards):
            self._x.append(np.asarray(proposal.vector, dtype=float))
            self._y.append(float(reward))
        self._initialized = True

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            x=[point.copy() for point in self._x],
            y=list(self._y),
            initialized=bool(self._initialized),
        )
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._x = [np.asarray(point, dtype=float).copy() for point in state["x"]]
        self._y = [float(value) for value in state["y"]]
        self._initialized = bool(state["initialized"])
