"""MACE baseline: batch Bayesian optimization with an acquisition ensemble.

MACE (Lyu et al., ICML 2018) selects each batch of query points from the
Pareto front of several acquisition functions (EI, PI and LCB/UCB) so that
different exploration/exploitation trade-offs are covered simultaneously.
This implementation evaluates the three acquisitions on a shared candidate
pool, extracts the Pareto-optimal candidates and draws one batch from that
front per GP refit.

One ask/tell cycle is one GP refit: :meth:`ask` proposes the initial design
(first cycle) or one Pareto-front batch, :meth:`tell` records the outcomes
into the observation set the next refit trains on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.optim.gaussian_process import (
    GaussianProcess,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.optim.registry import register_strategy
from repro.optim.strategy import Proposal, Strategy


def pareto_front_indices(objectives: np.ndarray) -> np.ndarray:
    """Indices of the Pareto-optimal rows (all objectives maximised)."""
    num_points = objectives.shape[0]
    dominated = np.zeros(num_points, dtype=bool)
    for i in range(num_points):
        if dominated[i]:
            continue
        better_eq = np.all(objectives >= objectives[i], axis=1)
        strictly_better = np.any(objectives > objectives[i], axis=1)
        dominators = better_eq & strictly_better
        if np.any(dominators):
            dominated[i] = True
    return np.where(~dominated)[0]


@register_strategy
class MACE(Strategy):
    """Batch BO with a multi-objective acquisition ensemble (EI, PI, LCB)."""

    name = "mace"

    def __init__(
        self,
        environment,
        seed: int = 0,
        num_initial: int = 10,
        batch_size: int = 4,
        candidate_pool: int = 512,
        max_training_points: int = 300,
    ):
        super().__init__(environment, seed)
        self.num_initial = num_initial
        self.batch_size = batch_size
        self.candidate_pool = candidate_pool
        self.max_training_points = max_training_points
        self._x: List[np.ndarray] = []
        self._y: List[float] = []
        self._initialized = False

    def _training_set(self):
        x = np.asarray(self._x, dtype=float)
        y = np.asarray(self._y, dtype=float)
        if len(x) > self.max_training_points:
            order = np.argsort(-y)
            keep = order[: self.max_training_points // 2]
            rest = order[self.max_training_points // 2 :]
            extra = self.rng.choice(
                rest, size=self.max_training_points - len(keep), replace=False
            )
            idx = np.concatenate([keep, extra])
            return x[idx], y[idx]
        return x, y

    def _select_batch(self, gp: GaussianProcess, batch: int) -> np.ndarray:
        incumbent = np.asarray(self._x[int(np.argmax(self._y))])
        uniform = self.rng.uniform(
            -1.0, 1.0, size=(self.candidate_pool // 2, self.dimension)
        )
        local = incumbent + 0.2 * self.rng.standard_normal(
            (self.candidate_pool - len(uniform), self.dimension)
        )
        candidates = np.clip(np.vstack([uniform, local]), -1.0, 1.0)
        mean, std = gp.predict(candidates)
        best = float(np.max(self._y))
        acquisitions = np.column_stack(
            [
                expected_improvement(mean, std, best),
                probability_of_improvement(mean, std, best),
                upper_confidence_bound(mean, std),
            ]
        )
        front = pareto_front_indices(acquisitions)
        if len(front) >= batch:
            chosen = self.rng.choice(front, size=batch, replace=False)
        else:
            extra = self.rng.choice(
                len(candidates), size=batch - len(front), replace=False
            )
            chosen = np.concatenate([front, extra])
        return candidates[chosen]

    def ask(self) -> List[Proposal]:
        if not self._initialized:
            # The initial design is one evaluator batch (same RNG stream as
            # the previous sample-evaluate-sample loop).
            count = min(self.num_initial, self.budget_remaining())
            points = self.rng.uniform(-1.0, 1.0, size=(count, self.dimension))
            return self.vector_proposals(points)
        x_train, y_train = self._training_set()
        gp = GaussianProcess().fit(x_train, y_train)
        # The Pareto-front proposals of each refit are one evaluator batch
        # — MACE's raison d'être is exactly this batched evaluation.
        batch = self._select_batch(gp, min(self.batch_size, self.budget_remaining()))
        return self.vector_proposals(batch)

    def tell(self, proposals: Sequence[Proposal], results: Sequence) -> None:
        rewards = self.rewards_of(results)
        for proposal, reward in zip(proposals, rewards):
            self._x.append(np.asarray(proposal.vector, dtype=float))
            self._y.append(float(reward))
        self._initialized = True

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            x=[point.copy() for point in self._x],
            y=list(self._y),
            initialized=bool(self._initialized),
        )
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._x = [np.asarray(point, dtype=float).copy() for point in state["x"]]
        self._y = [float(value) for value in state["y"]]
        self._initialized = bool(state["initialized"])
