"""The ask/tell ``Strategy`` protocol every optimization method speaks.

A strategy never runs its own loop.  It is *asked* for a batch of candidate
designs (:class:`Proposal`), someone else — normally the
:class:`~repro.experiments.driver.OptimizationDriver` — evaluates them
through the environment's :class:`~repro.eval.Evaluator`, and the strategy
is *told* the outcomes so it can update its internal state.  Inverting the
old ``run(budget)`` monoliths this way makes every method steppable,
checkpointable (:meth:`Strategy.state_dict` /
:meth:`Strategy.load_state_dict` round-trip the full mid-run state,
including the RNG stream), and composable: budget accounting, persistence,
callbacks and scheduling are driver features instead of per-method
reimplementations.

The protocol::

    strategy.remaining = budget          # maintained by the driver
    while not strategy.done() and budget left:
        proposals = strategy.ask()       # candidate designs
        results = evaluate(proposals)    # one evaluator batch
        strategy.tell(proposals, results)

A proposal carries exactly one design representation — a flat normalised
``vector`` in ``[-1, 1]^d`` (black-box methods), a per-component ``actions``
matrix (the RL agent), or a refined physical ``sizing`` (the human expert
baseline) — and the driver dispatches each kind to the matching environment
batch entry point, so the simulator batches are identical to the ones the
old monolithic loops produced.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.env.environment import SizingEnvironment, StepResult
from repro.optim.base import OptimizationResult


@dataclass
class Proposal:
    """One candidate design, in exactly one representation.

    Attributes:
        vector: Flat normalised design vector in ``[-1, 1]^d``.
        actions: Per-component action matrix ``(num_components, action_dim)``.
        sizing: Refined physical sizing (component -> parameter -> value).
    """

    vector: Optional[np.ndarray] = None
    actions: Optional[np.ndarray] = None
    sizing: Optional[Dict[str, Dict[str, float]]] = None

    def kind(self) -> str:
        """``"vector"``, ``"actions"`` or ``"sizing"`` — whichever is set."""
        set_fields = [
            name
            for name, value in (
                ("vector", self.vector),
                ("actions", self.actions),
                ("sizing", self.sizing),
            )
            if value is not None
        ]
        if len(set_fields) != 1:
            raise ValueError(
                "a Proposal must set exactly one of vector/actions/sizing, "
                f"got {set_fields or 'none'}"
            )
        return set_fields[0]


class Strategy(abc.ABC):
    """Base class of the stepwise ask/tell optimization protocol.

    Subclasses implement :meth:`ask` and :meth:`tell` (and extend
    :meth:`state_dict`/:meth:`load_state_dict` with whatever state their
    update rule carries).  Strategies do not run their own loop: construct
    an :class:`~repro.experiments.driver.OptimizationDriver` around one to
    execute it (the pre-ask/tell ``run(budget)`` entry point is gone).
    """

    #: Registry name, overridden by subclasses.
    name = "abstract"

    def __init__(self, environment: SizingEnvironment, seed: int = 0):
        self.environment = environment
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.dimension = environment.parameter_dimension
        #: Evaluations left in the current budget.  The driver refreshes this
        #: before every :meth:`ask`; set it manually for standalone use.
        self.remaining: Optional[int] = None

    # --- the ask/tell protocol ----------------------------------------------------
    @abc.abstractmethod
    def ask(self) -> List[Proposal]:
        """Propose the next batch of candidate designs to evaluate."""

    @abc.abstractmethod
    def tell(
        self, proposals: Sequence[Proposal], results: Sequence[StepResult]
    ) -> None:
        """Incorporate the evaluation results of a previously asked batch."""

    def done(self) -> bool:
        """Whether the strategy has converged/finished before the budget."""
        return False

    def budget_remaining(self) -> int:
        """The evaluations left in the budget (set by the driver)."""
        if self.remaining is None:
            raise RuntimeError(
                f"{type(self).__name__}.ask() needs `remaining` to be set; "
                "the OptimizationDriver maintains it automatically — for "
                "standalone ask/tell use assign strategy.remaining yourself"
            )
        return int(self.remaining)

    # --- persistence --------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Full resumable state (subclasses extend via ``super()``).

        The base captures the RNG stream so a reloaded strategy continues
        the *identical* sequence of proposals it would have produced
        uninterrupted.
        """
        return {"rng": self.rng.bit_generator.state}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state saved by :meth:`state_dict`."""
        self.rng.bit_generator.state = state["rng"]

    # --- removed legacy entry point -------------------------------------------------
    def run(self, budget: int) -> OptimizationResult:
        """Removed: strategies no longer run their own loop.

        The pre-ask/tell ``run(budget)`` shim has been retired; the single
        execution path is the driver, which adds budget accounting,
        checkpointing, callbacks and store persistence on top of the same
        ask/tell cycle.
        """
        raise RuntimeError(
            f"{type(self).__name__}.run() was removed — drive the strategy "
            "with repro.experiments.driver.OptimizationDriver instead: "
            "OptimizationDriver(strategy, budget=...).run()"
        )

    # --- helpers ------------------------------------------------------------------
    @staticmethod
    def vector_proposals(points: np.ndarray) -> List[Proposal]:
        """Wrap the rows of a ``(count, d)`` array as vector proposals."""
        return [Proposal(vector=np.asarray(point, dtype=float)) for point in points]

    @staticmethod
    def rewards_of(results: Sequence[StepResult]) -> np.ndarray:
        """The rewards of a result batch, in order, as ``float64``."""
        return np.asarray([result.reward for result in results], dtype=np.float64)
