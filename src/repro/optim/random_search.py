"""Uniform random search over the normalised design space."""

from __future__ import annotations

from repro.optim.base import BlackBoxOptimizer, OptimizationResult


class RandomSearch(BlackBoxOptimizer):
    """Baseline that samples design points uniformly at random."""

    name = "random"

    def run(self, budget: int) -> OptimizationResult:
        """Evaluate ``budget`` uniformly random designs."""
        for _ in range(budget):
            point = self.rng.uniform(-1.0, 1.0, size=self.dimension)
            self._evaluate(point)
        return self._result()
