"""Uniform random search over the normalised design space."""

from __future__ import annotations

from typing import List, Sequence

from repro.optim.registry import register_strategy
from repro.optim.strategy import Proposal, Strategy


@register_strategy
class RandomSearch(Strategy):
    """Baseline that samples design points uniformly at random.

    One ask proposes the entire remaining budget as a single batch — the
    same RNG stream as sequential per-design sampling — so the run
    parallelises perfectly and the strategy carries no state beyond its RNG.
    """

    name = "random"

    def ask(self) -> List[Proposal]:
        count = self.budget_remaining()
        points = self.rng.uniform(-1.0, 1.0, size=(count, self.dimension))
        return self.vector_proposals(points)

    def tell(self, proposals: Sequence[Proposal], results: Sequence) -> None:
        """Random search learns nothing from the outcomes."""
