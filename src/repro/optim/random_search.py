"""Uniform random search over the normalised design space."""

from __future__ import annotations

from repro.optim.base import BlackBoxOptimizer, OptimizationResult


class RandomSearch(BlackBoxOptimizer):
    """Baseline that samples design points uniformly at random."""

    name = "random"

    def run(self, budget: int) -> OptimizationResult:
        """Evaluate ``budget`` uniformly random designs as one batch.

        The whole population is sampled up front (the same RNG stream as
        sequential per-design sampling) and submitted in a single evaluator
        batch, so the run parallelises perfectly.
        """
        if budget > 0:
            points = self.rng.uniform(-1.0, 1.0, size=(budget, self.dimension))
            self._evaluate_batch(points)
        return self._result()
