"""Optimization strategies compared in the paper, behind one ask/tell API."""

from repro.optim.base import OptimizationResult
from repro.optim.bayesian import BayesianOptimization
from repro.optim.evolution import EvolutionStrategy
from repro.optim.gaussian_process import (
    GaussianProcess,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.optim.human import HumanExpert
from repro.optim.mace import MACE, pareto_front_indices
from repro.optim.random_search import RandomSearch
from repro.optim.registry import (
    STRATEGY_CLASSES,
    get_strategy,
    list_optimizers,
    register_strategy,
    strategy_config_fields,
)
from repro.optim.strategy import Proposal, Strategy

#: Pre-ask/tell names that no longer exist, mapped to their replacements.
_REMOVED_ALIASES = {
    "OPTIMIZER_CLASSES": "STRATEGY_CLASSES",
    "get_optimizer": "get_strategy",
    "BlackBoxOptimizer": "Strategy",
}


def __getattr__(name: str):
    """Turn lookups of the removed pre-ask/tell aliases into clear errors."""
    if name in _REMOVED_ALIASES:
        raise AttributeError(
            f"repro.optim.{name} was removed; "
            f"use {_REMOVED_ALIASES[name]} instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Strategy",
    "Proposal",
    "OptimizationResult",
    "RandomSearch",
    "EvolutionStrategy",
    "BayesianOptimization",
    "MACE",
    "HumanExpert",
    "GaussianProcess",
    "expected_improvement",
    "probability_of_improvement",
    "upper_confidence_bound",
    "pareto_front_indices",
    "STRATEGY_CLASSES",
    "register_strategy",
    "get_strategy",
    "list_optimizers",
    "strategy_config_fields",
]
