"""Optimization strategies compared in the paper, behind one ask/tell API."""

from repro.optim.base import OptimizationResult
from repro.optim.bayesian import BayesianOptimization
from repro.optim.evolution import EvolutionStrategy
from repro.optim.gaussian_process import (
    GaussianProcess,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.optim.human import HumanExpert
from repro.optim.mace import MACE, pareto_front_indices
from repro.optim.random_search import RandomSearch
from repro.optim.registry import (
    OPTIMIZER_CLASSES,
    STRATEGY_CLASSES,
    get_optimizer,
    get_strategy,
    list_optimizers,
    register_strategy,
    strategy_config_fields,
)
from repro.optim.strategy import Proposal, Strategy

#: Deprecated alias: the pre-ask/tell base class name.  Methods no longer
#: implement a monolithic ``run`` loop; subclass :class:`Strategy` instead.
BlackBoxOptimizer = Strategy

__all__ = [
    "Strategy",
    "Proposal",
    "BlackBoxOptimizer",
    "OptimizationResult",
    "RandomSearch",
    "EvolutionStrategy",
    "BayesianOptimization",
    "MACE",
    "HumanExpert",
    "GaussianProcess",
    "expected_improvement",
    "probability_of_improvement",
    "upper_confidence_bound",
    "pareto_front_indices",
    "STRATEGY_CLASSES",
    "OPTIMIZER_CLASSES",
    "register_strategy",
    "get_strategy",
    "get_optimizer",
    "list_optimizers",
    "strategy_config_fields",
]
