"""Black-box baseline optimizers compared against GCN-RL in the paper."""

from repro.optim.base import BlackBoxOptimizer, OptimizationResult
from repro.optim.bayesian import BayesianOptimization
from repro.optim.evolution import EvolutionStrategy
from repro.optim.gaussian_process import (
    GaussianProcess,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.optim.mace import MACE, pareto_front_indices
from repro.optim.random_search import RandomSearch
from repro.optim.registry import OPTIMIZER_CLASSES, get_optimizer, list_optimizers

__all__ = [
    "BlackBoxOptimizer",
    "OptimizationResult",
    "RandomSearch",
    "EvolutionStrategy",
    "BayesianOptimization",
    "MACE",
    "GaussianProcess",
    "expected_improvement",
    "probability_of_improvement",
    "upper_confidence_bound",
    "pareto_front_indices",
    "OPTIMIZER_CLASSES",
    "get_optimizer",
    "list_optimizers",
]
