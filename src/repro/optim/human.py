"""The paper's human-expert baseline as a one-shot strategy.

Every benchmark circuit ships an expert sizing; "optimizing" with the human
method is a single simulator evaluation of that design.  Registering it as a
:class:`~repro.optim.strategy.Strategy` lets the runner, campaigns and the
CLI treat all seven paper methods uniformly through one driver loop.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.optim.registry import register_strategy
from repro.optim.strategy import Proposal, Strategy


@register_strategy
class HumanExpert(Strategy):
    """Evaluates the circuit's expert sizing once, then is done."""

    name = "human"

    def __init__(self, environment, seed: int = 0):
        super().__init__(environment, seed)
        self._evaluated = False

    def ask(self) -> List[Proposal]:
        return [Proposal(sizing=self.environment.circuit.expert_sizing())]

    def tell(self, proposals: Sequence[Proposal], results: Sequence) -> None:
        self._evaluated = True

    def done(self) -> bool:
        return self._evaluated

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["evaluated"] = bool(self._evaluated)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._evaluated = bool(state["evaluated"])
