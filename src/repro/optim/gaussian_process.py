"""Minimal Gaussian-process regression used by the BO and MACE baselines."""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm


class GaussianProcess:
    """GP regression with an RBF (squared-exponential) kernel.

    The hyper-parameters (length scale, signal variance, noise) are fit with
    a small grid search over the marginal likelihood, which is robust and
    cheap for the few-hundred-sample datasets these baselines see.
    """

    def __init__(
        self,
        length_scale: float = 0.5,
        signal_variance: float = 1.0,
        noise: float = 1e-3,
    ):
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise = noise
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._cho = None
        self._alpha: Optional[np.ndarray] = None

    @staticmethod
    def _sq_dist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (
            np.sum(a**2, axis=1)[:, None]
            + np.sum(b**2, axis=1)[None, :]
            - 2.0 * a @ b.T
        )

    def _kernel_from_sq_dist(self, sq_dist: np.ndarray) -> np.ndarray:
        return self.signal_variance * np.exp(
            -0.5 * np.maximum(sq_dist, 0.0) / self.length_scale**2
        )

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._kernel_from_sq_dist(self._sq_dist(a, b))

    def _log_marginal(self, sq_dist: np.ndarray, y: np.ndarray) -> float:
        k = self._kernel_from_sq_dist(sq_dist) + self.noise * np.eye(len(y))
        try:
            cho = cho_factor(k, lower=True)
        except np.linalg.LinAlgError:
            return -np.inf
        alpha = cho_solve(cho, y)
        log_det = 2.0 * np.sum(np.log(np.diag(cho[0])))
        return float(-0.5 * y @ alpha - 0.5 * log_det - 0.5 * len(y) * np.log(2 * np.pi))

    def fit(self, x: np.ndarray, y: np.ndarray, tune: bool = True) -> "GaussianProcess":
        """Fit the GP to data, optionally tuning hyper-parameters by grid search.

        The pairwise squared-distance matrix only depends on the data, not on
        the hyper-parameters, so it is computed once and shared by all grid
        combinations and the final fit.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y)) or 1.0
        y_norm = (y - self._y_mean) / self._y_std
        sq_dist = self._sq_dist(x, x)

        if tune and len(x) >= 5:
            best = (-np.inf, self.length_scale, self.noise)
            for length_scale in (0.2, 0.4, 0.8, 1.5, 3.0):
                for noise in (1e-4, 1e-3, 1e-2):
                    self.length_scale, self.noise = length_scale, noise
                    score = self._log_marginal(sq_dist, y_norm)
                    if score > best[0]:
                        best = (score, length_scale, noise)
            _, self.length_scale, self.noise = best

        k = self._kernel_from_sq_dist(sq_dist) + self.noise * np.eye(len(x))
        self._cho = cho_factor(k + 1e-10 * np.eye(len(x)), lower=True)
        self._alpha = cho_solve(self._cho, y_norm)
        self._x, self._y = x, y_norm
        return self

    def predict(self, x_new: np.ndarray):
        """Posterior mean and standard deviation at the query points."""
        if self._x is None:
            raise RuntimeError("predict called before fit")
        x_new = np.asarray(x_new, dtype=float)
        k_star = self._kernel(x_new, self._x)
        mean = k_star @ self._alpha
        v = cho_solve(self._cho, k_star.T)
        var = self.signal_variance + self.noise - np.sum(k_star * v.T, axis=1)
        std = np.sqrt(np.maximum(var, 1e-12))
        return mean * self._y_std + self._y_mean, std * self._y_std


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """Expected improvement acquisition (maximisation convention)."""
    std = np.maximum(std, 1e-12)
    z = (mean - best - xi) / std
    return (mean - best - xi) * norm.cdf(z) + std * norm.pdf(z)


def probability_of_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """Probability-of-improvement acquisition (maximisation convention)."""
    std = np.maximum(std, 1e-12)
    return norm.cdf((mean - best - xi) / std)


def upper_confidence_bound(
    mean: np.ndarray, std: np.ndarray, kappa: float = 2.0
) -> np.ndarray:
    """Upper confidence bound acquisition (maximisation convention)."""
    return mean + kappa * std
