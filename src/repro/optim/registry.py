"""One registry for every optimization method of the paper.

Strategies self-register with the :func:`register_strategy` class decorator,
so the black-box baselines (random, ES, BO, MACE), the human-expert baseline
and the RL agents (GCN-RL, NG-RL) all live behind one source of truth:
:func:`list_optimizers` enumerates them, :func:`get_strategy` instantiates
them with validated config kwargs, and the CLI/runner derive their method
choices and error suggestions from the same table.

The RL strategies live in :mod:`repro.rl.strategy`; importing them from here
at module scope would pull the whole RL stack into every ``repro.optim``
import, so the registry imports the method modules lazily on first query.
"""

from __future__ import annotations

import difflib
import importlib
import inspect
from typing import Dict, List, Type

from repro.env.environment import SizingEnvironment
from repro.optim.strategy import Strategy

#: All registered strategy classes, keyed by their paper method name.
STRATEGY_CLASSES: Dict[str, Type[Strategy]] = {}

#: Pre-ask/tell names that no longer exist, mapped to their replacements.
_REMOVED_ALIASES = {
    "OPTIMIZER_CLASSES": "STRATEGY_CLASSES",
    "get_optimizer": "get_strategy",
}


def __getattr__(name: str):
    """Turn lookups of the removed pre-ask/tell aliases into clear errors."""
    if name in _REMOVED_ALIASES:
        raise AttributeError(
            f"repro.optim.registry.{name} was removed; "
            f"use {_REMOVED_ALIASES[name]} instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Modules whose import registers the paper's methods (imported lazily).
_STRATEGY_MODULES = (
    "repro.optim.random_search",
    "repro.optim.evolution",
    "repro.optim.bayesian",
    "repro.optim.mace",
    "repro.optim.human",
    "repro.rl.strategy",
)


def register_strategy(cls: Type[Strategy]) -> Type[Strategy]:
    """Class decorator adding a :class:`Strategy` subclass to the registry."""
    name = getattr(cls, "name", None)
    if not name or name == Strategy.name:
        raise ValueError(
            f"{cls.__name__} must define a concrete `name` to be registered"
        )
    existing = STRATEGY_CLASSES.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"strategy name {name!r} already registered by {existing.__name__}"
        )
    STRATEGY_CLASSES[name] = cls
    return cls


def _ensure_registered() -> None:
    """Import every method module so its strategies are registered."""
    for module in _STRATEGY_MODULES:
        importlib.import_module(module)


def list_optimizers() -> List[str]:
    """Names of all registered optimization strategies (all paper methods)."""
    _ensure_registered()
    return sorted(STRATEGY_CLASSES)


def strategy_config_fields(cls: Type[Strategy]) -> List[str]:
    """The config kwargs a strategy class accepts besides environment/seed."""
    fields = []
    for parameter in inspect.signature(cls.__init__).parameters.values():
        if parameter.name in ("self", "environment", "seed"):
            continue
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            fields.append(parameter.name)
    return fields


def unknown_method_message(name: str) -> str:
    """Error text for an unregistered method, with a did-you-mean hint."""
    known = list_optimizers()
    close = difflib.get_close_matches(name.lower(), known, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    return f"unknown optimizer {name!r}{hint}; available: {', '.join(known)}"


def get_strategy(
    name: str, environment: SizingEnvironment, seed: int = 0, **kwargs
) -> Strategy:
    """Instantiate an optimization strategy by registry name.

    Unknown config kwargs are rejected up front with the strategy's accepted
    field names, instead of surfacing later as an opaque ``TypeError`` from
    the constructor.
    """
    _ensure_registered()
    key = name.lower()
    if key not in STRATEGY_CLASSES:
        raise KeyError(unknown_method_message(name))
    cls = STRATEGY_CLASSES[key]
    accepted = strategy_config_fields(cls)
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        accepted_text = ", ".join(accepted) if accepted else "none"
        raise TypeError(
            f"strategy {key!r} does not accept config field(s) "
            f"{', '.join(repr(k) for k in unknown)}; accepted: {accepted_text}"
        )
    return cls(environment, seed=seed, **kwargs)
