"""Registry of black-box optimizers, keyed by the names used in the paper."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.env.environment import SizingEnvironment
from repro.optim.base import BlackBoxOptimizer
from repro.optim.bayesian import BayesianOptimization
from repro.optim.evolution import EvolutionStrategy
from repro.optim.mace import MACE
from repro.optim.random_search import RandomSearch

#: All registered optimizer classes.
OPTIMIZER_CLASSES: Dict[str, Type[BlackBoxOptimizer]] = {
    RandomSearch.name: RandomSearch,
    EvolutionStrategy.name: EvolutionStrategy,
    BayesianOptimization.name: BayesianOptimization,
    MACE.name: MACE,
}


def list_optimizers() -> List[str]:
    """Names of all registered black-box optimizers."""
    return sorted(OPTIMIZER_CLASSES)


def get_optimizer(
    name: str, environment: SizingEnvironment, seed: int = 0, **kwargs
) -> BlackBoxOptimizer:
    """Instantiate a black-box optimizer by name."""
    key = name.lower()
    if key not in OPTIMIZER_CLASSES:
        known = ", ".join(list_optimizers())
        raise KeyError(f"unknown optimizer {name!r}; available: {known}")
    return OPTIMIZER_CLASSES[key](environment, seed=seed, **kwargs)
