"""Evolution Strategy baseline (CMA-style (µ, λ) ES).

The paper cites Hansen's CMA-ES tutorial as its ES baseline.  This module
implements a compact covariance-matrix-adaptation ES: a multivariate Gaussian
search distribution whose mean, step size and covariance are adapted from the
best-ranked offspring of each generation, with box constraints handled by
clipping to the normalised design cube.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.optim.base import BlackBoxOptimizer, OptimizationResult


class EvolutionStrategy(BlackBoxOptimizer):
    """(µ, λ) evolution strategy with covariance-matrix adaptation."""

    name = "es"

    def __init__(
        self,
        environment,
        seed: int = 0,
        population_size: Optional[int] = None,
        initial_sigma: float = 0.4,
    ):
        super().__init__(environment, seed)
        d = self.dimension
        self.population_size = population_size or max(8, 4 + int(3 * np.log(d)))
        self.num_parents = max(2, self.population_size // 2)
        self.initial_sigma = initial_sigma

        # Log-linear recombination weights (standard CMA weighting).
        ranks = np.arange(1, self.num_parents + 1)
        weights = np.log(self.num_parents + 0.5) - np.log(ranks)
        self.weights = weights / weights.sum()
        self.mu_eff = 1.0 / np.sum(self.weights**2)

        # Adaptation constants.
        self.c_sigma = (self.mu_eff + 2) / (d + self.mu_eff + 5)
        self.d_sigma = (
            1 + 2 * max(0.0, np.sqrt((self.mu_eff - 1) / (d + 1)) - 1) + self.c_sigma
        )
        self.c_c = (4 + self.mu_eff / d) / (d + 4 + 2 * self.mu_eff / d)
        self.c_1 = 2 / ((d + 1.3) ** 2 + self.mu_eff)
        self.c_mu = min(
            1 - self.c_1,
            2 * (self.mu_eff - 2 + 1 / self.mu_eff) / ((d + 2) ** 2 + self.mu_eff),
        )
        self.chi_n = np.sqrt(d) * (1 - 1 / (4 * d) + 1 / (21 * d**2))

    def run(self, budget: int) -> OptimizationResult:
        """Run generations of the ES until the evaluation budget is exhausted."""
        d = self.dimension
        mean = np.zeros(d)
        sigma = self.initial_sigma
        covariance = np.eye(d)
        path_sigma = np.zeros(d)
        path_c = np.zeros(d)
        evaluations = 0
        generation = 0

        while evaluations < budget:
            lam = min(self.population_size, budget - evaluations)
            # Sample offspring from N(mean, sigma^2 C).
            try:
                chol = np.linalg.cholesky(
                    covariance + 1e-10 * np.eye(d)
                )
            except np.linalg.LinAlgError:
                covariance = np.eye(d)
                chol = np.eye(d)
            raw = self.rng.standard_normal((lam, d))
            offspring = mean + sigma * raw @ chol.T
            offspring = np.clip(offspring, -1.0, 1.0)

            # The whole generation is one evaluator batch.
            rewards = self._evaluate_batch(offspring)
            evaluations += lam
            if lam < self.num_parents:
                break

            order = np.argsort(-rewards)
            parents = offspring[order[: self.num_parents]]
            steps = (parents - mean) / max(sigma, 1e-12)
            new_mean = mean + sigma * self.weights @ steps

            # Step-size adaptation (cumulative path length control).
            inv_chol = np.linalg.inv(chol)
            mean_step = self.weights @ steps
            path_sigma = (1 - self.c_sigma) * path_sigma + np.sqrt(
                self.c_sigma * (2 - self.c_sigma) * self.mu_eff
            ) * (inv_chol @ mean_step)
            sigma *= np.exp(
                (self.c_sigma / self.d_sigma)
                * (np.linalg.norm(path_sigma) / self.chi_n - 1)
            )
            sigma = float(np.clip(sigma, 1e-3, 1.0))

            # Covariance adaptation (rank-1 + rank-µ updates).
            h_sigma = float(
                np.linalg.norm(path_sigma)
                / np.sqrt(1 - (1 - self.c_sigma) ** (2 * (generation + 1)))
                < (1.4 + 2 / (d + 1)) * self.chi_n
            )
            path_c = (1 - self.c_c) * path_c + h_sigma * np.sqrt(
                self.c_c * (2 - self.c_c) * self.mu_eff
            ) * mean_step
            rank_mu = sum(
                w * np.outer(s, s) for w, s in zip(self.weights, steps)
            )
            covariance = (
                (1 - self.c_1 - self.c_mu) * covariance
                + self.c_1 * np.outer(path_c, path_c)
                + self.c_mu * rank_mu
            )
            covariance = 0.5 * (covariance + covariance.T)

            mean = np.clip(new_mean, -1.0, 1.0)
            generation += 1

        return self._result()
