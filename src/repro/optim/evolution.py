"""Evolution Strategy baseline (CMA-style (µ, λ) ES).

The paper cites Hansen's CMA-ES tutorial as its ES baseline.  This module
implements a compact covariance-matrix-adaptation ES: a multivariate Gaussian
search distribution whose mean, step size and covariance are adapted from the
best-ranked offspring of each generation, with box constraints handled by
clipping to the normalised design cube.

One ask/tell cycle is one generation: :meth:`ask` samples λ offspring from
the current search distribution, :meth:`tell` performs the mean / step-size /
covariance adaptation from their ranked rewards.  The whole distribution
state is round-tripped by ``state_dict``, so a checkpointed ES resumes its
adaptation trajectory bit-identically.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.optim.registry import register_strategy
from repro.optim.strategy import Proposal, Strategy


@register_strategy
class EvolutionStrategy(Strategy):
    """(µ, λ) evolution strategy with covariance-matrix adaptation."""

    name = "es"

    def __init__(
        self,
        environment,
        seed: int = 0,
        population_size: Optional[int] = None,
        initial_sigma: float = 0.4,
    ):
        super().__init__(environment, seed)
        d = self.dimension
        self.population_size = population_size or max(8, 4 + int(3 * np.log(d)))
        self.num_parents = max(2, self.population_size // 2)
        self.initial_sigma = initial_sigma

        # Log-linear recombination weights (standard CMA weighting).
        ranks = np.arange(1, self.num_parents + 1)
        weights = np.log(self.num_parents + 0.5) - np.log(ranks)
        self.weights = weights / weights.sum()
        self.mu_eff = 1.0 / np.sum(self.weights**2)

        # Adaptation constants.
        self.c_sigma = (self.mu_eff + 2) / (d + self.mu_eff + 5)
        self.d_sigma = (
            1 + 2 * max(0.0, np.sqrt((self.mu_eff - 1) / (d + 1)) - 1) + self.c_sigma
        )
        self.c_c = (4 + self.mu_eff / d) / (d + 4 + 2 * self.mu_eff / d)
        self.c_1 = 2 / ((d + 1.3) ** 2 + self.mu_eff)
        self.c_mu = min(
            1 - self.c_1,
            2 * (self.mu_eff - 2 + 1 / self.mu_eff) / ((d + 2) ** 2 + self.mu_eff),
        )
        self.chi_n = np.sqrt(d) * (1 - 1 / (4 * d) + 1 / (21 * d**2))

        # Search-distribution state, adapted generation by generation.
        self.mean = np.zeros(d)
        self.sigma = initial_sigma
        self.covariance = np.eye(d)
        self.path_sigma = np.zeros(d)
        self.path_c = np.zeros(d)
        self.generation = 0
        self._done = False
        # Cholesky factor used to sample the pending generation; transient
        # between ask and tell (checkpoints only happen at step boundaries).
        self._chol: Optional[np.ndarray] = None  # repro-lint: ignore[checkpoint-completeness]

    def ask(self) -> List[Proposal]:
        """Sample one generation of offspring from N(mean, sigma^2 C)."""
        d = self.dimension
        lam = min(self.population_size, self.budget_remaining())
        try:
            chol = np.linalg.cholesky(self.covariance + 1e-10 * np.eye(d))
        except np.linalg.LinAlgError:
            self.covariance = np.eye(d)
            chol = np.eye(d)
        raw = self.rng.standard_normal((lam, d))
        offspring = self.mean + self.sigma * raw @ chol.T
        offspring = np.clip(offspring, -1.0, 1.0)
        self._chol = chol
        return self.vector_proposals(offspring)

    def tell(self, proposals: Sequence[Proposal], results: Sequence) -> None:
        """Adapt mean, step size and covariance from the ranked offspring."""
        rewards = self.rewards_of(results)
        offspring = np.asarray([p.vector for p in proposals], dtype=float)
        lam = len(offspring)
        if lam < self.num_parents:
            # Too few offspring left in the budget for a rank-µ update.
            self._done = True
            return
        d = self.dimension
        chol = self._chol if self._chol is not None else np.linalg.cholesky(
            self.covariance + 1e-10 * np.eye(d)
        )

        order = np.argsort(-rewards)
        parents = offspring[order[: self.num_parents]]
        steps = (parents - self.mean) / max(self.sigma, 1e-12)
        new_mean = self.mean + self.sigma * self.weights @ steps

        # Step-size adaptation (cumulative path length control).
        inv_chol = np.linalg.inv(chol)
        mean_step = self.weights @ steps
        self.path_sigma = (1 - self.c_sigma) * self.path_sigma + np.sqrt(
            self.c_sigma * (2 - self.c_sigma) * self.mu_eff
        ) * (inv_chol @ mean_step)
        self.sigma *= np.exp(
            (self.c_sigma / self.d_sigma)
            * (np.linalg.norm(self.path_sigma) / self.chi_n - 1)
        )
        self.sigma = float(np.clip(self.sigma, 1e-3, 1.0))

        # Covariance adaptation (rank-1 + rank-µ updates).
        h_sigma = float(
            np.linalg.norm(self.path_sigma)
            / np.sqrt(1 - (1 - self.c_sigma) ** (2 * (self.generation + 1)))
            < (1.4 + 2 / (d + 1)) * self.chi_n
        )
        self.path_c = (1 - self.c_c) * self.path_c + h_sigma * np.sqrt(
            self.c_c * (2 - self.c_c) * self.mu_eff
        ) * mean_step
        rank_mu = sum(
            w * np.outer(s, s) for w, s in zip(self.weights, steps)
        )
        covariance = (
            (1 - self.c_1 - self.c_mu) * self.covariance
            + self.c_1 * np.outer(self.path_c, self.path_c)
            + self.c_mu * rank_mu
        )
        self.covariance = 0.5 * (covariance + covariance.T)

        self.mean = np.clip(new_mean, -1.0, 1.0)
        self.generation += 1
        self._chol = None

    def done(self) -> bool:
        return self._done

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            mean=self.mean.copy(),
            sigma=float(self.sigma),
            covariance=self.covariance.copy(),
            path_sigma=self.path_sigma.copy(),
            path_c=self.path_c.copy(),
            generation=int(self.generation),
            done=bool(self._done),
        )
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self.mean = np.asarray(state["mean"], dtype=float).copy()
        self.sigma = float(state["sigma"])
        self.covariance = np.asarray(state["covariance"], dtype=float).copy()
        self.path_sigma = np.asarray(state["path_sigma"], dtype=float).copy()
        self.path_c = np.asarray(state["path_c"], dtype=float).copy()
        self.generation = int(state["generation"])
        self._done = bool(state["done"])
        self._chol = None
