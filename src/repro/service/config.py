"""Declarative service configuration with ``REPRO_SERVE_*`` env overrides.

Mirrors the :class:`~repro.eval.EvaluatorConfig` idiom: a frozen-ish
dataclass that describes the server without holding any resources, so the
CLI, tests and the demo can all construct servers the same validated way.

Environment overrides (each beaten by the matching CLI flag):

* ``REPRO_SERVE_HOST`` / ``REPRO_SERVE_PORT`` — bind address.
* ``REPRO_SERVE_LINGER_MS`` — coalescing window: how long an evaluate
  submission waits for same-bucket company before a batch is issued.
* ``REPRO_SERVE_MAX_BATCH`` — designs per coalesced simulator batch.
* ``REPRO_SERVE_CHECKPOINT_EVERY`` — driver steps between run checkpoints.
* ``REPRO_SERVE_CACHE`` — per-bucket LRU design-cache capacity.
* ``REPRO_SERVE_MAX_PENDING`` — admission-control bound on queued designs.
* ``REPRO_SERVE_EVAL_ATTEMPTS`` / ``REPRO_SERVE_EVAL_DEADLINE`` — retry
  and per-attempt deadline policy of the resilient evaluation wrapper.
* ``REPRO_SERVE_CHAOS_RATE`` / ``REPRO_SERVE_CHAOS_SEED`` /
  ``REPRO_SERVE_CHAOS_TRANSIENT`` — seeded fault injection (chaos testing
  against a live server; 0 rate = off).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.eval import BACKENDS, EvaluatorConfig
from repro.resilience import RetryPolicy
from repro.store import STORE_BACKENDS

#: Default TCP port of the optimization service.
DEFAULT_PORT = 8711

#: Default coalescing window in milliseconds.
DEFAULT_LINGER_MS = 10.0

#: Default per-bucket design-cache capacity (dedup across clients needs it).
DEFAULT_CACHE_SIZE = 4096


def _env_int(name: str, default: int, minimum: int = 0) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return max(int(value), minimum)
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        return default


@dataclass
class ServiceConfig:
    """Everything needed to start one :class:`~repro.service.OptimizationService`.

    Attributes:
        host: Bind address.
        port: Bind port (0 asks the OS for an ephemeral port — tests).
        store_backend: Run-store backend runs/checkpoints persist to
            (``sqlite`` recommended: WAL mode shares the store with external
            readers).  ``memory`` serves fine but restarts are not lossless.
        store_dir: Store directory (required by the persistent backends).
        eval_backend: Evaluator backend coalesced batches go through
            (``local`` is bit-identical to direct evaluation; ``vectorized``
            trades ~1e-12 FoM parity for the stacked-MNA speedup).
        eval_workers: Worker-pool size for the pool backends (0 = CPU count).
        cache_size: Per-bucket LRU design cache; also the cross-client dedup
            substrate, so 0 disables stored-result dedup.
        checkpoint_every: Driver steps between run checkpoints (0 disables —
            restarts then replay runs from scratch).
        linger_ms: Coalescing window in milliseconds.
        max_batch: Designs per coalesced evaluator batch.
        max_pending: Admission-control bound on queued designs; a submit
            that would overflow it gets a retryable ``overloaded`` error
            (0 = unbounded).
        eval_attempts: Evaluation attempts per design before its failure
            is terminal (1 = no retry).
        eval_deadline_s: Per-attempt evaluation deadline in seconds
            (0 = unlimited; the default, because enforcement costs a
            watcher thread per attempt).
        chaos_rate: Fraction of designs the chaos harness poisons with
            injected simulator faults (0 disables injection entirely).
        chaos_seed: Seed of the deterministic fault-injection decisions.
        chaos_transient: Attempts each poisoned design fails before
            recovering (0 = faults are permanent → quarantine).
    """

    host: str = field(
        default_factory=lambda: os.environ.get("REPRO_SERVE_HOST", "127.0.0.1")
    )
    port: int = field(
        default_factory=lambda: _env_int("REPRO_SERVE_PORT", DEFAULT_PORT)
    )
    store_backend: str = "memory"
    store_dir: str = ""
    eval_backend: str = "local"
    eval_workers: int = 0
    cache_size: int = field(
        default_factory=lambda: _env_int("REPRO_SERVE_CACHE", DEFAULT_CACHE_SIZE)
    )
    checkpoint_every: int = field(
        default_factory=lambda: _env_int("REPRO_SERVE_CHECKPOINT_EVERY", 1)
    )
    linger_ms: float = field(
        default_factory=lambda: _env_float("REPRO_SERVE_LINGER_MS", DEFAULT_LINGER_MS)
    )
    max_batch: int = field(
        default_factory=lambda: _env_int("REPRO_SERVE_MAX_BATCH", 64, minimum=1)
    )
    max_pending: int = field(
        default_factory=lambda: _env_int("REPRO_SERVE_MAX_PENDING", 0)
    )
    eval_attempts: int = field(
        default_factory=lambda: _env_int("REPRO_SERVE_EVAL_ATTEMPTS", 3, minimum=1)
    )
    eval_deadline_s: float = field(
        default_factory=lambda: _env_float("REPRO_SERVE_EVAL_DEADLINE", 0.0)
    )
    chaos_rate: float = field(
        default_factory=lambda: _env_float("REPRO_SERVE_CHAOS_RATE", 0.0)
    )
    chaos_seed: int = field(
        default_factory=lambda: _env_int("REPRO_SERVE_CHAOS_SEED", 0)
    )
    chaos_transient: int = field(
        default_factory=lambda: _env_int("REPRO_SERVE_CHAOS_TRANSIENT", 1)
    )

    def __post_init__(self):
        if not (0 <= int(self.port) <= 65535):
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.store_backend not in STORE_BACKENDS:
            raise ValueError(
                f"unknown store backend {self.store_backend!r}; "
                f"expected one of {STORE_BACKENDS}"
            )
        if self.store_backend != "memory" and not self.store_dir:
            raise ValueError(
                f"store backend {self.store_backend!r} requires store_dir"
            )
        if self.eval_backend not in BACKENDS:
            raise ValueError(
                f"unknown eval backend {self.eval_backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if self.linger_ms < 0:
            raise ValueError(f"linger_ms must be >= 0, got {self.linger_ms}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {self.max_pending}")
        if self.eval_attempts < 1:
            raise ValueError(
                f"eval_attempts must be >= 1, got {self.eval_attempts}"
            )
        if self.eval_deadline_s < 0:
            raise ValueError(
                f"eval_deadline_s must be >= 0, got {self.eval_deadline_s}"
            )
        if not (0.0 <= self.chaos_rate <= 1.0):
            raise ValueError(
                f"chaos_rate must be in [0, 1], got {self.chaos_rate}"
            )
        if self.chaos_transient < 0:
            raise ValueError(
                f"chaos_transient must be >= 0, got {self.chaos_transient}"
            )

    def retry_policy(self) -> RetryPolicy:
        """The retry/deadline policy of the coalescer's resilient wrapper."""
        return RetryPolicy(
            max_attempts=self.eval_attempts,
            deadline_s=self.eval_deadline_s or None,
        )

    def chaos_config(self) -> Optional[Dict[str, Any]]:
        """Fault-injection kwargs for the coalescer (``None`` = chaos off)."""
        if self.chaos_rate <= 0:
            return None
        return {
            "seed": self.chaos_seed,
            "error_rate": self.chaos_rate,
            "transient_attempts": self.chaos_transient,
        }

    def evaluator_config(self) -> EvaluatorConfig:
        """The evaluator stack each coalescer bucket is built with."""
        return EvaluatorConfig(
            backend=self.eval_backend,
            max_workers=self.eval_workers or None,
            cache_size=self.cache_size,
        )

    def describe(self) -> str:
        """One-line summary used by the startup banner and logs."""
        store = (
            f"{self.store_backend}:{self.store_dir}"
            if self.store_dir
            else self.store_backend
        )
        chaos = (
            f", chaos={self.chaos_rate}@seed{self.chaos_seed}"
            if self.chaos_rate > 0
            else ""
        )
        return (
            f"ServiceConfig({self.host}:{self.port}, store={store}, "
            f"eval={self.eval_backend}, linger={self.linger_ms}ms, "
            f"checkpoint_every={self.checkpoint_every}{chaos})"
        )
