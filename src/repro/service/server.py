"""The asyncio optimization server: NDJSON actor front-end + HTTP adapter.

Architecture (the proactor/supervised-actor pattern: one event loop owns all
routing and bookkeeping; blocking work — simulator batches, optimization
steps — runs in worker threads and reports back via thread-safe callbacks):

* one :class:`~repro.service.coalescer.BatchCoalescer` merges every
  connection's evaluate traffic into shared simulator batches, and
* one :class:`~repro.service.supervisor.RunSupervisor` executes run requests
  as supervised jobs with progress streaming and journal-backed adoption.

Both protocols share one port: a connection whose first line is an HTTP
request line (``GET /health HTTP/1.1``) gets a single JSON response and a
close; anything else is treated as a stream of newline-delimited JSON frames
(the native protocol, see :mod:`repro.service.protocol`).  The HTTP adapter
is deliberately thin — no streaming, ``POST /run`` returns a job id to poll
via ``GET /result/<job_id>`` — so ``curl`` works against a live server
without any client library.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from typing import Any, Dict, Optional
from urllib.parse import urlsplit

from repro.service.config import ServiceConfig
from repro.service.coalescer import (
    BatchCoalescer,
    EvaluationError,
    OverloadedError,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    validate_request,
)
from repro.service.supervisor import RunSupervisor

logger = logging.getLogger("repro.service")

#: Methods that mark a connection's first line as HTTP rather than NDJSON.
_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ")


class OptimizationService:
    """One long-lived server process: sockets, coalescer, run supervisor."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.coalescer = BatchCoalescer(
            evaluator_config=self.config.evaluator_config(),
            linger_s=self.config.linger_ms / 1000.0,
            max_batch=self.config.max_batch,
            max_pending=self.config.max_pending,
            retry_policy=self.config.retry_policy(),
            chaos=self.config.chaos_config(),
        )
        self.supervisor = RunSupervisor(
            store_backend=self.config.store_backend,
            store_dir=self.config.store_dir,
            default_checkpoint_every=self.config.checkpoint_every,
            evaluator_config=self.config.evaluator_config(),
        )
        self.started_at: Optional[float] = None
        self.connections = 0
        self.frames_served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    # --- lifecycle ----------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and re-adopt every journaled in-flight run."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_FRAME_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        adopted = self.supervisor.adopt_pending()
        logger.info(
            "service started on %s:%d (%d run(s) re-adopted)",
            self.config.host,
            self.port,
            len(adopted),
        )

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful stop: close the socket and release evaluators.

        Running jobs are *not* awaited — like a kill, the journal keeps them
        pending and the next server adopts them from their checkpoints.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.coalescer.close()

    # --- shared handlers ----------------------------------------------------------
    async def _handle_evaluate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        results = await self.coalescer.submit(
            request["circuit"], request["technology"], request["sizings"]
        )
        return {"type": "result", "results": results}

    def _handle_health(self) -> Dict[str, Any]:
        jobs = self.supervisor.stats()
        return {
            "type": "health",
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "connections": self.connections,
            "frames_served": self.frames_served,
            "jobs": jobs,
        }

    def _handle_stats(self) -> Dict[str, Any]:
        payload = self.coalescer.snapshot()
        payload["type"] = "stats"
        payload["jobs"] = self.supervisor.stats()
        payload["config"] = self.config.describe()
        return payload

    # --- NDJSON protocol ----------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(_HTTP_METHODS):
                await self._handle_http(first, reader, writer)
                return
            line = first
            while line:
                await self._serve_frame(line, reader, writer)
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            except asyncio.CancelledError:
                # Shutdown cancels open handlers; ending the coroutine
                # normally here keeps StreamReaderProtocol's done-callback
                # (which calls task.exception()) from tripping on a
                # cancelled task.  Nothing runs after this point.
                pass

    async def _send(self, writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()
        self.frames_served += 1

    async def _serve_frame(
        self, line: bytes, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_id = None
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            request = validate_request(frame)
            kind = request["type"]
            if kind == "evaluate":
                response = await self._handle_evaluate(request)
            elif kind == "run":
                await self._serve_run(request, writer)
                return
            elif kind == "result":
                payload = await self.supervisor.result(
                    request["job_id"], wait=request["wait"]
                )
                response = {"type": "result"}
                response.update(payload)
            elif kind == "jobs":
                response = {"type": "jobs", "jobs": self.supervisor.describe_jobs()}
            elif kind == "health":
                response = self._handle_health()
            else:  # stats
                response = self._handle_stats()
        except (ProtocolError, EvaluationError, KeyError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            response = error_frame(
                message,
                request_id,
                kind=getattr(error, "kind", None),
                retryable=getattr(error, "retryable", None),
                attempts=getattr(error, "attempts", None),
            )
        if request_id is not None:
            response["id"] = request_id
        await self._send(writer, response)

    async def _serve_run(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        """Submit a run job; optionally stream its progress on this connection."""
        spec = self.supervisor.build_spec(
            request["method"],
            request["circuit"],
            request["technology"],
            request["steps"],
            request["seed"],
            checkpoint_every=request.get("checkpoint_every"),
        )
        self.supervisor.submit(spec)
        accepted = {"type": "accepted", "job_id": spec.job_id}
        if request.get("id") is not None:
            accepted["id"] = request["id"]
        await self._send(writer, accepted)
        if not request["stream"]:
            return
        queue = self.supervisor.subscribe(spec.job_id)
        try:
            while True:
                frame = await queue.get()
                await self._send(writer, frame)
                if frame["type"] in ("result", "error"):
                    return
        finally:
            # A disconnected subscriber never stops the job itself.
            self.supervisor.unsubscribe(spec.job_id, queue)

    # --- HTTP adapter -------------------------------------------------------------
    async def _handle_http(
        self, first: bytes, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, target, _ = first.decode("latin-1").split(None, 2)
        except ValueError:
            await self._http_respond(writer, 400, {"error": "malformed request line"})
            return
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > MAX_FRAME_BYTES:
            await self._http_respond(writer, 413, {"error": "body too large"})
            return
        body = await reader.readexactly(content_length) if content_length else b""
        path = urlsplit(target).path
        try:
            status, payload = await self._http_route(method, path, body)
        except OverloadedError as error:
            status, payload = 503, {
                "error": str(error),
                "kind": "overloaded",
                "retryable": True,
            }
        except (ProtocolError, EvaluationError, KeyError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            status, payload = 400, {"error": message}
            kind = getattr(error, "kind", None)
            if kind is not None:
                payload["kind"] = kind
                payload["retryable"] = bool(getattr(error, "retryable", False))
        except json.JSONDecodeError as error:
            status, payload = 400, {"error": f"body is not valid JSON: {error}"}
        await self._http_respond(writer, status, payload)

    async def _http_route(self, method: str, path: str, body: bytes):
        """Map one HTTP request onto the native frame handlers."""
        if method == "GET" and path == "/health":
            return 200, self._handle_health()
        if method == "GET" and path == "/stats":
            return 200, self._handle_stats()
        if method == "GET" and path.startswith("/result/"):
            job_id = path[len("/result/"):]
            payload = await self.supervisor.result(job_id, wait=True)
            return 200, payload
        if method == "GET" and path == "/jobs":
            return 200, {"jobs": self.supervisor.describe_jobs()}
        if method == "POST" and path == "/evaluate":
            request = validate_request(
                dict(json.loads(body.decode("utf-8")), type="evaluate")
            )
            return 200, await self._handle_evaluate(request)
        if method == "POST" and path == "/run":
            request = validate_request(
                dict(json.loads(body.decode("utf-8")), type="run", stream=False)
            )
            spec = self.supervisor.build_spec(
                request["method"],
                request["circuit"],
                request["technology"],
                request["steps"],
                request["seed"],
                checkpoint_every=request.get("checkpoint_every"),
            )
            self.supervisor.submit(spec)
            return 202, {"job_id": spec.job_id}
        return 404, {"error": f"no route for {method} {path}"}

    async def _http_respond(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
    ) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 413: "Payload Too Large",
                   503: "Service Unavailable"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        self.frames_served += 1


def run_service(config: Optional[ServiceConfig] = None) -> None:
    """Blocking entry point: serve until interrupted (the CLI's ``serve``)."""

    async def _main() -> None:
        service = OptimizationService(config)
        await service.start()
        # The startup banner is machine-readable on purpose: smoke tests and
        # wrapper scripts parse the host:port out of the first line.
        print(
            f"repro.service listening on {service.config.host}:{service.port} "
            f"({service.config.describe()})",
            flush=True,
        )
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class ServerThread:
    """A service running on a background thread (tests, demos, notebooks).

    Usage::

        with ServerThread(ServiceConfig(port=0)) as server:
            client = ServiceClient(port=server.port)
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig(port=0)
        # The attributes below are written only by the server thread before
        # it sets ``_ready``; readers block on ``_ready.wait()`` first, so
        # the Event's memory ordering is the synchronization.
        self.service: Optional[OptimizationService] = None  # guarded-by: self._ready handshake
        self.port: Optional[int] = None  # guarded-by: self._ready handshake
        self._loop: Optional[asyncio.AbstractEventLoop] = None  # guarded-by: self._ready handshake
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None  # guarded-by: self._ready handshake

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            # Harness startup failure, not an evaluation failure.
            raise RuntimeError(  # repro-lint: ignore[failure-taxonomy]
                "service thread failed to start within 30s"
            )
        if self._startup_error is not None:
            raise RuntimeError(  # repro-lint: ignore[failure-taxonomy]
                "service failed to start"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self.service = OptimizationService(self.config)
        try:
            self._loop.run_until_complete(self.service.start())
            self.port = self.service.port
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.service.stop())
            # Drain leftover tasks (open connection handlers, run jobs) so
            # closing the loop never destroys a pending task.
            leftovers = asyncio.all_tasks(self._loop)
            for task in leftovers:
                task.cancel()
            if leftovers:
                self._loop.run_until_complete(
                    asyncio.gather(*leftovers, return_exceptions=True)
                )
            self._loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
