"""Supervised optimization runs: actor tasks, progress streams, re-adoption.

Each ``run`` request becomes a :class:`Job` — a supervised asyncio task that
executes the full :func:`~repro.experiments.runner.run_method` machinery
(store-level dedup, checkpoint/resume, record write) in a worker thread and
streams the driver's per-step callbacks back to any number of subscribers.
Jobs outlive their submitting connection: a client may disconnect and fetch
the result later by job id, or never — the record lands in the store either
way.

Lossless restart is journal + checkpoint:

* the **journal** (``service_jobs.jsonl`` in the store directory) records
  every submitted job's full spec and its terminal state, append-only with
  the same torn-tail tolerance as the JSONL run store;
* the **checkpoints** are the ordinary driver checkpoints
  (strategy + environment + RNG state) filed in the run store every
  ``checkpoint_every`` steps.

On startup the supervisor replays the journal, and every job without a
terminal event is re-submitted; ``run_method`` finds the run's checkpoint
under its canonical key and resumes it bit-identically — so a ``kill -9`` of
the server loses nothing but the seconds since the last checkpoint, and the
resumed results are exactly what an uninterrupted server would have produced
(the PR 5 driver guarantee, now end-to-end across processes).
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.eval import EvaluatorConfig
from repro.experiments.config import ExperimentSettings
from repro.experiments.driver import DriverStep
from repro.experiments.runner import RL_METHODS, run_method
from repro.optim.registry import list_optimizers, unknown_method_message
from repro.store import MemoryStore, RunStore, open_run_store

logger = logging.getLogger("repro.service")

#: Journal file name inside the store directory.
JOURNAL_NAME = "service_jobs.jsonl"

#: Journal events that end a job's lifecycle.
TERMINAL_EVENTS = ("done", "failed")


@dataclass
class JobSpec:
    """Everything needed to (re-)execute one optimization run.

    Carries the run coordinates *and* the evaluator stack and RL warm-up the
    submitting server resolved, so a restarted server reconstructs the exact
    same canonical :class:`~repro.store.RunKey` — and therefore finds the
    run's checkpoint — even if its own defaults changed in between.
    """

    job_id: str
    method: str
    circuit: str
    technology: str
    steps: int
    seed: int
    checkpoint_every: int
    eval_backend: str = "local"
    eval_workers: int = 0
    eval_cache_size: int = 0
    warmup: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "job_id": self.job_id,
            "method": self.method,
            "circuit": self.circuit,
            "technology": self.technology,
            "steps": int(self.steps),
            "seed": int(self.seed),
            "checkpoint_every": int(self.checkpoint_every),
            "eval_backend": self.eval_backend,
            "eval_workers": int(self.eval_workers),
            "eval_cache_size": int(self.eval_cache_size),
        }
        if self.warmup is not None:
            data["warmup"] = int(self.warmup)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        return cls(
            job_id=data["job_id"],
            method=data["method"],
            circuit=data["circuit"],
            technology=data["technology"],
            steps=int(data["steps"]),
            seed=int(data["seed"]),
            checkpoint_every=int(data["checkpoint_every"]),
            eval_backend=data.get("eval_backend", "local"),
            eval_workers=int(data.get("eval_workers", 0)),
            eval_cache_size=int(data.get("eval_cache_size", 0)),
            warmup=data.get("warmup"),
        )


@dataclass
class Job:
    """Runtime state of one supervised run."""

    spec: JobSpec
    status: str = "running"  # running | done | failed
    adopted: bool = False
    record: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    last_step: int = 0
    evaluated: int = 0
    best_reward: Optional[float] = None
    subscribers: List[asyncio.Queue] = field(default_factory=list)
    finished: Optional[asyncio.Event] = None

    def describe(self) -> Dict[str, Any]:
        """Summary row for the ``jobs`` endpoint."""
        summary = {
            "job_id": self.spec.job_id,
            "method": self.spec.method,
            "circuit": self.spec.circuit,
            "technology": self.spec.technology,
            "steps": self.spec.steps,
            "seed": self.spec.seed,
            "status": self.status,
            "adopted": self.adopted,
            "step": self.last_step,
            "evaluated": self.evaluated,
        }
        if self.best_reward is not None:
            summary["best_reward"] = self.best_reward
        if self.error is not None:
            summary["error"] = self.error
        return summary


class RunSupervisor:
    """Owns every run job: execution, progress fan-out, journal, adoption.

    Args:
        store_backend: Run-store backend job results/checkpoints persist to.
        store_dir: Store directory (enables the journal; without it jobs are
            in-memory only and restarts lose them).
        default_checkpoint_every: Checkpoint cadence for jobs that don't
            choose their own.
        evaluator_config: Evaluator stack runs are executed with.
    """

    def __init__(
        self,
        store_backend: str = "memory",
        store_dir: str = "",
        default_checkpoint_every: int = 1,
        evaluator_config: Optional[EvaluatorConfig] = None,
    ):
        self.store_backend = store_backend
        self.store_dir = store_dir
        self.default_checkpoint_every = int(default_checkpoint_every)
        self.evaluator_config = evaluator_config or EvaluatorConfig()
        self.jobs: Dict[str, Job] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        # The memory backend has no directory to reopen per thread, so every
        # job shares this one instance (dict ops are GIL-atomic enough).
        self._memory_store = MemoryStore() if store_backend == "memory" else None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # --- journal ------------------------------------------------------------------
    @property
    def journal_path(self) -> Optional[str]:
        if not self.store_dir:
            return None
        return os.path.join(self.store_dir, JOURNAL_NAME)

    def _journal_append(self, event: str, payload: Dict[str, Any]) -> None:
        path = self.journal_path
        if path is None:
            return
        os.makedirs(self.store_dir, exist_ok=True)
        row = {"event": event}
        row.update(payload)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def pending_from_journal(self) -> List[JobSpec]:
        """Specs of every journaled job without a terminal event."""
        path = self.journal_path
        if path is None or not os.path.exists(path):
            return []
        alive: Dict[str, JobSpec] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    # A kill mid-append leaves one torn final line; tolerate
                    # it exactly like the JSONL run store does.
                    continue
                event = row.get("event")
                if event == "submitted":
                    try:
                        spec = JobSpec.from_dict(row["job"])
                    except (KeyError, TypeError, ValueError):
                        continue
                    alive[spec.job_id] = spec
                elif event in TERMINAL_EVENTS:
                    alive.pop(row.get("job_id"), None)
        return list(alive.values())

    # --- submission ---------------------------------------------------------------
    def build_spec(
        self,
        method: str,
        circuit: str,
        technology: str,
        steps: int,
        seed: int,
        checkpoint_every: Optional[int] = None,
        settings: Optional[ExperimentSettings] = None,
    ) -> JobSpec:
        """Resolve a run request into a fully-specified, journalable spec."""
        if method not in list_optimizers():
            raise ValueError(unknown_method_message(method))
        settings = settings or ExperimentSettings()
        warmup = settings.rl_warmup(steps) if method in RL_METHODS else None
        return JobSpec(
            job_id=uuid.uuid4().hex[:12],
            method=method,
            circuit=circuit,
            technology=technology,
            steps=int(steps),
            seed=int(seed),
            checkpoint_every=(
                self.default_checkpoint_every
                if checkpoint_every is None
                else int(checkpoint_every)
            ),
            eval_backend=self.evaluator_config.backend,
            eval_workers=self.evaluator_config.max_workers or 0,
            eval_cache_size=self.evaluator_config.cache_size,
            warmup=warmup,
        )

    def submit(self, spec: JobSpec, adopted: bool = False) -> Job:
        """Start (or re-adopt) a job; returns its runtime handle."""
        self._loop = asyncio.get_running_loop()
        job = Job(spec=spec, adopted=adopted, finished=asyncio.Event())
        self.jobs[spec.job_id] = job
        if not adopted:
            self._journal_append("submitted", {"job": spec.to_dict()})
        self._tasks[spec.job_id] = asyncio.create_task(self._run_job(job))
        return job

    def adopt_pending(self) -> List[Job]:
        """Re-submit every journaled job that never reached a terminal state.

        Each adopted run resumes from its store checkpoint (when one was
        written) — the driver replays nothing and continues bit-identically.
        """
        adopted = []
        for spec in self.pending_from_journal():
            logger.info(
                "re-adopting run %s (%s %s/%s steps=%d seed=%d)",
                spec.job_id,
                spec.method,
                spec.circuit,
                spec.technology,
                spec.steps,
                spec.seed,
            )
            adopted.append(self.submit(spec, adopted=True))
        return adopted

    # --- execution ----------------------------------------------------------------
    def _settings_for(self, spec: JobSpec) -> ExperimentSettings:
        """Reconstruct settings that reproduce the spec's recorded warm-up.

        ``run_key_for`` derives the RL warm-up from
        ``settings.rl_warmup(steps) = max(5, min(int(steps * fraction),
        steps - 1))``.  A journaled warm-up came from that same formula, so
        it lies in ``[5, steps - 1]`` and ``fraction = (warmup + 0.5) /
        steps`` floors back to exactly ``warmup`` — the adopted run's key
        (and checkpoint) match the original regardless of the restarted
        server's own ``REPRO_WARMUP_FRACTION``.
        """
        settings = ExperimentSettings()
        if spec.warmup is not None and spec.steps > 0:
            settings.warmup_fraction = (spec.warmup + 0.5) / spec.steps
            if settings.rl_warmup(spec.steps) != spec.warmup:
                logger.warning(
                    "job %s: could not reconstruct warmup %d for steps %d",
                    spec.job_id,
                    spec.warmup,
                    spec.steps,
                )
        return settings

    def _open_store(self) -> RunStore:
        if self._memory_store is not None:
            return self._memory_store
        return open_run_store(self.store_backend, self.store_dir)

    def _execute(self, job: Job):
        """Worker-thread body: the full run, with its own store handle.

        SQLite handles are bound to their creating thread, so each job opens
        a fresh connection here; WAL journal mode makes the concurrent
        writers (and any external CLI readers) safe.
        """
        spec = job.spec
        loop = self._loop

        def progress(step: DriverStep) -> None:
            # Marshal driver telemetry onto the event loop; the explicit
            # None return matters — a truthy return would early-stop the run.
            payload = {
                "type": "progress",
                "job_id": spec.job_id,
                "step": step.step,
                "evaluated": step.evaluated,
                "budget": step.budget,
                "best_reward": step.best_reward,
                "wall_time_s": round(step.wall_time_s, 6),
            }
            loop.call_soon_threadsafe(self._publish, job, payload)

        config = EvaluatorConfig(
            backend=spec.eval_backend,
            max_workers=spec.eval_workers or None,
            cache_size=spec.eval_cache_size,
        )
        store = self._open_store()
        try:
            return run_method(
                spec.method,
                spec.circuit,
                technology=spec.technology,
                steps=spec.steps,
                seed=spec.seed,
                settings=self._settings_for(spec),
                evaluator_config=config,
                store=store,
                checkpoint_every=spec.checkpoint_every,
                callbacks=[progress],
            )
        finally:
            if store is not self._memory_store:
                store.close()

    async def _run_job(self, job: Job) -> None:
        spec = job.spec
        try:
            record = await asyncio.to_thread(self._execute, job)
        except Exception as error:
            logger.exception("run %s failed", spec.job_id)
            job.status = "failed"
            job.error = f"{type(error).__name__}: {error}"
            self._journal_append("failed", {"job_id": spec.job_id, "error": job.error})
            self._publish(
                job,
                {"type": "error", "job_id": spec.job_id, "error": job.error},
            )
        else:
            job.status = "done"
            job.record = record.to_dict()
            job.best_reward = job.record["best_reward"]
            self._journal_append("done", {"job_id": spec.job_id})
            self._publish(
                job,
                {"type": "result", "job_id": spec.job_id, "record": job.record},
            )
        finally:
            job.finished.set()
            self._tasks.pop(spec.job_id, None)

    def _publish(self, job: Job, payload: Dict[str, Any]) -> None:
        if payload.get("type") == "progress":
            job.last_step = payload["step"]
            job.evaluated = payload["evaluated"]
            job.best_reward = payload["best_reward"]
        for queue in list(job.subscribers):
            queue.put_nowait(payload)

    # --- observation --------------------------------------------------------------
    def subscribe(self, job_id: str) -> asyncio.Queue:
        """Queue of a job's future frames (terminal frame included).

        A finished job's queue is pre-loaded with its terminal frame, so
        late subscribers always receive exactly one ending frame.
        """
        job = self._require(job_id)
        queue: asyncio.Queue = asyncio.Queue()
        if job.status == "done":
            queue.put_nowait(
                {"type": "result", "job_id": job_id, "record": job.record}
            )
        elif job.status == "failed":
            queue.put_nowait({"type": "error", "job_id": job_id, "error": job.error})
        else:
            job.subscribers.append(queue)
        return queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        job = self.jobs.get(job_id)
        if job is not None and queue in job.subscribers:
            job.subscribers.remove(queue)

    def _require(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            # Bad client-supplied id, rejected before any evaluation runs;
            # the RPC layer encodes it as a request error.
            raise KeyError(  # repro-lint: ignore[failure-taxonomy]
                f"unknown job {job_id!r}"
            )
        return job

    async def result(self, job_id: str, wait: bool = True) -> Dict[str, Any]:
        """A job's terminal payload (waits for completion by default)."""
        job = self._require(job_id)
        if wait:
            await job.finished.wait()
        if job.status == "failed":
            return {"job_id": job_id, "status": "failed", "error": job.error}
        return {"job_id": job_id, "status": job.status, "record": job.record}

    def describe_jobs(self) -> List[Dict[str, Any]]:
        """Summary of every known job, newest-submitted last."""
        return [job.describe() for job in self.jobs.values()]

    def stats(self) -> Dict[str, Any]:
        counts = {"running": 0, "done": 0, "failed": 0}
        for job in self.jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        counts["total"] = len(self.jobs)
        counts["adopted"] = sum(1 for job in self.jobs.values() if job.adopted)
        return counts

    async def drain(self) -> None:
        """Wait until every running job reaches a terminal state."""
        for task in list(self._tasks.values()):
            await asyncio.shield(task)
