"""Wire protocol of the optimization service: newline-delimited JSON frames.

One frame is one JSON object on one line, UTF-8 encoded and terminated by
``\\n`` — trivially streamable over an :mod:`asyncio` connection, greppable
in captures, and language-agnostic.  Every frame carries a ``type`` field;
requests may carry a client-chosen ``id`` that the matching response echoes,
so one connection can interleave requests.

Request types (client -> server):

* ``evaluate`` — a batch of physical sizings for one circuit×technology;
  the server coalesces concurrent evaluate traffic into shared simulator
  batches and replies with one ``result`` frame.
* ``run`` — a full optimization (method/circuit/technology/steps/seed)
  executed as a supervised job; with ``stream`` set the server pushes
  ``progress`` frames per driver step before the final ``result``.
* ``result`` — fetch (optionally wait for) a submitted job's final record.
* ``jobs`` / ``health`` / ``stats`` — observability endpoints.

Response types (server -> client): ``accepted``, ``progress``, ``result``,
``jobs``, ``health``, ``stats`` and ``error``.  The codec is intentionally
symmetric — :func:`encode_frame` / :func:`decode_frame` round-trip any frame
bit-identically (floats serialize via ``repr``-shortest JSON, so metric
values survive the wire exactly).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

#: Hard cap on one encoded frame (defense against runaway/garbage input).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Frame types a client may send.
REQUEST_TYPES = ("evaluate", "run", "result", "jobs", "health", "stats")

#: Frame types a server may send.
RESPONSE_TYPES = ("accepted", "progress", "result", "jobs", "health", "stats", "error")


class ProtocolError(ValueError):
    """A frame violated the wire protocol (malformed, oversized, unknown)."""


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """Serialize one frame to its newline-terminated wire form."""
    if "type" not in frame:
        raise ProtocolError("frame is missing the required 'type' field")
    data = json.dumps(dict(frame), sort_keys=True, separators=(",", ":"))
    encoded = data.encode("utf-8") + b"\n"
    if len(encoded) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(encoded)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return encoded


def decode_frame(line) -> Dict[str, Any]:
    """Parse one wire line back into a frame dict (inverse of encode)."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES} limit"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"frame is not valid UTF-8: {error}") from error
    text = line.strip()
    if not text:
        raise ProtocolError("frame is empty")
    try:
        frame = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(frame).__name__}")
    if "type" not in frame:
        raise ProtocolError("frame is missing the required 'type' field")
    return frame


def _require_str(frame: Mapping, field: str) -> str:
    value = frame.get(field)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{frame['type']!r} frame needs a non-empty string {field!r}")
    return value


def _optional_int(frame: Mapping, field: str, default: int, minimum: int = 0) -> int:
    value = frame.get(field, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ProtocolError(f"{field!r} must be an integer >= {minimum}, got {value!r}")
    return value


def validate_request(frame: Mapping[str, Any]) -> Dict[str, Any]:
    """Check a decoded client frame and return its normalized form.

    Validation stays structural (types, required fields, value ranges) —
    semantic checks (does the circuit exist, is the method registered) live
    server-side where the registries are, so the codec has no heavy imports.
    """
    kind = frame.get("type")
    if kind not in REQUEST_TYPES:
        raise ProtocolError(
            f"unknown request type {kind!r}; expected one of {REQUEST_TYPES}"
        )
    normalized: Dict[str, Any] = {"type": kind}
    if "id" in frame:
        normalized["id"] = frame["id"]

    if kind == "evaluate":
        normalized["circuit"] = _require_str(frame, "circuit")
        normalized["technology"] = frame.get("technology", "180nm")
        if not isinstance(normalized["technology"], str):
            raise ProtocolError("'technology' must be a string")
        sizings = frame.get("sizings")
        if not isinstance(sizings, list) or not sizings:
            raise ProtocolError("'evaluate' frame needs a non-empty 'sizings' list")
        for sizing in sizings:
            if not isinstance(sizing, dict):
                raise ProtocolError("each sizing must be a component->params object")
            for component, params in sizing.items():
                if not isinstance(params, dict):
                    raise ProtocolError(
                        f"sizing entry {component!r} must map parameter -> value"
                    )
        normalized["sizings"] = sizings
    elif kind == "run":
        normalized["method"] = _require_str(frame, "method")
        normalized["circuit"] = _require_str(frame, "circuit")
        normalized["technology"] = frame.get("technology", "180nm")
        if not isinstance(normalized["technology"], str):
            raise ProtocolError("'technology' must be a string")
        normalized["steps"] = _optional_int(frame, "steps", 80, minimum=1)
        normalized["seed"] = _optional_int(frame, "seed", 0)
        checkpoint = frame.get("checkpoint_every")
        if checkpoint is not None:
            normalized["checkpoint_every"] = _optional_int(
                frame, "checkpoint_every", 0
            )
        normalized["stream"] = bool(frame.get("stream", True))
    elif kind == "result":
        normalized["job_id"] = _require_str(frame, "job_id")
        normalized["wait"] = bool(frame.get("wait", True))
    # jobs / health / stats carry no operands.
    return normalized


# --- response frame builders ----------------------------------------------------
def error_frame(
    message: str,
    request_id=None,
    kind: Optional[str] = None,
    retryable: Optional[bool] = None,
    attempts: Optional[int] = None,
) -> Dict[str, Any]:
    """An ``error`` response carrying a message and optional failure taxonomy.

    ``kind`` is one of :data:`repro.resilience.FAILURE_KINDS` (or
    ``overloaded`` for admission-control rejections); ``retryable`` tells
    the client whether resubmitting the same request may succeed;
    ``attempts`` is how many server-side evaluation attempts were spent.
    """
    frame: Dict[str, Any] = {"type": "error", "error": str(message)}
    if kind is not None:
        frame["kind"] = str(kind)
    if retryable is not None:
        frame["retryable"] = bool(retryable)
    if attempts:
        frame["attempts"] = int(attempts)
    if request_id is not None:
        frame["id"] = request_id
    return frame


def result_frame(payload: Mapping[str, Any], request_id=None) -> Dict[str, Any]:
    """A ``result`` response wrapping an arbitrary payload mapping."""
    frame: Dict[str, Any] = {"type": "result"}
    frame.update(payload)
    if request_id is not None:
        frame["id"] = request_id
    return frame


def evaluate_request(
    circuit: str,
    technology: str,
    sizings: List[Mapping[str, Mapping[str, float]]],
    request_id=None,
) -> Dict[str, Any]:
    """Build an ``evaluate`` request frame."""
    frame: Dict[str, Any] = {
        "type": "evaluate",
        "circuit": circuit,
        "technology": technology,
        "sizings": [dict(s) for s in sizings],
    }
    if request_id is not None:
        frame["id"] = request_id
    return frame


def run_request(
    method: str,
    circuit: str,
    technology: str = "180nm",
    steps: int = 80,
    seed: int = 0,
    checkpoint_every: Optional[int] = None,
    stream: bool = True,
    request_id=None,
) -> Dict[str, Any]:
    """Build a ``run`` request frame."""
    frame: Dict[str, Any] = {
        "type": "run",
        "method": method,
        "circuit": circuit,
        "technology": technology,
        "steps": int(steps),
        "seed": int(seed),
        "stream": bool(stream),
    }
    if checkpoint_every is not None:
        frame["checkpoint_every"] = int(checkpoint_every)
    if request_id is not None:
        frame["id"] = request_id
    return frame
