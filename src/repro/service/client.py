"""Synchronous client for the optimization service (stdlib sockets only).

One :class:`ServiceClient` holds one NDJSON connection.  Calls are blocking
and return plain Python data (metric dicts, run records), so driving a
remote server feels like calling :func:`~repro.experiments.runner.run_method`
in-process — which is exactly the point of optimization-as-a-service: N
processes/machines share one simulator funnel, one design cache and one run
store instead of each importing the library.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Callable, Dict, List, Optional

from repro.circuits.parameters import Sizing
from repro.service.config import DEFAULT_PORT
from repro.service.protocol import (
    decode_frame,
    encode_frame,
    evaluate_request,
    run_request,
)


class ServiceError(RuntimeError):
    """The server answered with an ``error`` frame (or closed unexpectedly).

    Attributes:
        kind: Failure-taxonomy kind from the error frame (``None`` when the
            server sent none — protocol errors, old servers).
        retryable: Whether the server marked the failure retryable
            (``overloaded``, transient simulator faults).
        attempts: Server-side evaluation attempts spent before giving up.
    """

    def __init__(
        self,
        message: str,
        kind: Optional[str] = None,
        retryable: bool = False,
        attempts: int = 0,
    ):
        super().__init__(message)
        self.kind = kind
        self.retryable = bool(retryable)
        self.attempts = int(attempts)


class ServiceClient:
    """Blocking NDJSON client for one :class:`~repro.service.OptimizationService`.

    Args:
        host: Server address.
        port: Server port.
        timeout: Per-response socket timeout in seconds (``None`` waits
            forever — long optimization runs stream for minutes).
        retry: Connection-establishment attempts (exponential backoff with
            jitter between them), so clients tolerate server restarts
            instead of dying on the first ``ConnectionRefusedError``.
            1 = the old fail-fast behaviour.
        retry_base_delay_s: Backoff before the second connection attempt;
            doubles per retry (capped at ``retry_max_delay_s``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 300.0,
        retry: int = 5,
        retry_base_delay_s: float = 0.1,
        retry_max_delay_s: float = 2.0,
    ):
        if retry < 1:
            raise ValueError(f"retry must be >= 1, got {retry}")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retry = int(retry)
        self.retry_base_delay_s = float(retry_base_delay_s)
        self.retry_max_delay_s = float(retry_max_delay_s)
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        self._rng = random.Random()

    # --- plumbing -----------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        for attempt in range(1, self.retry + 1):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                break
            except OSError:
                if attempt >= self.retry:
                    raise
                delay = min(
                    self.retry_max_delay_s,
                    self.retry_base_delay_s * (2 ** (attempt - 1)),
                )
                # Jitter de-synchronizes clients reconnecting to a server
                # that just came back — no thundering herd.
                time.sleep(delay * (1.0 + 0.25 * self._rng.random()))
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        """Close the connection (safe to call repeatedly)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        self._connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, frame: Dict[str, Any]) -> None:
        self._connect()
        self._file.write(encode_frame(frame))
        self._file.flush()

    def _recv(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            self.close()
            raise ServiceError("server closed the connection")
        frame = decode_frame(line)
        if frame.get("type") == "error":
            raise ServiceError(
                frame.get("error", "unknown server error"),
                kind=frame.get("kind"),
                retryable=frame.get("retryable", False),
                attempts=frame.get("attempts", 0),
            )
        return frame

    def _request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self._next_id += 1
        frame["id"] = self._next_id
        self._send(frame)
        return self._recv()

    # --- evaluate -----------------------------------------------------------------
    def evaluate(
        self, circuit: str, sizings: List[Sizing], technology: str = "180nm"
    ) -> List[Dict[str, Any]]:
        """Evaluate a batch of physical sizings through the server's coalescer.

        Returns one ``{"sizing", "metrics", "cached"}`` dict per input, in
        input order — the metric values are exactly what a direct local
        evaluation would produce (the wire codec round-trips floats).
        """
        response = self._request(evaluate_request(circuit, technology, sizings))
        return response["results"]

    # --- runs ---------------------------------------------------------------------
    def run(
        self,
        method: str,
        circuit: str,
        technology: str = "180nm",
        steps: int = 80,
        seed: int = 0,
        checkpoint_every: Optional[int] = None,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Run a full optimization, streaming progress, and return its record."""
        self._next_id += 1
        self._send(
            run_request(
                method,
                circuit,
                technology=technology,
                steps=steps,
                seed=seed,
                checkpoint_every=checkpoint_every,
                stream=True,
                request_id=self._next_id,
            )
        )
        accepted = self._recv()
        if accepted.get("type") != "accepted":
            raise ServiceError(f"expected an 'accepted' frame, got {accepted}")
        while True:
            frame = self._recv()
            if frame["type"] == "progress":
                if on_progress is not None:
                    on_progress(frame)
            elif frame["type"] == "result":
                return frame["record"]
            else:
                raise ServiceError(f"unexpected frame {frame.get('type')!r}")

    def submit_run(
        self,
        method: str,
        circuit: str,
        technology: str = "180nm",
        steps: int = 80,
        seed: int = 0,
        checkpoint_every: Optional[int] = None,
    ) -> str:
        """Fire-and-forget run submission; returns the job id to poll later."""
        response = self._request(
            run_request(
                method,
                circuit,
                technology=technology,
                steps=steps,
                seed=seed,
                checkpoint_every=checkpoint_every,
                stream=False,
            )
        )
        if response.get("type") != "accepted":
            raise ServiceError(f"expected an 'accepted' frame, got {response}")
        return response["job_id"]

    def result(self, job_id: str, wait: bool = True) -> Dict[str, Any]:
        """A submitted job's terminal payload (``{"status", "record"/"error"}``)."""
        return self._request({"type": "result", "job_id": job_id, "wait": wait})

    # --- observability ------------------------------------------------------------
    def jobs(self) -> List[Dict[str, Any]]:
        """Summary of every job the server knows about."""
        return self._request({"type": "jobs"})["jobs"]

    def health(self) -> Dict[str, Any]:
        """The server's health snapshot (uptime, job counts)."""
        return self._request({"type": "health"})

    def stats(self) -> Dict[str, Any]:
        """Coalescer/evaluator/job statistics (the coalescing factor lives here)."""
        return self._request({"type": "stats"})
