"""Optimization-as-a-service: the long-lived process in front of the library.

The :mod:`repro.service` package turns the Evaluator protocol and the
checkpointable ask/tell driver into a server any number of clients share:

* :class:`OptimizationService` / :func:`run_service` — the asyncio server
  (newline-delimited JSON frames plus a thin HTTP adapter on one port).
* :class:`BatchCoalescer` — merges concurrent evaluate requests for the
  same circuit×technology bucket into shared simulator batches, deduped
  against in-flight work and already-stored results.
* :class:`RunSupervisor` — executes run requests as supervised jobs that
  stream per-step progress, checkpoint to the run store, and are re-adopted
  from their checkpoints when a killed server restarts (lossless restart).
* :class:`ServiceClient` — the blocking stdlib-socket client.
* :class:`ServiceConfig` — declarative server configuration
  (``REPRO_SERVE_*`` environment overrides).
* :class:`ServerThread` — an in-process server for tests and demos.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.coalescer import (
    BatchCoalescer,
    CoalescerStats,
    EvaluationError,
    OverloadedError,
)
from repro.service.config import DEFAULT_PORT, ServiceConfig
from repro.service.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    evaluate_request,
    run_request,
    validate_request,
)
from repro.service.server import OptimizationService, ServerThread, run_service
from repro.service.supervisor import Job, JobSpec, RunSupervisor

__all__ = [
    "OptimizationService",
    "run_service",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceConfig",
    "DEFAULT_PORT",
    "BatchCoalescer",
    "CoalescerStats",
    "EvaluationError",
    "OverloadedError",
    "RunSupervisor",
    "Job",
    "JobSpec",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "validate_request",
    "evaluate_request",
    "run_request",
]
