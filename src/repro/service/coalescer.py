"""Cross-client batch coalescing: many evaluate requests, few simulator calls.

The server's evaluate path is a micro-batching funnel.  Submissions are
bucketed by (circuit, technology) — the same keying a
:class:`~repro.spice.batch.BatchTemplate` would use — and each bucket runs a
tiny linger window: the first pending design arms a flush task that sleeps
``linger_ms`` and then evaluates *everything* that queued up in the meantime
as one :meth:`~repro.eval.Evaluator.evaluate_batch` call.  Concurrent
clients therefore share simulator batches (amortizing the stacked-MNA
speedup across connections), and while a batch is in flight the next one
accumulates, so a busy server naturally converges to
"one batch per simulator latency" regardless of client count.

Two dedup layers guarantee no design is ever simulated twice:

* **in-flight dedup** — submissions are keyed by the evaluator's own
  :func:`~repro.eval.sizing_cache_key`; a design already queued or already
  being simulated attaches to the existing future instead of re-entering
  the batch (the coalescer-visible in-flight key hook).
* **stored-result dedup** — each bucket's evaluator is wrapped in a
  :class:`~repro.eval.CachingEvaluator`; :meth:`Evaluator.peek` serves
  already-simulated designs immediately, without even waiting for the
  linger window.

All bookkeeping runs on the event loop (single-threaded); only
``evaluate_batch`` itself is pushed to a worker thread.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.circuits.library import get_circuit
from repro.circuits.parameters import Sizing
from repro.eval import EvaluatorConfig, sizing_cache_key
from repro.eval.base import Evaluator


class EvaluationError(RuntimeError):
    """A coalesced simulator batch failed; carried back to every waiter."""


@dataclass
class CoalescerStats:
    """Counters describing how well cross-client batching is working.

    Attributes:
        requests: Evaluate requests served.
        designs_submitted: Designs across all requests (incl. duplicates).
        designs_flushed: Designs that entered a simulator batch (post-dedup).
        batches_issued: ``evaluate_batch`` calls actually made.
        inflight_hits: Designs that attached to an already-queued/running
            future instead of re-entering a batch.
        peek_hits: Designs served instantly from a bucket's result cache.
    """

    requests: int = 0
    designs_submitted: int = 0
    designs_flushed: int = 0
    batches_issued: int = 0
    inflight_hits: int = 0
    peek_hits: int = 0

    @property
    def coalescing_factor(self) -> float:
        """Mean designs per simulator batch (1.0 = no coalescing benefit)."""
        if self.batches_issued == 0:
            return 0.0
        return self.designs_flushed / self.batches_issued

    def to_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "designs_submitted": self.designs_submitted,
            "designs_flushed": self.designs_flushed,
            "batches_issued": self.batches_issued,
            "inflight_hits": self.inflight_hits,
            "peek_hits": self.peek_hits,
            "coalescing_factor": round(self.coalescing_factor, 4),
        }


class _Bucket:
    """Per-(circuit, technology) coalescing state."""

    def __init__(self, evaluator: Evaluator):
        self.evaluator = evaluator
        #: Deduped designs awaiting the next batch: (key, sizing, future).
        self.pending: List[Tuple[tuple, Sizing, asyncio.Future]] = []
        #: Every queued-or-simulating design, keyed like the result cache.
        self.inflight: Dict[tuple, asyncio.Future] = {}
        self.flusher: Optional[asyncio.Task] = None


class BatchCoalescer:
    """Merges concurrent evaluate submissions into shared simulator batches.

    Args:
        evaluator_config: Stack each bucket's evaluator is built with; a
            positive ``cache_size`` enables stored-result dedup.
        linger_s: Seconds a freshly-armed flush waits for more submissions.
        max_batch: Designs per issued evaluator batch (larger pending sets
            drain over several back-to-back batches).
    """

    def __init__(
        self,
        evaluator_config: Optional[EvaluatorConfig] = None,
        linger_s: float = 0.01,
        max_batch: int = 64,
    ):
        self.evaluator_config = evaluator_config or EvaluatorConfig(cache_size=4096)
        self.linger_s = float(linger_s)
        self.max_batch = int(max_batch)
        self.stats = CoalescerStats()
        self._buckets: Dict[Tuple[str, str], _Bucket] = {}
        self._closed = False

    # --- bucket management --------------------------------------------------------
    def _bucket_for(self, circuit_name: str, technology: str) -> _Bucket:
        key = (circuit_name.lower(), technology)
        bucket = self._buckets.get(key)
        if bucket is None:
            circuit = get_circuit(circuit_name, technology)
            bucket = _Bucket(self.evaluator_config.build(circuit))
            self._buckets[key] = bucket
        return bucket

    def evaluator_stats(self) -> Dict[str, float]:
        """Merged counters of every bucket's evaluator stack."""
        totals: Dict[str, float] = {}
        for bucket in self._buckets.values():
            for name, value in bucket.evaluator.stats.to_dict().items():
                if name == "hit_rate":
                    continue
                totals[name] = totals.get(name, 0) + value
        return totals

    # --- submission ---------------------------------------------------------------
    async def submit(
        self, circuit_name: str, technology: str, sizings: List[Sizing]
    ) -> List[Dict[str, Any]]:
        """Evaluate ``sizings`` through the coalescing funnel.

        Returns one ``{"sizing", "metrics", "cached"}`` dict per input, in
        input order.  ``cached`` is true when the design was served without
        a fresh simulation (result cache, or shared with another waiter).
        """
        if self._closed:
            raise EvaluationError("coalescer is closed")
        loop = asyncio.get_running_loop()
        bucket = self._bucket_for(circuit_name, technology)
        self.stats.requests += 1
        self.stats.designs_submitted += len(sizings)

        waiters: List[Tuple[Sizing, asyncio.Future, bool]] = []
        for sizing in sizings:
            key = sizing_cache_key(sizing)
            future = bucket.inflight.get(key)
            if future is not None:
                self.stats.inflight_hits += 1
                waiters.append((sizing, future, True))
                continue
            cached_metrics = bucket.evaluator.peek(sizing)
            if cached_metrics is not None:
                self.stats.peek_hits += 1
                future = loop.create_future()
                future.set_result({"metrics": cached_metrics, "cached": True})
                waiters.append((sizing, future, True))
                continue
            future = loop.create_future()
            bucket.inflight[key] = future
            bucket.pending.append((key, sizing, future))
            waiters.append((sizing, future, False))

        if bucket.pending and bucket.flusher is None:
            bucket.flusher = asyncio.create_task(self._flush_loop(bucket))

        results = []
        for sizing, future, shared in waiters:
            payload = await future
            results.append(
                {
                    "sizing": sizing,
                    "metrics": dict(payload["metrics"]),
                    "cached": bool(payload["cached"]) or shared,
                }
            )
        return results

    # --- flushing -----------------------------------------------------------------
    async def _flush_loop(self, bucket: _Bucket) -> None:
        """Drain a bucket: linger, then evaluate everything that queued up.

        Runs until the bucket is empty, then disarms.  Submissions arriving
        while a batch is simulating land in ``pending`` and form the next
        batch — the loop body is the only place futures are resolved, and
        it never awaits between draining ``pending`` and resolving them.
        """
        try:
            while bucket.pending:
                if self.linger_s > 0:
                    await asyncio.sleep(self.linger_s)
                batch = bucket.pending[: self.max_batch]
                del bucket.pending[: self.max_batch]
                sizings = [sizing for _, sizing, _ in batch]
                try:
                    eval_results = await asyncio.to_thread(
                        bucket.evaluator.evaluate_batch, sizings
                    )
                except Exception as error:  # simulator failure: fail the batch
                    for key, _, future in batch:
                        bucket.inflight.pop(key, None)
                        if not future.done():
                            future.set_exception(
                                EvaluationError(f"evaluation failed: {error}")
                            )
                    continue
                self.stats.batches_issued += 1
                self.stats.designs_flushed += len(batch)
                for (key, _, future), result in zip(batch, eval_results):
                    bucket.inflight.pop(key, None)
                    if not future.done():
                        future.set_result(
                            {
                                "metrics": dict(result.metrics),
                                "cached": bool(result.cached),
                            }
                        )
        finally:
            bucket.flusher = None

    # --- lifecycle ----------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Stats payload for the ``stats`` endpoint."""
        return {
            "coalescer": self.stats.to_dict(),
            "evaluator": self.evaluator_stats(),
            "buckets": sorted(
                f"{circuit}/{technology}" for circuit, technology in self._buckets
            ),
        }

    def close(self) -> None:
        """Cancel pending work and release every bucket's evaluator."""
        self._closed = True
        for bucket in self._buckets.values():
            if bucket.flusher is not None:
                bucket.flusher.cancel()
            for key, _, future in bucket.pending:
                bucket.inflight.pop(key, None)
                if not future.done():
                    future.set_exception(EvaluationError("server shutting down"))
            bucket.pending.clear()
            bucket.evaluator.close()
