"""Cross-client batch coalescing: many evaluate requests, few simulator calls.

The server's evaluate path is a micro-batching funnel.  Submissions from all
clients — whatever circuit or technology they target — join *one* pending
queue of :class:`~repro.eval.base.EvalRequest` units and share a tiny linger
window: the first pending design arms a flush task that sleeps ``linger_ms``
and then evaluates *everything* that queued up in the meantime as one
:meth:`~repro.eval.Evaluator.evaluate_requests` call.  The evaluator itself
buckets the mixed batch by (circuit, technology) — the
:class:`~repro.spice.batch.BatchTemplate` compatibility key — so with the
vectorized backend, cross-client *and* cross-circuit traffic co-batches
into a few dense stacked solves, and a busy server naturally converges to
"one batch per simulator latency" regardless of client count.

Two dedup layers guarantee no design is ever simulated twice:

* **in-flight dedup** — submissions are keyed by the canonical
  :func:`~repro.eval.request_cache_key`; a design already queued or already
  being simulated attaches to the existing future instead of re-entering
  the batch.
* **stored-result dedup** — the shared evaluator is wrapped in a
  :class:`~repro.eval.CachingEvaluator` keyed by the *same* function;
  :meth:`Evaluator.peek` serves already-simulated designs immediately,
  without even waiting for the linger window.

All bookkeeping runs on the event loop (single-threaded); only
``evaluate_requests`` itself is pushed to a worker thread.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.circuits.library import get_circuit
from repro.circuits.parameters import Sizing
from repro.eval import EvaluatorConfig, request_cache_key
from repro.eval.base import EvalRequest, Evaluator, ThreadSafeCounters
from repro.resilience import (
    EvalFailure,
    FaultInjectingEvaluator,
    ResilientEvaluator,
    RetryPolicy,
)


class EvaluationError(RuntimeError):
    """One design's evaluation terminally failed; carried to *its* waiters.

    Attributes:
        kind: Failure-taxonomy kind (see
            :data:`repro.resilience.FAILURE_KINDS`, plus ``overloaded``
            for admission-control rejections).
        retryable: Whether resubmitting the same request may succeed.
        attempts: Evaluation attempts spent server-side before giving up.
    """

    def __init__(
        self,
        message: str,
        kind: str = "simulator_error",
        retryable: bool = False,
        attempts: int = 0,
    ):
        super().__init__(message)
        self.kind = kind
        self.retryable = retryable
        self.attempts = int(attempts)


class OverloadedError(EvaluationError):
    """The pending queue is full; the client should back off and retry."""

    def __init__(self, message: str):
        super().__init__(message, kind="overloaded", retryable=True)


@dataclass
class CoalescerStats(ThreadSafeCounters):
    """Counters describing how well cross-client batching is working.

    All mutation happens on the event loop today, but the counters inherit
    :class:`ThreadSafeCounters` like every other stats object so snapshot
    reads (the ``stats`` RPC, checkpoint encoding) are torn-read-free even
    if a future flush path moves off-loop.

    Attributes:
        requests: Evaluate requests served.
        designs_submitted: Designs across all requests (incl. duplicates).
        designs_flushed: Designs that entered a simulator batch (post-dedup).
        batches_issued: ``evaluate_requests`` calls actually made.
        inflight_hits: Designs that attached to an already-queued/running
            future instead of re-entering a batch.
        peek_hits: Designs served instantly from the shared result cache.
        failures: Designs resolved with a terminal :class:`EvaluationError`
            (only their own waiters see it; batchmates are unaffected).
        rejected: Requests refused by admission control (``overloaded``).
    """

    requests: int = 0
    designs_submitted: int = 0
    designs_flushed: int = 0
    batches_issued: int = 0
    inflight_hits: int = 0
    peek_hits: int = 0
    failures: int = 0
    rejected: int = 0

    @property
    def coalescing_factor(self) -> float:
        """Mean designs per simulator batch (1.0 = no coalescing benefit)."""
        if self.batches_issued == 0:
            return 0.0
        return self.designs_flushed / self.batches_issued

    def to_dict(self) -> Dict[str, float]:
        with self.lock:
            return {
                "requests": self.requests,
                "designs_submitted": self.designs_submitted,
                "designs_flushed": self.designs_flushed,
                "batches_issued": self.batches_issued,
                "inflight_hits": self.inflight_hits,
                "peek_hits": self.peek_hits,
                "failures": self.failures,
                "rejected": self.rejected,
                "coalescing_factor": round(self.coalescing_factor, 4),
            }


class BatchCoalescer:
    """Merges concurrent evaluate submissions into shared simulator batches.

    One shared (unbound) evaluator serves every circuit and technology the
    clients ask for; mixed batches are bucketed inside the evaluator, so the
    coalescer itself only keeps a single pending queue and a single flush
    loop.

    Args:
        evaluator_config: Stack the shared evaluator is built with; a
            positive ``cache_size`` enables stored-result dedup.
        linger_s: Seconds a freshly-armed flush waits for more submissions.
        max_batch: Designs per issued evaluator batch (larger pending sets
            drain over several back-to-back batches).
        max_pending: Admission-control bound on queued designs; a submit
            that would overflow it is rejected with a retryable
            :class:`OverloadedError` (0 = unbounded).
        retry_policy: Retry/backoff/deadline policy of the resilient
            wrapper around the shared evaluator (default
            :class:`~repro.resilience.RetryPolicy`).
        chaos: Optional :class:`~repro.resilience.FaultInjectingEvaluator`
            kwargs (``seed``, ``error_rate``, ...).  When given, the chaos
            harness is wrapped *between* the resilient layer and the
            evaluator stack, so injected faults exercise the real recovery
            machinery end-to-end.
    """

    def __init__(
        self,
        evaluator_config: Optional[EvaluatorConfig] = None,
        linger_s: float = 0.01,
        max_batch: int = 64,
        max_pending: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        chaos: Optional[Mapping[str, Any]] = None,
    ):
        self.evaluator_config = evaluator_config or EvaluatorConfig(cache_size=4096)
        self.linger_s = float(linger_s)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        self.stats = CoalescerStats()
        # Resilience wraps *outside* the cache (failures are never cached)
        # and outside the chaos harness (injected faults must hit the real
        # retry/bisection/quarantine machinery, not bypass it).
        inner: Evaluator = self.evaluator_config.build()
        if chaos:
            inner = FaultInjectingEvaluator(inner, **dict(chaos))
        self.evaluator: ResilientEvaluator = ResilientEvaluator(
            inner, policy=retry_policy
        )
        #: Deduped designs awaiting the next batch: (key, request, future).
        self._pending: List[Tuple[tuple, EvalRequest, asyncio.Future]] = []
        #: Every queued-or-simulating design, keyed like the result cache.
        self._inflight: Dict[tuple, asyncio.Future] = {}
        self._flusher: Optional[asyncio.Task] = None
        #: (circuit, technology) pairs seen so far — eager validation plus
        #: the ``stats`` endpoint's bucket listing.
        self._seen: Set[Tuple[str, str]] = set()
        self._closed = False

    def evaluator_stats(self) -> Dict[str, float]:
        """Counters of the shared evaluator stack."""
        stats = self.evaluator.stats.to_dict()
        stats.pop("hit_rate", None)
        return stats

    # --- submission ---------------------------------------------------------------
    async def submit(
        self, circuit_name: str, technology: str, sizings: List[Sizing]
    ) -> List[Dict[str, Any]]:
        """Evaluate ``sizings`` through the coalescing funnel.

        Returns one ``{"sizing", "metrics", "cached"}`` dict per input, in
        input order.  ``cached`` is true when the design was served without
        a fresh simulation (result cache, or shared with another waiter).

        A design that terminally fails raises :class:`EvaluationError`
        (carrying the failure taxonomy) from *this* call only — batchmates
        sharing the simulator batch resolve normally.
        """
        if self._closed:
            raise EvaluationError("coalescer is closed")
        if (
            self.max_pending > 0
            and len(self._pending) + len(sizings) > self.max_pending
        ):
            with self.stats.lock:
                self.stats.rejected += 1
            raise OverloadedError(
                f"server overloaded: {len(self._pending)} design(s) pending "
                f"(max_pending={self.max_pending}); retry after backoff"
            )
        loop = asyncio.get_running_loop()
        bucket = (circuit_name.lower(), technology)
        if bucket not in self._seen:
            # Fail unknown circuit/technology pairs fast, before they queue.
            get_circuit(circuit_name, technology)
            self._seen.add(bucket)
        with self.stats.lock:
            self.stats.requests += 1
            self.stats.designs_submitted += len(sizings)

        waiters: List[Tuple[Sizing, asyncio.Future, bool]] = []
        for sizing in sizings:
            request = EvalRequest(circuit_name, technology, sizing)
            key = request_cache_key(request)
            future = self._inflight.get(key)
            if future is not None:
                with self.stats.lock:
                    self.stats.inflight_hits += 1
                waiters.append((sizing, future, True))
                continue
            cached_metrics = self.evaluator.peek(request)
            if cached_metrics is not None:
                with self.stats.lock:
                    self.stats.peek_hits += 1
                future = loop.create_future()
                future.set_result({"metrics": cached_metrics, "cached": True})
                waiters.append((sizing, future, True))
                continue
            future = loop.create_future()
            self._inflight[key] = future
            self._pending.append((key, request, future))
            waiters.append((sizing, future, False))

        if self._pending and self._flusher is None:
            self._flusher = asyncio.create_task(self._flush_loop())

        # Gather (never bare-await in sequence) so every waiter's exception
        # is retrieved even when an earlier design in the same submission
        # failed — otherwise the loop would warn about unretrieved futures.
        payloads = await asyncio.gather(
            *(future for _, future, _ in waiters), return_exceptions=True
        )
        for payload in payloads:
            if isinstance(payload, BaseException):
                raise payload
        results = []
        for (sizing, _, shared), payload in zip(waiters, payloads):
            results.append(
                {
                    "sizing": sizing,
                    "metrics": dict(payload["metrics"]),
                    "cached": bool(payload["cached"]) or shared,
                }
            )
        return results

    # --- flushing -----------------------------------------------------------------
    async def _flush_loop(self) -> None:
        """Drain the queue: linger, then evaluate everything that queued up.

        Runs until the queue is empty, then disarms.  Submissions arriving
        while a batch is simulating land in ``_pending`` and form the next
        batch — the loop body is the only place futures are resolved, and
        it never awaits between draining ``_pending`` and resolving them.
        """
        try:
            while self._pending:
                if self.linger_s > 0:
                    await asyncio.sleep(self.linger_s)
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
                requests = [request for _, request, _ in batch]
                try:
                    outcomes = await asyncio.to_thread(
                        self.evaluator.evaluate_outcomes, requests
                    )
                except Exception as error:
                    # Infrastructure failure (evaluator closed, OOM): the
                    # resilient wrapper already absorbed every per-request
                    # failure, so this path is catastrophic-only.
                    for key, _, future in batch:
                        self._inflight.pop(key, None)
                        if not future.done():
                            future.set_exception(
                                EvaluationError(f"evaluation failed: {error}")
                            )
                    continue
                with self.stats.lock:
                    self.stats.batches_issued += 1
                    self.stats.designs_flushed += len(batch)
                for (key, _, future), outcome in zip(batch, outcomes):
                    self._inflight.pop(key, None)
                    if future.done():
                        continue
                    if isinstance(outcome, EvalFailure):
                        # Only this design's waiters see the failure; the
                        # rest of the coalesced batch resolves normally.
                        with self.stats.lock:
                            self.stats.failures += 1
                        future.set_exception(
                            EvaluationError(
                                f"evaluation failed: {outcome.message}",
                                kind=outcome.kind,
                                retryable=outcome.retryable,
                                attempts=outcome.attempts,
                            )
                        )
                    else:
                        future.set_result(
                            {
                                "metrics": dict(outcome.metrics),
                                "cached": bool(outcome.cached),
                            }
                        )
        finally:
            self._flusher = None

    # --- lifecycle ----------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Stats payload for the ``stats`` endpoint."""
        payload = {
            "coalescer": self.stats.to_dict(),
            "evaluator": self.evaluator_stats(),
            "resilience": self.evaluator.rstats.to_dict(),
            "buckets": sorted(
                f"{circuit}/{technology}" for circuit, technology in self._seen
            ),
        }
        chaos = self.evaluator.inner
        if isinstance(chaos, FaultInjectingEvaluator):
            payload["chaos"] = dict(chaos.injected)
        return payload

    def close(self) -> None:
        """Cancel pending work and release the shared evaluator."""
        self._closed = True
        if self._flusher is not None:
            self._flusher.cancel()
        for key, _, future in self._pending:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(EvaluationError("server shutting down"))
        self._pending.clear()
        self.evaluator.close()
