"""Unified design-evaluation subsystem (the single entry to the simulator).

Every optimizer reaches the SPICE engine through an :class:`Evaluator`:

* :class:`LocalEvaluator` — serial in-process reference implementation.
* :class:`ParallelEvaluator` — process/thread pool fan-out with
  deterministic result ordering.
* :class:`CachingEvaluator` — LRU cache keyed on the quantized refined
  sizing, wrapping any other evaluator.
* :class:`VectorizedEvaluator` — stacked batched MNA solves
  (:mod:`repro.spice.batch`): the whole batch shares single LAPACK calls.
* :class:`EvaluatorConfig` / :func:`build_evaluator` — declarative
  construction of the stack, shared by the CLI and the experiment runner.
"""

from repro.eval.base import EvalResult, Evaluator, EvaluatorStats
from repro.eval.caching import CachingEvaluator, sizing_cache_key
from repro.eval.config import BACKENDS, EvaluatorConfig, build_evaluator
from repro.eval.local import LocalEvaluator
from repro.eval.parallel import ParallelEvaluator
from repro.eval.vectorized import VectorizedEvaluator

__all__ = [
    "Evaluator",
    "EvalResult",
    "EvaluatorStats",
    "LocalEvaluator",
    "ParallelEvaluator",
    "CachingEvaluator",
    "VectorizedEvaluator",
    "EvaluatorConfig",
    "build_evaluator",
    "sizing_cache_key",
    "BACKENDS",
]
