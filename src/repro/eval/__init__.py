"""Unified design-evaluation subsystem (the single entry to the simulator).

Every optimizer reaches the SPICE engine through an :class:`Evaluator`.  The
unit of work is the :class:`EvalRequest` — (circuit, technology, sizing) —
and the canonical entry point is ``evaluate_requests``, which accepts an
arbitrarily mixed batch and returns results in request order; the
per-circuit ``evaluate_batch`` is a thin adapter over it.

* :class:`LocalEvaluator` — serial in-process reference implementation.
* :class:`ParallelEvaluator` — process/thread pool fan-out with
  deterministic result ordering.
* :class:`CachingEvaluator` — LRU cache keyed on
  :func:`request_cache_key` (circuit, technology, quantized sizing),
  wrapping any other evaluator.
* :class:`VectorizedEvaluator` — stacked batched MNA solves
  (:mod:`repro.spice.batch`): mixed batches are bucketed by topology and
  each bucket shares single LAPACK calls.
* :class:`BoundEvaluator` — per-circuit view of a shared evaluator
  (``Evaluator.bind``), so campaigns and services can funnel many runs
  through one evaluator.
* :class:`EvaluatorConfig` / :func:`build_evaluator` — declarative
  construction of the stack, shared by the CLI and the experiment runner.
"""

from repro.eval.base import (
    BoundEvaluator,
    EvalRequest,
    EvalResult,
    Evaluator,
    EvaluatorStats,
)
from repro.eval.caching import CachingEvaluator, request_cache_key, sizing_cache_key
from repro.eval.config import BACKENDS, EvaluatorConfig, build_evaluator
from repro.eval.local import LocalEvaluator
from repro.eval.parallel import ParallelEvaluator
from repro.eval.vectorized import VectorizedEvaluator

__all__ = [
    "Evaluator",
    "EvalRequest",
    "EvalResult",
    "EvaluatorStats",
    "BoundEvaluator",
    "LocalEvaluator",
    "ParallelEvaluator",
    "CachingEvaluator",
    "VectorizedEvaluator",
    "EvaluatorConfig",
    "build_evaluator",
    "request_cache_key",
    "sizing_cache_key",
    "BACKENDS",
]
