"""Vectorized evaluator: whole batches through the stacked SPICE engine.

Where :class:`~repro.eval.local.LocalEvaluator` walks the scalar path once
per design, this backend stamps every design of a batch into stacked MNA
systems and solves them with single batched LAPACK calls
(:mod:`repro.spice.batch`): batched-Newton DC with per-design convergence
masks and a masked gmin/source-stepping homotopy for the hard designs, one
``(B, F, n, n)`` AC solve and batched adjoint noise.  Measurement code is
shared with the serial path through the circuit's
:meth:`~repro.circuits.base.CircuitDesign.analysis_plan` /
:meth:`~repro.circuits.base.CircuitDesign.metrics_from_solutions` split, so
results match the serial backend to solver precision.

Mixed :class:`~repro.eval.base.EvalRequest` batches are bucketed by
(circuit, technology) — the :class:`~repro.spice.batch.BatchTemplate`
compatibility key — so a heterogeneous request stream becomes a few dense
stacked solves instead of many sparse ones; results scatter back in request
order.

Circuits that publish no analysis plan (the LDO's transient-heavy
evaluation) and buckets whose topology unexpectedly diverges fall back to
the serial path per design (counted in ``stats.scalar_fallbacks``) — the
backend is always *correct*, just not always faster.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Sequence, Set, Tuple

from repro.circuits.base import AnalysisPlan, CircuitDesign
from repro.circuits.parameters import Sizing
from repro.eval.base import EvalResult, Evaluator
from repro.spice.batch import (
    BatchIncompatibleError,
    BatchTemplate,
    batch_ac_analysis,
    batch_dc_operating_point,
    batch_noise_analysis,
)

logger = logging.getLogger("repro.eval")

#: Default cap on designs per stacked solve: bounds the ``(B, F, n, n)``
#: tensor to a few tens of MB for the benchmark circuits.
DEFAULT_MAX_BATCH = 64


class VectorizedEvaluator(Evaluator):
    """Evaluates batches through the stacked (vectorized) MNA engine.

    Args:
        circuit: The circuit design to simulate, or ``None`` for an unbound
            evaluator serving mixed request batches.
        max_batch_size: Designs per stacked solve; larger buckets are split
            into chunks of this size to bound the AC tensor's memory.
    """

    def __init__(
        self,
        circuit: Optional[CircuitDesign] = None,
        max_batch_size: int = DEFAULT_MAX_BATCH,
    ):
        super().__init__(circuit)
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self.max_batch_size = max_batch_size
        self._warned_serial: Set[Tuple[str, str]] = set()

    # --- fallbacks ---------------------------------------------------------------
    def _serial_fallback(
        self, circuit: CircuitDesign, sizings: Sequence[Sizing], reason: str
    ) -> List[EvalResult]:
        key = (circuit.name.lower(), circuit.technology.name)
        if key not in self._warned_serial:
            logger.info(
                "vectorized evaluator for %r runs serially: %s",
                circuit.name,
                reason,
            )
            self._warned_serial.add(key)
        with self.stats.lock:
            self.stats.scalar_fallbacks += len(sizings)
        return [
            EvalResult(sizing=sizing, metrics=circuit.evaluate(sizing))
            for sizing in sizings
        ]

    # --- batched path ------------------------------------------------------------
    def _evaluate_chunk(
        self, circuit: CircuitDesign, sizings: List[Sizing], plan: AnalysisPlan
    ) -> List[EvalResult]:
        circuits = [circuit.build_circuit(sizing) for sizing in sizings]
        try:
            template = BatchTemplate(circuits)
        except BatchIncompatibleError as error:
            return self._serial_fallback(circuit, sizings, str(error))

        ops = batch_dc_operating_point(circuits, template=template)
        converged = [i for i, op in enumerate(ops) if op.converged]
        metrics = [circuit.failure_metrics() for _ in sizings]

        if converged:
            sub_circuits = [circuits[i] for i in converged]
            sub_ops = [ops[i] for i in converged]
            sub_template = (
                template if len(converged) == len(circuits) else template.subset(converged)
            )
            acs = batch_ac_analysis(
                sub_circuits, sub_ops, plan.ac_frequencies, template=sub_template
            )
            noises: List[Optional[object]] = [None] * len(converged)
            if plan.noise_output is not None:
                noises = batch_noise_analysis(
                    sub_circuits,
                    sub_ops,
                    plan.noise_output,
                    plan.noise_frequencies,
                    output_node_neg=plan.noise_output_neg,
                    template=sub_template,
                )
            for position, index in enumerate(converged):
                metrics[index] = circuit.metrics_from_solutions(
                    sizings[index], ops[index], acs[position], noises[position]
                )

        return [
            EvalResult(sizing=sizing, metrics=metric)
            for sizing, metric in zip(sizings, metrics)
        ]

    def _evaluate_bucket(
        self, circuit: CircuitDesign, sizings: Sequence[Sizing]
    ) -> List[EvalResult]:
        """Evaluate one topology bucket through stacked solves (chunked)."""
        sizings = list(sizings)
        plan = circuit.analysis_plan()
        if plan is None:
            return self._serial_fallback(
                circuit, sizings, "circuit publishes no analysis plan"
            )
        results: List[EvalResult] = []
        for offset in range(0, len(sizings), self.max_batch_size):
            chunk = sizings[offset : offset + self.max_batch_size]
            results.extend(self._evaluate_chunk(circuit, chunk, plan))
        return results

    def describe(self) -> str:
        """One-line summary used by logs and reports."""
        target = self._circuit.name if self._circuit is not None else "mixed"
        return (
            f"VectorizedEvaluator({target}, "
            f"max_batch_size={self.max_batch_size})"
        )
