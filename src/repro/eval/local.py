"""In-process serial evaluator — the reference implementation."""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits.base import CircuitDesign
from repro.circuits.parameters import Sizing
from repro.eval.base import EvalResult, Evaluator


class LocalEvaluator(Evaluator):
    """Evaluates each design serially through ``circuit.evaluate``.

    This is the behaviour every optimizer had before the batched API existed;
    :class:`~repro.eval.parallel.ParallelEvaluator`,
    :class:`~repro.eval.caching.CachingEvaluator` and
    :class:`~repro.eval.vectorized.VectorizedEvaluator` are verified against
    it.  Unbound (``LocalEvaluator()``), it serves arbitrarily mixed
    :class:`~repro.eval.base.EvalRequest` batches, resolving circuits from
    the registry.
    """

    def _evaluate_bucket(
        self, circuit: CircuitDesign, sizings: Sequence[Sizing]
    ) -> List[EvalResult]:
        """Simulate every sizing in order on the calling thread."""
        return [
            EvalResult(sizing=sizing, metrics=circuit.evaluate(sizing))
            for sizing in sizings
        ]
