"""In-process serial evaluator — the reference implementation."""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.circuits.parameters import Sizing
from repro.eval.base import EvalResult, Evaluator


class LocalEvaluator(Evaluator):
    """Evaluates each sizing serially through ``circuit.evaluate``.

    This is the behaviour every optimizer had before the batched API existed;
    :class:`~repro.eval.parallel.ParallelEvaluator` and
    :class:`~repro.eval.caching.CachingEvaluator` are verified against it.
    """

    def evaluate_batch(self, sizings: Sequence[Sizing]) -> List[EvalResult]:
        """Simulate every sizing in order on the calling thread."""
        start = time.perf_counter()
        results = [
            EvalResult(sizing=sizing, metrics=self._circuit.evaluate(sizing))
            for sizing in sizings
        ]
        self.stats.num_batches += 1
        self.stats.num_designs += len(results)
        self.stats.num_simulations += len(results)
        self.stats.total_time += time.perf_counter() - start
        return results
