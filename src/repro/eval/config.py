"""Declarative evaluator configuration, shared by the CLI and the runner.

An :class:`EvaluatorConfig` describes *how* designs should be evaluated —
serial, thread pool, process pool, with or without an LRU cache — without
holding any resources itself, so it can live in experiment settings, be
hashed into run-cache keys and be built once per circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.circuits.base import CircuitDesign
from repro.eval.base import Evaluator
from repro.eval.caching import CachingEvaluator
from repro.eval.local import LocalEvaluator
from repro.eval.parallel import ParallelEvaluator
from repro.eval.vectorized import VectorizedEvaluator

#: Recognised evaluation backends.
BACKENDS = ("local", "thread", "process", "vectorized")


@dataclass(frozen=True)
class EvaluatorConfig:
    """How to build the evaluator stack for a run.

    Attributes:
        backend: ``"local"`` (serial, in-process), ``"thread"`` or
            ``"process"`` (worker pools), or ``"vectorized"`` (stacked
            batched solves through :mod:`repro.spice.batch`).
        max_workers: Pool size for the pool backends; ``None`` means the
            machine's CPU count.  Ignored by the local and vectorized
            backends.
        cache_size: When positive, wrap the base evaluator in a
            :class:`CachingEvaluator` with this capacity.
    """

    backend: str = "local"
    max_workers: Optional[int] = None
    cache_size: int = 0

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")

    def build(self, circuit: Optional[CircuitDesign] = None) -> Evaluator:
        """Construct the configured evaluator stack.

        With ``circuit`` the stack is bound to it (the classic per-run use);
        without, the stack is unbound and serves arbitrarily mixed
        :class:`~repro.eval.base.EvalRequest` batches — one shared evaluator
        for a whole campaign or service.
        """
        if self.backend == "local":
            evaluator: Evaluator = LocalEvaluator(circuit)
        elif self.backend == "vectorized":
            evaluator = VectorizedEvaluator(circuit)
        else:
            evaluator = ParallelEvaluator(
                circuit, max_workers=self.max_workers, backend=self.backend
            )
        if self.cache_size > 0:
            evaluator = CachingEvaluator(evaluator, max_size=self.cache_size)
        return evaluator

    def cache_key(self) -> Tuple:
        """Canonical hashable form for run-cache keys."""
        return ("evaluator", self.backend, self.max_workers, self.cache_size)


def build_evaluator(
    circuit: CircuitDesign, config: Optional[EvaluatorConfig] = None
) -> Evaluator:
    """Build an evaluator for ``circuit`` (serial local one by default)."""
    return (config or EvaluatorConfig()).build(circuit)
