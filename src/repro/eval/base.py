"""The :class:`Evaluator` protocol — the single entry point to the simulator.

Every optimization method in the reproduction (GCN-RL, NG-RL, random search,
ES, BO, MACE) is simulation-in-the-loop: the dominant cost of a run is the
sequence of circuit evaluations it requests.  This module defines the batched
evaluation contract that decouples *what* is evaluated from *how*:

* :class:`EvalRequest` — one (circuit, technology, sizing) evaluation unit;
  the currency of the whole evaluation stack.
* :class:`EvalResult` — one request's measured metrics.
* :class:`EvaluatorStats` — running counters every evaluator maintains.
* :class:`Evaluator` — the abstract batched interface.  The canonical entry
  point is :meth:`Evaluator.evaluate_requests`, which accepts an arbitrarily
  *mixed* batch (any circuits, any technologies, interleaved) and returns
  results in request order; backends implement the per-circuit hook
  :meth:`Evaluator._evaluate_bucket` and inherit the bucketing/scatter
  machinery.  The per-circuit :meth:`Evaluator.evaluate_batch` is a thin
  adapter that wraps sizings as requests for the bound circuit, so all
  pre-``EvalRequest`` call sites keep working unchanged.
* :class:`BoundEvaluator` — a per-circuit view of a shared evaluator, so
  many environments (campaign cells, service buckets) can funnel traffic
  into one evaluator whose lifetime outlives each of them.

Implementations must be *deterministic in order*: ``evaluate_requests(r)[i]``
always corresponds to ``r[i]``, whatever bucketing, parallelism or caching
happens underneath, so optimization histories are reproducible bit-for-bit.
"""

from __future__ import annotations

import abc
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.base import CircuitDesign
from repro.circuits.parameters import Sizing


class ThreadSafeCounters:
    """Mixin giving a stats dataclass a mutation lock.

    Stats objects are shared across threads — the coalescer flushes batches
    via ``asyncio.to_thread``, resilient evaluation runs attempts under
    deadline-watcher threads, campaign workers share one evaluator — so
    read-modify-write counter updates (``stats.x += 1``) race without a
    guard.  Mutation sites hold ``with stats.lock:``; snapshot methods
    (``to_dict``) take the same lock so a reader never sees a torn batch of
    updates.

    The lock is created in ``__post_init__`` rather than as a dataclass
    field, so generated ``__eq__``/``__repr__`` and ``to_dict`` payloads are
    unaffected; ``__getstate__``/``__setstate__`` drop and recreate it so
    stats embedded in driver checkpoints still pickle.
    """

    def __post_init__(self) -> None:
        self.lock = threading.Lock()

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state.pop("lock", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self.lock = threading.Lock()


@dataclass(frozen=True)
class EvalRequest:
    """One design evaluation: which circuit, which node, which sizing.

    Attributes:
        circuit: Circuit registry name (case-insensitive).
        technology: Technology node name (e.g. ``"180nm"``).
        sizing: The refined physical sizing to simulate.
    """

    circuit: str
    technology: str
    sizing: Sizing

    @property
    def bucket(self) -> Tuple[str, str]:
        """Topology-compatibility key requests are batched under.

        Two requests may share a stacked solve only when both the topology
        *and* the model cards match, so the key is (circuit, technology) —
        exactly how the service coalescer already bucketed submissions.
        """
        return (self.circuit.lower(), self.technology)


@dataclass
class EvalResult:
    """Outcome of simulating one design point.

    Attributes:
        sizing: The (refined) physical sizing that was evaluated.
        metrics: Every measured performance metric of the design.
        cached: Whether the result was served from a cache instead of a
            fresh simulation.
    """

    sizing: Sizing
    metrics: Dict[str, float]
    cached: bool = False


@dataclass
class EvaluatorStats(ThreadSafeCounters):
    """Running counters of an evaluator's activity.

    Attributes:
        num_batches: Number of batch calls served (``evaluate_requests`` or
            ``evaluate_batch`` — the adapter counts once).
        num_designs: Total designs evaluated (including cache hits).
        num_simulations: Designs that actually reached the simulator.
        cache_hits: Designs served from a cache.
        cache_evictions: Cache entries dropped due to capacity.
        scalar_fallbacks: Designs that left the vectorized fast path and were
            simulated serially (no analysis plan / incompatible topology).
        total_time: Wall-clock seconds spent inside batch evaluation.
    """

    num_batches: int = 0
    num_designs: int = 0
    num_simulations: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    scalar_fallbacks: int = 0
    total_time: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of designs served from cache (0 when nothing was asked)."""
        if self.num_designs == 0:
            return 0.0
        return self.cache_hits / self.num_designs

    def to_dict(self) -> Dict[str, float]:
        """Consistent snapshot for logging and reports."""
        with self.lock:
            return {
                "num_batches": self.num_batches,
                "num_designs": self.num_designs,
                "num_simulations": self.num_simulations,
                "cache_hits": self.cache_hits,
                "cache_evictions": self.cache_evictions,
                "scalar_fallbacks": self.scalar_fallbacks,
                "total_time": self.total_time,
                "hit_rate": self.hit_rate,
            }


class Evaluator(abc.ABC):
    """Batched design-evaluation service: requests in, metrics out.

    The evaluator owns *no* optimization state — it is a pure mapping from
    refined physical sizings to metric dictionaries.  Reward (FoM) compution
    stays in the environment, so the same evaluator (and its cache) can be
    shared by runs with different FoM weightings.

    An evaluator may be *bound* to one circuit (the classic per-environment
    use; ``evaluate_batch`` needs it) or *unbound* (``circuit=None``), in
    which case it serves arbitrarily mixed :class:`EvalRequest` batches and
    resolves circuits lazily from the registry.
    """

    def __init__(self, circuit: Optional[CircuitDesign] = None):
        self._circuit = circuit
        self._circuits: Dict[Tuple[str, str], CircuitDesign] = {}
        self._circuits_lock = threading.Lock()
        if circuit is not None:
            key = (circuit.name.lower(), circuit.technology.name)
            self._circuits[key] = circuit
        self.stats = EvaluatorStats()

    @property
    def circuit(self) -> CircuitDesign:
        """The bound circuit design; raises when the evaluator is unbound."""
        if self._circuit is None:
            # API misuse, not an evaluation failure: nothing was simulated.
            raise RuntimeError(  # repro-lint: ignore[failure-taxonomy]
                f"{type(self).__name__} is not bound to a circuit; use "
                "evaluate_requests() with explicit EvalRequests, or bind() "
                "a per-circuit view"
            )
        return self._circuit

    @property
    def bound(self) -> bool:
        """Whether this evaluator is pinned to a single circuit."""
        return self._circuit is not None

    def bind(self, circuit: CircuitDesign) -> "Evaluator":
        """A per-circuit view of this evaluator whose ``close()`` is a no-op.

        Environments built around the view funnel all their traffic (and
        stats, and cache state) into this shared evaluator; closing the view
        — as ``run_method`` does after every run — leaves the shared
        evaluator alive for the next cell.
        """
        return BoundEvaluator(self, circuit)

    def _resolve_circuit(self, name: str, technology: str) -> CircuitDesign:
        """Circuit design for a request bucket, resolved once and cached."""
        key = (name.lower(), technology)
        with self._circuits_lock:
            circuit = self._circuits.get(key)
            if circuit is None:
                # Lazy import: the circuit registry must stay importable
                # without pulling the evaluation stack in, and vice versa.
                from repro.circuits.library import get_circuit

                circuit = get_circuit(name, technology)
                self._circuits[key] = circuit
        return circuit

    def _legacy_batch_only(self) -> bool:
        """Whether a subclass predates ``EvalRequest`` (batch override only).

        Subclasses written against the per-circuit API override
        ``evaluate_batch`` and nothing else; ``evaluate_requests`` then
        routes bound-circuit batches through their override instead of the
        bucket hook (same idiom as ``SizingEnvironment._scalar_override``).
        """
        cls = type(self)
        return (
            cls.evaluate_batch is not Evaluator.evaluate_batch
            and cls._evaluate_bucket is Evaluator._evaluate_bucket
        )

    def _evaluate_bucket(
        self, circuit: CircuitDesign, sizings: Sequence[Sizing]
    ) -> List[EvalResult]:
        """Evaluate one topology-compatible group; backends implement this."""
        raise NotImplementedError(
            f"{type(self).__name__} implements neither _evaluate_bucket() "
            "nor evaluate_batch()"
        )

    def evaluate_requests(
        self, requests: Sequence[EvalRequest]
    ) -> List[EvalResult]:
        """Evaluate a mixed batch; result ``i`` always matches request ``i``.

        Requests are grouped by :attr:`EvalRequest.bucket` (first-seen
        order, preserving each bucket's internal order), every group runs
        through :meth:`_evaluate_bucket`, and results scatter back to
        request positions.
        """
        requests = list(requests)
        start = time.perf_counter()
        if self._legacy_batch_only():
            circuit = self.circuit
            home = (circuit.name.lower(), circuit.technology.name)
            foreign = sorted(
                {
                    f"{r.circuit}/{r.technology}"
                    for r in requests
                    if r.bucket != home
                }
            )
            if foreign:
                # API misuse (mixed batch sent to a legacy bound evaluator)
                # raised before anything is simulated, so no failure kind.
                raise ValueError(  # repro-lint: ignore[failure-taxonomy]
                    f"{type(self).__name__} overrides evaluate_batch() only "
                    f"and is bound to {circuit.name!r}/"
                    f"{circuit.technology.name}; cannot serve requests for "
                    f"{', '.join(foreign)}"
                )
            return self.evaluate_batch([r.sizing for r in requests])

        buckets: Dict[Tuple[str, str], List[int]] = {}
        for index, request in enumerate(requests):
            buckets.setdefault(request.bucket, []).append(index)
        results: List[Optional[EvalResult]] = [None] * len(requests)
        for indices in buckets.values():
            first = requests[indices[0]]
            circuit = self._resolve_circuit(first.circuit, first.technology)
            bucket_results = self._evaluate_bucket(
                circuit, [requests[i].sizing for i in indices]
            )
            for index, result in zip(indices, bucket_results):
                results[index] = result
        with self.stats.lock:
            self.stats.num_batches += 1
            self.stats.num_designs += len(requests)
            self.stats.num_simulations += len(requests)
            self.stats.total_time += time.perf_counter() - start
        return results

    def evaluate_batch(self, sizings: Sequence[Sizing]) -> List[EvalResult]:
        """Per-circuit adapter: evaluate sizings against the bound circuit."""
        circuit = self.circuit
        name, technology = circuit.name, circuit.technology.name
        return self.evaluate_requests(
            [EvalRequest(name, technology, sizing) for sizing in sizings]
        )

    def evaluate(self, sizing: Sizing) -> EvalResult:
        """Evaluate a single sizing against the bound circuit (batch of one)."""
        return self.evaluate_batch([sizing])[0]

    def peek(self, request: EvalRequest) -> Optional[Dict[str, float]]:
        """Already-known metrics for ``request``, or ``None`` (never simulates).

        The hook batch schedulers (the service's cross-client coalescer) use
        to serve stored results without entering a simulator batch.  Plain
        evaluators know nothing, so the default is ``None``;
        :class:`~repro.eval.caching.CachingEvaluator` overrides it with a
        non-mutating cache lookup keyed exactly like its evaluation dedup
        (:func:`~repro.eval.caching.request_cache_key`), so a peek hit can
        never diverge from a real evaluation.
        """
        return None

    def close(self) -> None:
        """Release any resources (worker pools); safe to call repeatedly."""

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        """One-line summary used by logs and reports."""
        target = self._circuit.name if self._circuit is not None else "mixed"
        return f"{type(self).__name__}({target})"


class BoundEvaluator(Evaluator):
    """Per-circuit view of a shared evaluator.

    Traffic, stats and cache state all belong to the shared evaluator; the
    view only pins the circuit (so environments can pair with it) and makes
    :meth:`close` a no-op (the shared evaluator's owner closes it).
    """

    def __init__(self, shared: Evaluator, circuit: CircuitDesign):
        self.shared = shared
        self._circuit = circuit
        # Seed the shared resolution cache so its bucketing reuses this very
        # circuit object instead of re-building one from the registry.
        key = (circuit.name.lower(), circuit.technology.name)
        shared._circuits.setdefault(key, circuit)
        self._circuits = shared._circuits

    @property
    def stats(self) -> EvaluatorStats:
        return self.shared.stats

    def evaluate_requests(
        self, requests: Sequence[EvalRequest]
    ) -> List[EvalResult]:
        return self.shared.evaluate_requests(requests)

    def peek(self, request: EvalRequest) -> Optional[Dict[str, float]]:
        return self.shared.peek(request)

    def close(self) -> None:
        """No-op: the shared evaluator outlives its per-circuit views."""

    def describe(self) -> str:
        return (
            f"BoundEvaluator({self._circuit.name} -> {self.shared.describe()})"
        )
