"""The :class:`Evaluator` protocol — the single entry point to the simulator.

Every optimization method in the reproduction (GCN-RL, NG-RL, random search,
ES, BO, MACE) is simulation-in-the-loop: the dominant cost of a run is the
sequence of circuit evaluations it requests.  This module defines the batched
evaluation contract that decouples *what* is evaluated (a list of physical
sizings) from *how* it is evaluated (serially, in a worker pool, through a
cache, or — in later revisions — on a remote simulation service):

* :class:`EvalResult` — one sizing's measured metrics.
* :class:`EvaluatorStats` — running counters every evaluator maintains.
* :class:`Evaluator` — the abstract batched interface; ``evaluate_batch`` is
  the one required method and the scalar ``evaluate`` is a thin wrapper.

Implementations must be *deterministic in order*: ``evaluate_batch(s)[i]``
always corresponds to ``s[i]``, whatever parallelism or caching happens
underneath, so optimization histories are reproducible bit-for-bit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.circuits.base import CircuitDesign
from repro.circuits.parameters import Sizing


@dataclass
class EvalResult:
    """Outcome of simulating one design point.

    Attributes:
        sizing: The (refined) physical sizing that was evaluated.
        metrics: Every measured performance metric of the design.
        cached: Whether the result was served from a cache instead of a
            fresh simulation.
    """

    sizing: Sizing
    metrics: Dict[str, float]
    cached: bool = False


@dataclass
class EvaluatorStats:
    """Running counters of an evaluator's activity.

    Attributes:
        num_batches: Number of ``evaluate_batch`` calls served.
        num_designs: Total designs evaluated (including cache hits).
        num_simulations: Designs that actually reached the simulator.
        cache_hits: Designs served from a cache.
        cache_evictions: Cache entries dropped due to capacity.
        total_time: Wall-clock seconds spent inside ``evaluate_batch``.
    """

    num_batches: int = 0
    num_designs: int = 0
    num_simulations: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    total_time: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of designs served from cache (0 when nothing was asked)."""
        if self.num_designs == 0:
            return 0.0
        return self.cache_hits / self.num_designs

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict view for logging and reports."""
        return {
            "num_batches": self.num_batches,
            "num_designs": self.num_designs,
            "num_simulations": self.num_simulations,
            "cache_hits": self.cache_hits,
            "cache_evictions": self.cache_evictions,
            "total_time": self.total_time,
            "hit_rate": self.hit_rate,
        }


class Evaluator(abc.ABC):
    """Batched design-evaluation service: sizings in, metrics out.

    The evaluator owns *no* optimization state — it is a pure mapping from
    refined physical sizings to metric dictionaries.  Reward (FoM) compution
    stays in the environment, so the same evaluator (and its cache) can be
    shared by runs with different FoM weightings.
    """

    def __init__(self, circuit: CircuitDesign):
        self._circuit = circuit
        self.stats = EvaluatorStats()

    @property
    def circuit(self) -> CircuitDesign:
        """The circuit design this evaluator simulates."""
        return self._circuit

    @abc.abstractmethod
    def evaluate_batch(self, sizings: Sequence[Sizing]) -> List[EvalResult]:
        """Evaluate many sizings; result ``i`` always matches input ``i``."""

    def evaluate(self, sizing: Sizing) -> EvalResult:
        """Evaluate a single sizing (batch of one)."""
        return self.evaluate_batch([sizing])[0]

    def peek(self, sizing: Sizing) -> Optional[Dict[str, float]]:
        """Already-known metrics for ``sizing``, or ``None`` (never simulates).

        The hook batch schedulers (the service's cross-client coalescer) use
        to serve stored results without entering a simulator batch.  Plain
        evaluators know nothing, so the default is ``None``;
        :class:`~repro.eval.caching.CachingEvaluator` overrides it with a
        non-mutating cache lookup keyed exactly like ``evaluate_batch``'s
        dedup, so a peek hit can never diverge from a real evaluation.
        """
        return None

    def close(self) -> None:
        """Release any resources (worker pools); safe to call repeatedly."""

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        """One-line summary used by logs and reports."""
        return f"{type(self).__name__}({self._circuit.name})"
