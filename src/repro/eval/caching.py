"""LRU-caching evaluator: never simulate the same design request twice.

Optimizers frequently revisit design points — the refinement step snaps
sizings to the technology grid and matching groups, so distinct raw actions
often collapse onto the same physical design.  The cache keys on the
(circuit, technology, *quantized* refined sizing) triple of the
:class:`~repro.eval.base.EvalRequest`, which makes it exact: two keys are
equal only if the simulator would receive (up to float formatting) the same
netlist of the same circuit, so a hit can never change results — and one
cache can safely serve arbitrarily mixed cross-circuit traffic.

:func:`request_cache_key` is the one canonical key function; the service
coalescer's two dedup layers (in-flight futures and stored-result peeks)
and this cache all share it, so no layer can ever disagree about which
requests are "the same design".
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.parameters import Sizing
from repro.eval.base import EvalRequest, EvalResult, Evaluator

#: Significant digits retained in cache keys.  Refined sizings are already
#: grid-snapped, so 12 digits distinguishes every representable design while
#: absorbing sub-ULP formatting noise.
CACHE_KEY_DIGITS = 12

CacheKey = Tuple[Tuple[str, str, str], ...]

RequestKey = Tuple[str, str, CacheKey]


def sizing_cache_key(sizing: Sizing, digits: int = CACHE_KEY_DIGITS) -> CacheKey:
    """Canonical hashable key for a sizing (sorted, quantized)."""
    entries = []
    for component in sorted(sizing):
        params = sizing[component]
        for name in sorted(params):
            entries.append((component, name, f"{float(params[name]):.{digits}g}"))
    return tuple(entries)


def request_cache_key(
    request: EvalRequest, digits: int = CACHE_KEY_DIGITS
) -> RequestKey:
    """Canonical hashable key for an :class:`EvalRequest`.

    ``(circuit, technology, quantized sizing)`` — the one key function every
    dedup layer (result caches, the coalescer's in-flight map, peeks) uses,
    so the same design of *different* circuits can never collide.
    """
    return (
        request.circuit.lower(),
        request.technology,
        sizing_cache_key(request.sizing, digits),
    )


class CachingEvaluator(Evaluator):
    """Wraps another evaluator with an LRU result cache.

    Args:
        inner: The evaluator that performs cache-miss simulations (its own
            batching/parallelism is preserved — all misses of a batch are
            forwarded in a single inner batch).  May be unbound, in which
            case this wrapper is unbound too and serves mixed requests.
        max_size: Maximum number of cached designs; least-recently-used
            entries are evicted beyond it.
        key_digits: Significant digits used when quantizing key values.
    """

    def __init__(
        self,
        inner: Evaluator,
        max_size: int = 4096,
        key_digits: int = CACHE_KEY_DIGITS,
    ):
        super().__init__(inner._circuit)
        if max_size < 1:
            raise ValueError(f"max_size must be positive, got {max_size}")
        self.inner = inner
        self.max_size = max_size
        self.key_digits = key_digits
        self._cache: "OrderedDict[RequestKey, Dict[str, float]]" = OrderedDict()
        # Protects ``_cache``: the coalescer peeks from the event loop while
        # flush batches mutate the LRU from ``asyncio.to_thread`` workers.
        self._cache_lock = threading.Lock()

    def __len__(self) -> int:
        with self._cache_lock:
            return len(self._cache)

    def clear(self) -> None:
        """Drop every cached result (statistics are kept)."""
        with self._cache_lock:
            self._cache.clear()

    def peek(self, request: EvalRequest) -> Optional[Dict[str, float]]:
        """Cached metrics for ``request`` without touching stats or LRU order.

        Keys exactly like :meth:`evaluate_requests`, so a hit is guaranteed
        to equal what a real evaluation would return; the returned dict is a
        copy, so callers can never mutate the cache.  Wrapped evaluators are
        consulted too (a deeper cache may know the design).
        """
        with self._cache_lock:
            metrics = self._cache.get(
                request_cache_key(request, self.key_digits)
            )
            if metrics is not None:
                return dict(metrics)
        return self.inner.peek(request)

    def _store(self, key: RequestKey, metrics: Dict[str, float]) -> None:
        with self._cache_lock:
            self._cache[key] = dict(metrics)
            self._cache.move_to_end(key)
            evictions = 0
            while len(self._cache) > self.max_size:
                self._cache.popitem(last=False)
                evictions += 1
        if evictions:
            with self.stats.lock:
                self.stats.cache_evictions += evictions

    def evaluate_requests(
        self, requests: Sequence[EvalRequest]
    ) -> List[EvalResult]:
        """Serve hits from the cache; forward all misses as one inner batch."""
        requests = list(requests)
        start = time.perf_counter()
        keys = [request_cache_key(request, self.key_digits) for request in requests]

        # Resolve hits up front and collect the unique missing keys in
        # first-occurrence order, so a design duplicated within one batch is
        # simulated only once.  ``resolved`` snapshots every needed metrics
        # dict, so assembly survives same-batch LRU evictions (batches larger
        # than ``max_size``).
        resolved: Dict[RequestKey, Dict[str, float]] = {}
        miss_keys: List[RequestKey] = []
        miss_requests: List[EvalRequest] = []
        first_miss: Dict[RequestKey, int] = {}
        with self._cache_lock:
            for index, (key, request) in enumerate(zip(keys, requests)):
                if key in self._cache:
                    if key not in resolved:
                        resolved[key] = self._cache[key]
                    self._cache.move_to_end(key)
                elif key not in first_miss:
                    first_miss[key] = index
                    miss_keys.append(key)
                    miss_requests.append(request)

        if miss_requests:
            inner_results = self.inner.evaluate_requests(miss_requests)
            for key, result in zip(miss_keys, inner_results):
                resolved[key] = dict(result.metrics)
                self._store(key, result.metrics)

        results = []
        hits = 0
        for index, (key, request) in enumerate(zip(keys, requests)):
            cached = first_miss.get(key) != index
            if cached:
                hits += 1
            # Copy metrics so callers can never mutate a cached entry.
            results.append(
                EvalResult(
                    sizing=request.sizing,
                    metrics=dict(resolved[key]),
                    cached=cached,
                )
            )
        with self.stats.lock:
            self.stats.cache_hits += hits
            self.stats.num_batches += 1
            self.stats.num_designs += len(results)
            self.stats.num_simulations += len(miss_requests)
            self.stats.total_time += time.perf_counter() - start
        return results

    def close(self) -> None:
        """Close the wrapped evaluator."""
        self.inner.close()

    def describe(self) -> str:
        """One-line summary used by logs and reports."""
        return (
            f"CachingEvaluator(max_size={self.max_size}, "
            f"inner={self.inner.describe()})"
        )
