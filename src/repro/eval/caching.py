"""LRU-caching evaluator: never simulate the same refined sizing twice.

Optimizers frequently revisit design points — the refinement step snaps
sizings to the technology grid and matching groups, so distinct raw actions
often collapse onto the same physical design.  The cache keys on the
*quantized* refined sizing, which makes it exact: two keys are equal only if
the simulator would receive (up to float formatting) the same netlist, so a
hit can never change results.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.parameters import Sizing
from repro.eval.base import EvalResult, Evaluator

#: Significant digits retained in cache keys.  Refined sizings are already
#: grid-snapped, so 12 digits distinguishes every representable design while
#: absorbing sub-ULP formatting noise.
CACHE_KEY_DIGITS = 12

CacheKey = Tuple[Tuple[str, str, str], ...]


def sizing_cache_key(sizing: Sizing, digits: int = CACHE_KEY_DIGITS) -> CacheKey:
    """Canonical hashable key for a sizing (sorted, quantized)."""
    entries = []
    for component in sorted(sizing):
        params = sizing[component]
        for name in sorted(params):
            entries.append((component, name, f"{float(params[name]):.{digits}g}"))
    return tuple(entries)


class CachingEvaluator(Evaluator):
    """Wraps another evaluator with an LRU result cache.

    Args:
        inner: The evaluator that performs cache-miss simulations (its own
            batching/parallelism is preserved — all misses of a batch are
            forwarded in a single inner batch).
        max_size: Maximum number of cached designs; least-recently-used
            entries are evicted beyond it.
        key_digits: Significant digits used when quantizing key values.
    """

    def __init__(
        self,
        inner: Evaluator,
        max_size: int = 4096,
        key_digits: int = CACHE_KEY_DIGITS,
    ):
        super().__init__(inner.circuit)
        if max_size < 1:
            raise ValueError(f"max_size must be positive, got {max_size}")
        self.inner = inner
        self.max_size = max_size
        self.key_digits = key_digits
        self._cache: "OrderedDict[CacheKey, Dict[str, float]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop every cached result (statistics are kept)."""
        self._cache.clear()

    def peek(self, sizing: Sizing) -> Optional[Dict[str, float]]:
        """Cached metrics for ``sizing`` without touching stats or LRU order.

        Keys exactly like :meth:`evaluate_batch`, so a hit is guaranteed to
        equal what a real evaluation would return; the returned dict is a
        copy, so callers can never mutate the cache.  Wrapped evaluators are
        consulted too (a deeper cache may know the design).
        """
        metrics = self._cache.get(sizing_cache_key(sizing, self.key_digits))
        if metrics is not None:
            return dict(metrics)
        return self.inner.peek(sizing)

    def _store(self, key: CacheKey, metrics: Dict[str, float]) -> None:
        self._cache[key] = dict(metrics)
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_size:
            self._cache.popitem(last=False)
            self.stats.cache_evictions += 1

    def evaluate_batch(self, sizings: Sequence[Sizing]) -> List[EvalResult]:
        """Serve hits from the cache; forward all misses as one inner batch."""
        sizings = list(sizings)
        start = time.perf_counter()
        keys = [sizing_cache_key(sizing, self.key_digits) for sizing in sizings]

        # Resolve hits up front and collect the unique missing keys in
        # first-occurrence order, so a design duplicated within one batch is
        # simulated only once.  ``resolved`` snapshots every needed metrics
        # dict, so assembly survives same-batch LRU evictions (batches larger
        # than ``max_size``).
        resolved: Dict[CacheKey, Dict[str, float]] = {}
        miss_keys: List[CacheKey] = []
        miss_sizings: List[Sizing] = []
        first_miss: Dict[CacheKey, int] = {}
        for index, (key, sizing) in enumerate(zip(keys, sizings)):
            if key in self._cache:
                if key not in resolved:
                    resolved[key] = self._cache[key]
                self._cache.move_to_end(key)
            elif key not in first_miss:
                first_miss[key] = index
                miss_keys.append(key)
                miss_sizings.append(sizing)

        if miss_sizings:
            inner_results = self.inner.evaluate_batch(miss_sizings)
            for key, result in zip(miss_keys, inner_results):
                resolved[key] = dict(result.metrics)
                self._store(key, result.metrics)

        results = []
        for index, (key, sizing) in enumerate(zip(keys, sizings)):
            cached = first_miss.get(key) != index
            if cached:
                self.stats.cache_hits += 1
            # Copy metrics so callers can never mutate a cached entry.
            results.append(
                EvalResult(sizing=sizing, metrics=dict(resolved[key]), cached=cached)
            )
        self.stats.num_batches += 1
        self.stats.num_designs += len(results)
        self.stats.num_simulations += len(miss_sizings)
        self.stats.total_time += time.perf_counter() - start
        return results

    def close(self) -> None:
        """Close the wrapped evaluator."""
        self.inner.close()

    def describe(self) -> str:
        """One-line summary used by logs and reports."""
        return (
            f"CachingEvaluator(max_size={self.max_size}, "
            f"inner={self.inner.describe()})"
        )
