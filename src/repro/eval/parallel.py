"""Worker-pool evaluator: fan a batch of sizings out over processes/threads.

The SPICE engine is pure Python, so real speedups need process workers (the
GIL serialises thread workers); the thread backend is still useful as a
low-overhead smoke test of the fan-out path and for future simulator
backends that release the GIL.

Determinism: each topology bucket of a batch is split into contiguous
chunks, one per worker, and the results are stitched back together in
submission order — ``results[i]`` always corresponds to input ``i``
regardless of worker scheduling.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.base import CircuitDesign
from repro.circuits.parameters import Sizing
from repro.eval.base import EvalResult, Evaluator

#: Per-process circuit cache, seeded by the pool initializer so the (pickled)
#: bound circuit crosses the process boundary once per worker, not once per
#: task; circuits of other requests are resolved from the registry on first
#: use inside each worker.
_WORKER_CIRCUITS: Dict[Tuple[str, str], CircuitDesign] = {}


def _init_worker(circuit: Optional[CircuitDesign]) -> None:
    if circuit is not None:
        key = (circuit.name.lower(), circuit.technology.name)
        _WORKER_CIRCUITS[key] = circuit


def _worker_circuit(name: str, technology: str) -> CircuitDesign:
    key = (name.lower(), technology)
    circuit = _WORKER_CIRCUITS.get(key)
    if circuit is None:
        from repro.circuits.library import get_circuit

        circuit = get_circuit(name, technology)
        _WORKER_CIRCUITS[key] = circuit
    return circuit


def _evaluate_chunk_in_worker(
    circuit_name: str, technology: str, sizings: List[Sizing]
) -> List[Dict[str, float]]:
    """Process-pool task: evaluate one contiguous chunk of a bucket."""
    circuit = _worker_circuit(circuit_name, technology)
    return [circuit.evaluate(sizing) for sizing in sizings]


class ParallelEvaluator(Evaluator):
    """Evaluates batches through a process or thread pool.

    Args:
        circuit: The circuit design to simulate, or ``None`` for an unbound
            evaluator serving mixed :class:`~repro.eval.base.EvalRequest`
            batches (workers resolve circuits from the registry).
        max_workers: Pool size; defaults to the machine's CPU count.
        backend: ``"process"`` (default, true parallelism) or ``"thread"``.

    The pool is created lazily on the first batch and torn down by
    :meth:`close`.  If the process pool cannot be created or breaks (e.g.
    in sandboxes without working semaphores), evaluation degrades to serial
    in-process execution with a warning rather than failing the run.
    """

    def __init__(
        self,
        circuit: Optional[CircuitDesign] = None,
        max_workers: Optional[int] = None,
        backend: str = "process",
    ):
        super().__init__(circuit)
        if backend not in ("process", "thread"):
            raise ValueError(
                f"unknown backend {backend!r}; expected 'process' or 'thread'"
            )
        self.backend = backend
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self._executor: Optional[Executor] = None
        # Mutated only in *_locked helpers whose callers hold the pool lock.
        self._degraded = False  # guarded-by: self._pool_lock
        # Serializes pool construction/teardown: evaluation may run inside
        # coalescer flush threads while close()/degrade happen elsewhere.
        self._pool_lock = threading.Lock()

    # --- pool management ---------------------------------------------------------------
    def _get_executor(self) -> Optional[Executor]:
        with self._pool_lock:
            if self._degraded:
                return None
            if self._executor is None:
                try:
                    if self.backend == "process":
                        self._executor = ProcessPoolExecutor(
                            max_workers=self.max_workers,
                            initializer=_init_worker,
                            initargs=(self._circuit,),
                        )
                    else:
                        self._executor = ThreadPoolExecutor(
                            max_workers=self.max_workers
                        )
                except (OSError, ValueError) as error:
                    warnings.warn(
                        f"could not start {self.backend} pool ({error}); "
                        "falling back to serial evaluation"
                    )
                    self._degrade_locked()
            return self._executor

    @property
    def degraded(self) -> bool:
        """Whether the pool failed and evaluation fell back to serial."""
        return self._degraded

    def _degrade(self) -> None:
        with self._pool_lock:
            self._degrade_locked()

    def _degrade_locked(self) -> None:
        self._degraded = True
        self._shutdown_locked()

    def _shutdown_locked(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut the worker pool down; the evaluator stays usable (lazy restart)."""
        with self._pool_lock:
            self._shutdown_locked()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # --- evaluation --------------------------------------------------------------------
    def _chunks(self, count: int) -> List[slice]:
        """Split ``count`` items into up to ``max_workers`` contiguous slices."""
        num_chunks = min(self.max_workers, count)
        base, extra = divmod(count, num_chunks)
        slices, start = [], 0
        for i in range(num_chunks):
            size = base + (1 if i < extra else 0)
            slices.append(slice(start, start + size))
            start += size
        return slices

    def _evaluate_serial(
        self, circuit: CircuitDesign, sizings: Sequence[Sizing]
    ) -> List[List[Dict[str, float]]]:
        return [[circuit.evaluate(sizing) for sizing in sizings]]

    def _evaluate_bucket(
        self, circuit: CircuitDesign, sizings: Sequence[Sizing]
    ) -> List[EvalResult]:
        """Fan one bucket out over the pool; results keep input order."""
        sizings = list(sizings)
        if len(sizings) < 2 or self.max_workers == 1:
            metric_chunks = self._evaluate_serial(circuit, sizings)
        else:
            executor = self._get_executor()
            if executor is None:
                metric_chunks = self._evaluate_serial(circuit, sizings)
            else:
                chunks = [sizings[s] for s in self._chunks(len(sizings))]
                if self.backend == "thread":
                    futures = [
                        executor.submit(
                            lambda items: [circuit.evaluate(x) for x in items],
                            chunk,
                        )
                        for chunk in chunks
                    ]
                else:
                    futures = [
                        executor.submit(
                            _evaluate_chunk_in_worker,
                            circuit.name,
                            circuit.technology.name,
                            chunk,
                        )
                        for chunk in chunks
                    ]
                try:
                    metric_chunks = [future.result() for future in futures]
                except (BrokenExecutor, OSError) as error:
                    # Pool infrastructure failure only — an exception raised
                    # by circuit.evaluate itself propagates to the caller
                    # (the serial path would raise it too).
                    warnings.warn(
                        f"{self.backend} pool failed ({error}); "
                        "falling back to serial evaluation"
                    )
                    self._degrade()
                    metric_chunks = self._evaluate_serial(circuit, sizings)

        flat = [metrics for chunk in metric_chunks for metrics in chunk]
        return [
            EvalResult(sizing=sizing, metrics=metrics)
            for sizing, metrics in zip(sizings, flat)
        ]

    def describe(self) -> str:
        """One-line summary used by logs and reports."""
        target = self._circuit.name if self._circuit is not None else "mixed"
        return (
            f"ParallelEvaluator({target}, backend={self.backend}, "
            f"max_workers={self.max_workers})"
        )
