"""Declarative experiment campaigns over a :class:`RunStore`.

A :class:`CampaignSpec` describes a grid of runs — methods × circuits ×
technologies × seeds × weight-overrides — exactly the shape of the paper's
Tables I–V.  A :class:`Campaign` binds the spec to a store and executes only
the cells the store does not already hold, so a campaign killed mid-sweep
resumes by simply re-running it: finished cells are skipped, the remaining
ones are computed, and the final records are bit-identical to an
uninterrupted sweep (every run is deterministic given its key).

The orchestrator is intentionally thin: run identity lives in
:class:`~repro.store.base.RunKey`, execution in
:func:`repro.experiments.runner.run_method`, persistence in the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence

from repro.store.base import RunKey, RunStore

if TYPE_CHECKING:  # imported lazily at runtime to avoid a circular import
    from repro.eval import EvaluatorConfig
    from repro.experiments.config import ExperimentSettings
    from repro.experiments.records import RunRecord


@dataclass
class RunRequest:
    """One grid cell of a campaign (the arguments of one ``run_method``)."""

    method: str
    circuit: str
    technology: str
    steps: int
    seed: int
    weight_overrides: Optional[Mapping[str, float]] = None
    apply_spec: bool = True

    def key(
        self,
        settings: Optional["ExperimentSettings"] = None,
        evaluator_config: Optional["EvaluatorConfig"] = None,
    ) -> RunKey:
        """The canonical key ``run_method`` will store this cell under."""
        # Lazy import: repro.experiments.runner imports repro.store.
        from repro.experiments.runner import run_key_for

        return run_key_for(
            self.method,
            self.circuit,
            technology=self.technology,
            steps=self.steps,
            seed=self.seed,
            settings=settings,
            weight_overrides=self.weight_overrides,
            apply_spec=self.apply_spec,
            evaluator_config=evaluator_config,
        )


@dataclass
class CampaignSpec:
    """A declarative grid of runs.

    Attributes:
        methods: Method registry names.  ``"human"`` expands to a single
            seed (the expert design is deterministic), as in ``run_methods``.
        circuits: Circuit registry names.
        technologies: Technology node names.
        seeds: Number of seeds per cell (``range(seeds)``).
        steps: Simulation budget per run.
        weight_overrides: FoM-weighting axis; each entry is one override
            mapping (``None`` = the paper's default weighting).
        apply_spec: Enforce the circuit's hard spec in the FoM.
    """

    methods: Sequence[str]
    circuits: Sequence[str]
    technologies: Sequence[str] = ("180nm",)
    seeds: int = 1
    steps: int = 80
    weight_overrides: Sequence[Optional[Mapping[str, float]]] = (None,)
    apply_spec: bool = True

    def expand(self) -> List[RunRequest]:
        """Every grid cell, in deterministic sweep order."""
        requests = []
        for circuit in self.circuits:
            for technology in self.technologies:
                for overrides in self.weight_overrides:
                    for method in self.methods:
                        run_seeds = 1 if method == "human" else self.seeds
                        for seed in range(run_seeds):
                            requests.append(
                                RunRequest(
                                    method=method,
                                    circuit=circuit,
                                    technology=technology,
                                    steps=self.steps,
                                    seed=seed,
                                    weight_overrides=overrides,
                                    apply_spec=self.apply_spec,
                                )
                            )
        return requests

    @classmethod
    def from_settings(
        cls,
        settings: "ExperimentSettings",
        technologies: Optional[Sequence[str]] = None,
    ) -> "CampaignSpec":
        """The Table I / Figure 5 grid implied by experiment settings."""
        return cls(
            methods=list(settings.methods),
            circuits=list(settings.circuits),
            technologies=list(technologies or [settings.technology]),
            seeds=settings.seeds,
            steps=settings.steps,
        )

    def to_dict(self) -> Dict:
        """JSON-serializable form (the cluster launcher ships specs to
        worker processes as one ``--spec`` argument)."""
        return {
            "methods": list(self.methods),
            "circuits": list(self.circuits),
            "technologies": list(self.technologies),
            "seeds": int(self.seeds),
            "steps": int(self.steps),
            "weight_overrides": [
                dict(overrides) if overrides is not None else None
                for overrides in self.weight_overrides
            ],
            "apply_spec": bool(self.apply_spec),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        return cls(
            methods=list(data["methods"]),
            circuits=list(data["circuits"]),
            technologies=list(data.get("technologies", ("180nm",))),
            seeds=int(data.get("seeds", 1)),
            steps=int(data.get("steps", 80)),
            weight_overrides=[
                dict(overrides) if overrides is not None else None
                for overrides in data.get("weight_overrides", (None,))
            ],
            apply_spec=bool(data.get("apply_spec", True)),
        )


@dataclass
class CampaignReport:
    """Outcome of one :meth:`Campaign.run` sweep.

    Attributes:
        total: Number of cells in the grid.
        executed: Cells actually run to completion this sweep.
        skipped: Cells served from the store without re-execution.
        partial: Cells paused mid-run (their checkpoint is in the store;
            the next sweep resumes them where they stopped).
        quarantined: Cells marked poisoned in the store (terminally failed
            after bounded retries; see ``RunStore.put_quarantine``).  They
            are excluded from ``remaining`` — a drained sweep with
            quarantined cells counts as complete, with the count surfaced.
        interrupted: ``True`` when ``max_runs`` stopped the sweep early.
        records: One record per *completed* visited cell, in sweep order.
    """

    total: int
    executed: int = 0
    skipped: int = 0
    partial: int = 0
    quarantined: int = 0
    interrupted: bool = False
    records: List[RunRecord] = field(default_factory=list)

    @property
    def remaining(self) -> int:
        """Cells the sweep did not finish (0 unless interrupted)."""
        return self.total - self.executed - self.skipped - self.quarantined

    def summary(self) -> str:
        """Stable one-line form (grep target of the CI resume smoke job)."""
        state = "interrupted" if self.interrupted else "complete"
        text = (
            f"sweep {state}: total={self.total} executed={self.executed} "
            f"skipped={self.skipped} remaining={self.remaining}"
        )
        if self.partial:
            text += f" partial={self.partial}"
        if self.quarantined:
            text += f" quarantined={self.quarantined}"
        return text


class Campaign:
    """Executes the missing cells of a grid spec against a run store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: RunStore,
        settings: Optional["ExperimentSettings"] = None,
        evaluator_config: Optional["EvaluatorConfig"] = None,
    ):
        self.spec = spec
        self.store = store
        self.settings = settings
        self.evaluator_config = evaluator_config
        # key_for memo: computing a RunKey reconstructs ExperimentSettings
        # (and, for RL methods, the warm-up schedule) per call — harmless
        # once, hot when cluster workers poll pending()/status() between
        # cells.  Keys are pure functions of the request + the bound
        # settings/evaluator_config, so the cache never invalidates.
        self._key_cache: Dict[tuple, RunKey] = {}

    def key_for(self, request: RunRequest) -> RunKey:
        """The (memoized) canonical store key of one grid cell."""
        overrides = request.weight_overrides
        cache_key = (
            request.method,
            request.circuit,
            request.technology,
            request.steps,
            request.seed,
            tuple(sorted(overrides.items())) if overrides is not None else None,
            request.apply_spec,
        )
        key = self._key_cache.get(cache_key)
        if key is None:
            key = request.key(self.settings, self.evaluator_config)
            self._key_cache[cache_key] = key
        return key

    def requests(self) -> List[RunRequest]:
        """Every cell of the grid, in sweep order."""
        return self.spec.expand()

    def pending(self) -> List[RunRequest]:
        """Cells not yet present in the store and not quarantined.

        Quarantined cells are excluded so a sweep with a poison cell still
        *drains* — workers exit instead of livelocking on a cell that can
        never complete.  ``RunStore.delete_quarantine`` re-queues a cell.
        """
        return [
            request
            for request in self.requests()
            if self.key_for(request) not in self.store
            and self.store.get_quarantine(self.key_for(request)) is None
        ]

    def quarantined(self) -> List[RunRequest]:
        """Cells marked poisoned in the store (no final record, quarantined)."""
        return [
            request
            for request in self.requests()
            if self.key_for(request) not in self.store
            and self.store.get_quarantine(self.key_for(request)) is not None
        ]

    def status(self) -> Dict[str, int]:
        """``{"total", "completed", "pending", "quarantined"}`` counts."""
        total = len(self.requests())
        pending = len(self.pending())
        quarantined = len(self.quarantined())
        return {
            "total": total,
            "completed": total - pending - quarantined,
            "pending": pending,
            "quarantined": quarantined,
        }

    def run(
        self,
        max_runs: Optional[int] = None,
        progress: Optional[Callable[[RunRequest, str], None]] = None,
        checkpoint_every: int = 0,
        max_steps: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> CampaignReport:
        """Sweep the grid, executing only cells missing from the store.

        A killed sweep resumes at two granularities: cells whose final
        record reached the store are skipped outright, and — when
        checkpointing is on — a cell killed *mid-run* resumes from its last
        driver checkpoint instead of re-simulating from step zero.

        Args:
            max_runs: Stop after this many completed *executions* (skips are
                free); used to bound a session or to simulate an interruption.
            progress: Optional ``callback(request, outcome)`` with outcome
                ``"skipped"``, ``"executed"`` or ``"interrupted"``, called
                per visited cell.
            checkpoint_every: Forwarded to every run's driver — persist the
                mid-run state every K ask/tell steps (0 disables).
            max_steps: With ``max_runs``: after the allowed executions, run
                the *next* pending cell for this many ask/tell steps and
                pause it mid-run (checkpointed), simulating a kill inside a
                method rather than between methods.  A single-ask method
                (e.g. ``random``/``human``) can complete within those steps;
                such a cell counts as executed — so with ``max_steps`` set,
                ``executed`` may reach ``max_runs + 1`` and ``partial`` stay
                0 — because a finished run cannot be un-executed.
            workers: Run the sweep distributed: spawn this many local worker
                processes over the campaign's (directory-backed) store via
                :class:`repro.cluster.ClusterLauncher` and build the report
                from the store afterwards.  Requires a jsonl or sqlite
                store; incompatible with ``max_runs``/``max_steps``/
                ``progress`` (per-cell progress prints on each worker's
                stdout instead).
        """
        # Lazy import: repro.experiments.runner imports repro.store.
        from repro.experiments.runner import run_method

        if workers is not None and workers > 1:
            if max_runs is not None or max_steps is not None:
                raise ValueError(
                    "workers is incompatible with max_runs/max_steps (those "
                    "simulate interruptions of the serial sweep)"
                )
            return self._run_cluster(workers, checkpoint_every or 1)
        if max_steps is not None and max_runs is None:
            raise ValueError(
                "max_steps only takes effect together with max_runs (it "
                "bounds the partial run *after* the allowed executions); "
                "pass max_runs or drop max_steps"
            )
        from repro.eval import EvaluatorConfig

        requests = self.requests()
        report = CampaignReport(total=len(requests))
        # One shared evaluator for the whole sweep: every cell's environment
        # gets a no-op-close bound view of it, so caches, worker pools and
        # (vectorized) request batches span circuits instead of being torn
        # down and rebuilt per cell.
        shared_evaluator = (self.evaluator_config or EvaluatorConfig()).build()
        try:
            for request in requests:
                key = self.key_for(request)
                cached = self.store.get(key)
                if cached is not None:
                    report.skipped += 1
                    report.records.append(cached)
                    if progress is not None:
                        progress(request, "skipped")
                    continue
                interrupting = max_runs is not None and report.executed >= max_runs
                record = None
                if not interrupting or max_steps:
                    record = run_method(
                        request.method,
                        request.circuit,
                        technology=request.technology,
                        steps=request.steps,
                        seed=request.seed,
                        settings=self.settings,
                        weight_overrides=request.weight_overrides,
                        apply_spec=request.apply_spec,
                        evaluator_config=self.evaluator_config,
                        evaluator=shared_evaluator,
                        store=self.store,
                        checkpoint_every=checkpoint_every
                        or (1 if interrupting else 0),
                        max_steps=max_steps if interrupting else None,
                    )
                if record is not None:
                    report.executed += 1
                    report.records.append(record)
                    if progress is not None:
                        progress(request, "executed")
                elif interrupting and max_steps:
                    report.partial += 1
                    if progress is not None:
                        progress(request, "interrupted")
                if interrupting:
                    report.interrupted = True
                    break
        finally:
            shared_evaluator.close()
        return report

    def _store_location(self) -> tuple:
        """``(backend, directory)`` of the bound store, for worker spawns."""
        # Lazy imports keep repro.store.campaign free of backend modules.
        from repro.store.jsonl import JsonlStore
        from repro.store.sqlite import SqliteStore

        if isinstance(self.store, JsonlStore):
            return "jsonl", self.store.directory
        if isinstance(self.store, SqliteStore):
            return "sqlite", self.store.directory
        raise ValueError(
            "a distributed sweep needs a directory-backed store (jsonl or "
            f"sqlite) shared between workers; got {type(self.store).__name__}"
        )

    def _run_cluster(self, workers: int, checkpoint_every: int) -> CampaignReport:
        """Execute the sweep with N worker processes over the shared store."""
        from repro.cluster import ClusterLauncher
        from repro.store import open_run_store

        backend, directory = self._store_location()
        skipped_before = len(self.requests()) - len(self.pending())
        launcher = ClusterLauncher(
            self.spec,
            store_dir=directory,
            store_backend=backend,
            workers=workers,
            settings=self.settings,
            evaluator_config=self.evaluator_config,
            checkpoint_every=checkpoint_every,
        )
        cluster = launcher.run()
        # The workers wrote through their own store handles; re-read the
        # directory through a fresh handle and refresh ours so this
        # process's view includes everything the cluster produced.
        self.store.refresh()
        report = CampaignReport(total=len(self.requests()))
        with open_run_store(backend, directory) as verify:
            for request in self.requests():
                record = verify.get(self.key_for(request))
                if record is not None:
                    report.records.append(record)
        done = len(report.records)
        report.skipped = min(skipped_before, done)
        report.executed = done - report.skipped
        report.quarantined = len(self.quarantined())
        if report.remaining > 0:
            report.interrupted = True
            if not cluster.ok():
                raise RuntimeError(
                    f"distributed sweep incomplete: {report.summary()}; "
                    f"worker exit codes {cluster.exit_codes}"
                )
        return report
