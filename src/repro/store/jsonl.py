"""Append-only JSON-lines :class:`RunStore` (one directory per store).

Every ``put`` appends one self-describing JSON line to ``runs.jsonl`` and
flushes, so a killed campaign loses at most the run in flight.  On open the
log is replayed into an in-memory index with latest-wins semantics: a key
written twice (e.g. a re-run with ``use_cache=False``) resolves to its most
recent record.  A truncated final line (the signature of a mid-append kill)
is discarded and trimmed from the log; corruption anywhere else is an error.
The format is greppable and diff-friendly — ideal for small and medium
campaigns, CI artifacts, and manual inspection.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

from repro.store.base import RunKey, RunStore, StoredRun

if TYPE_CHECKING:  # runtime import is lazy: the runner imports repro.store
    from repro.experiments.records import RunRecord

#: File name of the append-only log inside the store directory.
LOG_NAME = "runs.jsonl"

#: Subdirectory holding one mid-run checkpoint blob per in-flight run.
CHECKPOINT_DIR = "checkpoints"

#: Subdirectory holding one JSON file per quarantined cell.
QUARANTINE_DIR = "quarantine"


class JsonlStore(RunStore):
    """Directory-backed append-only store."""

    def __init__(self, directory):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, LOG_NAME)
        # Store handles are deliberately NOT shared across threads: every
        # supervisor job / campaign worker opens its own handle against the
        # shared directory (the append-only log is the coordination point).
        self._rows: Dict[str, Tuple[RunKey, RunRecord]] = {}  # guarded-by: handle-per-thread ownership
        self._replay()
        self._log = open(self.path, "a", encoding="utf-8")
        self._closed = False

    def _replay(self, repair: bool = True) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        entries = []  # (byte offset, line number, text) of non-blank lines
        offset, number = 0, 0
        for raw in data.splitlines(keepends=True):
            number += 1
            text = raw.decode("utf-8", errors="replace").strip()
            if text:
                entries.append((offset, number, text))
            offset += len(raw)
        for index, (start, number, line) in enumerate(entries):
            try:
                row = StoredRun.from_json(line)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                # A process killed mid-append leaves exactly one signature:
                # the *final* line is cut off (unparseable JSON, no trailing
                # newline).  Only then is the partial line trimmed — that
                # run is lost, but everything before it is intact.  Any
                # other failure (mid-log damage, or a complete line whose
                # schema doesn't deserialize) is real corruption and raises.
                truncated_tail = (
                    index == len(entries) - 1
                    and isinstance(error, json.JSONDecodeError)
                    and not data.endswith(b"\n")
                )
                if truncated_tail:
                    # On a live cluster the "torn tail" may simply be
                    # another worker's append in flight; truncating would
                    # destroy *their* record.  Repair only when we opened
                    # the log (single-writer recovery); a mid-sweep
                    # ``refresh`` just skips the incomplete line.
                    if repair:
                        with open(self.path, "r+b") as handle:
                            handle.truncate(start)
                    return
                raise ValueError(
                    f"corrupt run-store log {self.path} at line {number}: {error}"
                ) from error
            # Later lines win: re-puts supersede in log order.
            self._rows[row.key.key_id()] = (row.key, row.record)

    def put(self, key: RunKey, record: RunRecord) -> None:
        if self._closed:
            raise ValueError("store is closed")
        self._log.write(StoredRun(key=key, record=record).to_json() + "\n")
        self._log.flush()
        os.fsync(self._log.fileno())
        self._rows[key.key_id()] = (key, record)

    def get(self, key: RunKey) -> Optional[RunRecord]:
        row = self._rows.get(key.key_id())
        return row[1] if row is not None else None

    def items(self) -> Iterator[StoredRun]:
        for key, record in list(self._rows.values()):
            yield StoredRun(key=key, record=record)

    def __len__(self) -> int:
        return len(self._rows)

    def clear(self) -> None:
        self._rows.clear()
        if not self._closed:
            self._log.close()
        self._log = open(self.path, "w", encoding="utf-8")
        self._closed = False
        self.clear_checkpoints()

    def close(self) -> None:
        if not self._closed:
            self._log.close()
            self._closed = True

    def refresh(self) -> None:
        """Re-read the log so other processes' appends become visible.

        The in-memory index is built once at open; on a shared sweep
        directory, records written by sibling workers after that are
        invisible to this handle until it refreshes.  Replays without the
        torn-tail repair: an unparseable final line here is most likely a
        *concurrent* append mid-write, not a crash artifact.
        """
        self._rows.clear()
        self._replay(repair=False)
    def _checkpoint_path(self, key: RunKey) -> str:
        return os.path.join(self.directory, CHECKPOINT_DIR, key.key_id() + ".ckpt")

    def put_checkpoint(self, key: RunKey, state: bytes) -> None:
        """Atomically replace the checkpoint file (write-temp + rename)."""
        path = self._checkpoint_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(bytes(state))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def get_checkpoint(self, key: RunKey) -> Optional[bytes]:
        path = self._checkpoint_path(key)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as handle:
            return handle.read()

    def delete_checkpoint(self, key: RunKey) -> None:
        try:
            os.remove(self._checkpoint_path(key))
        except FileNotFoundError:
            pass

    def clear_checkpoints(self) -> None:
        folder = os.path.join(self.directory, CHECKPOINT_DIR)
        if not os.path.isdir(folder):
            return
        for name in os.listdir(folder):
            if name.endswith(".ckpt") or name.endswith(".tmp"):
                os.remove(os.path.join(folder, name))

    # --- quarantine (one JSON file per poisoned cell) -----------------------------
    def _quarantine_path(self, key_id: str) -> str:
        return os.path.join(self.directory, QUARANTINE_DIR, key_id + ".json")

    def put_quarantine(self, key: RunKey, info) -> None:
        """Atomically write the quarantine marker (write-temp + rename)."""
        path = self._quarantine_path(key.key_id())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(dict(info), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def get_quarantine(self, key: RunKey):
        path = self._quarantine_path(key.key_id())
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (json.JSONDecodeError, OSError):
            # A torn marker still quarantines (its presence is the signal);
            # the details are just unavailable.
            return {}

    def delete_quarantine(self, key: RunKey) -> None:
        try:
            os.remove(self._quarantine_path(key.key_id()))
        except FileNotFoundError:
            pass

    def quarantine_ids(self):
        folder = os.path.join(self.directory, QUARANTINE_DIR)
        if not os.path.isdir(folder):
            return []
        return [
            name[: -len(".json")]
            for name in sorted(os.listdir(folder))
            if name.endswith(".json")
        ]

    def clear_quarantine(self) -> None:
        folder = os.path.join(self.directory, QUARANTINE_DIR)
        if not os.path.isdir(folder):
            return
        for name in os.listdir(folder):
            if name.endswith(".json") or name.endswith(".tmp"):
                os.remove(os.path.join(folder, name))

    def describe(self) -> str:
        return f"JsonlStore({self.path}, {len(self)} runs)"
