"""SQLite-backed :class:`RunStore` with indexed coordinate queries.

For large campaigns (thousands of cells) the append-only JSONL log's
replay-on-open and full-scan queries become the bottleneck; this backend
keeps one ``runs.sqlite`` database per store directory with a composite
index over (method, circuit, technology, seed), so membership tests and
filtered queries stay O(log n) regardless of campaign size.  Writes are
committed per ``put`` — a killed process loses at most the run in flight.

The store is built for *concurrent* access: the optimization service's run
workers, the CLI's ``ls``/``export`` and external readers may all hold
handles on one database.  Every connection therefore enables WAL journal
mode (readers never block the writer and vice versa) and a generous
``busy_timeout``, so simultaneous commits queue instead of failing with
``database is locked``.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.store.base import RunKey, RunStore, StoredRun

if TYPE_CHECKING:  # runtime import is lazy: the runner imports repro.store
    from repro.experiments.records import RunRecord

#: File name of the database inside the store directory.
DB_NAME = "runs.sqlite"

#: Milliseconds a connection waits on a locked database before erroring.
BUSY_TIMEOUT_MS = 10_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    key_id      TEXT PRIMARY KEY,
    method      TEXT NOT NULL,
    circuit     TEXT NOT NULL,
    technology  TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    steps       INTEGER NOT NULL,
    key_json    TEXT NOT NULL,
    record_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_coords
    ON runs (method, circuit, technology, seed);
CREATE TABLE IF NOT EXISTS checkpoints (
    key_id  TEXT PRIMARY KEY,
    state   BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    key_id     TEXT PRIMARY KEY,
    info_json  TEXT NOT NULL
);
"""

#: Lease table used by ``repro.cluster`` to coordinate distributed sweeps
#: over one database.  Kept as its own script so the lease store (which
#: opens an independent connection) can assert it without the runs schema.
LEASE_SCHEMA = """
CREATE TABLE IF NOT EXISTS leases (
    key_id      TEXT PRIMARY KEY,
    owner       TEXT NOT NULL,
    acquired_at REAL NOT NULL,
    expires_at  REAL NOT NULL,
    pid         INTEGER NOT NULL,
    host        TEXT NOT NULL
);
"""


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on *this* host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # The process exists but belongs to another user.
        return True
    except OSError:
        return False
    return True


class SqliteStore(RunStore):
    """Directory-backed SQLite store (indexed, latest-wins upserts)."""

    def __init__(self, directory):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, DB_NAME)
        self._conn = sqlite3.connect(self.path, timeout=BUSY_TIMEOUT_MS / 1000.0)
        # WAL survives in the database file once set, but PRAGMAs are cheap
        # and re-asserting them makes every handle safe regardless of which
        # process created the file.  synchronous=NORMAL is the recommended
        # WAL pairing: commits lose power-failure durability of the last
        # transactions but never corrupt the database — the same "lose at
        # most the run in flight" contract documented above.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        self._conn.executescript(_SCHEMA)
        self._conn.executescript(LEASE_SCHEMA)
        self._conn.commit()
        self._closed = False
        # A launcher crash (kill -9) leaves its workers' leases on file;
        # expiry would eventually free them, but a fresh local process can
        # prove the owners dead right now and unblock those cells early.
        self.vacuum_leases()

    def put(self, key: RunKey, record: RunRecord) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO runs "
            "(key_id, method, circuit, technology, seed, steps, key_json, record_json) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key.key_id(),
                key.method,
                key.circuit,
                key.technology,
                int(key.seed),
                int(key.steps),
                key.canonical(),
                json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":")),
            ),
        )
        self._conn.commit()

    def get(self, key: RunKey) -> Optional["RunRecord"]:
        from repro.experiments.records import RunRecord

        cursor = self._conn.execute(
            "SELECT record_json FROM runs WHERE key_id = ?", (key.key_id(),)
        )
        row = cursor.fetchone()
        if row is None:
            return None
        return RunRecord.from_dict(json.loads(row[0]))

    def items(self) -> Iterator[StoredRun]:
        from repro.experiments.records import RunRecord

        cursor = self._conn.execute("SELECT key_json, record_json FROM runs")
        for key_json, record_json in cursor.fetchall():
            yield StoredRun(
                key=RunKey.from_dict(json.loads(key_json)),
                record=RunRecord.from_dict(json.loads(record_json)),
            )

    def query(
        self,
        method: Optional[str] = None,
        circuit: Optional[str] = None,
        technology: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> List["RunRecord"]:
        from repro.experiments.records import RunRecord

        clauses, params = [], []
        for column, value in (
            ("method", method),
            ("circuit", circuit),
            ("technology", technology),
            ("seed", seed),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = "SELECT record_json FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        cursor = self._conn.execute(sql, params)
        return [RunRecord.from_dict(json.loads(row[0])) for row in cursor.fetchall()]

    def __len__(self) -> int:
        cursor = self._conn.execute("SELECT COUNT(*) FROM runs")
        return int(cursor.fetchone()[0])

    def clear(self) -> None:
        self._conn.execute("DELETE FROM runs")
        self._conn.execute("DELETE FROM checkpoints")
        self._conn.execute("DELETE FROM quarantine")
        self._conn.commit()

    # --- mid-run checkpoints: a blob row per in-flight run ----------------------
    def put_checkpoint(self, key: RunKey, state: bytes) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO checkpoints (key_id, state) VALUES (?, ?)",
            (key.key_id(), sqlite3.Binary(bytes(state))),
        )
        self._conn.commit()

    def get_checkpoint(self, key: RunKey) -> Optional[bytes]:
        cursor = self._conn.execute(
            "SELECT state FROM checkpoints WHERE key_id = ?", (key.key_id(),)
        )
        row = cursor.fetchone()
        return bytes(row[0]) if row is not None else None

    def delete_checkpoint(self, key: RunKey) -> None:
        self._conn.execute(
            "DELETE FROM checkpoints WHERE key_id = ?", (key.key_id(),)
        )
        self._conn.commit()

    def clear_checkpoints(self) -> None:
        self._conn.execute("DELETE FROM checkpoints")
        self._conn.commit()

    # --- quarantine: a JSON row per poisoned cell ---------------------------------
    def put_quarantine(self, key: RunKey, info) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO quarantine (key_id, info_json) VALUES (?, ?)",
            (
                key.key_id(),
                json.dumps(dict(info), sort_keys=True, separators=(",", ":")),
            ),
        )
        self._conn.commit()

    def get_quarantine(self, key: RunKey):
        cursor = self._conn.execute(
            "SELECT info_json FROM quarantine WHERE key_id = ?", (key.key_id(),)
        )
        row = cursor.fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError:
            return {}

    def delete_quarantine(self, key: RunKey) -> None:
        self._conn.execute(
            "DELETE FROM quarantine WHERE key_id = ?", (key.key_id(),)
        )
        self._conn.commit()

    def quarantine_ids(self):
        cursor = self._conn.execute(
            "SELECT key_id FROM quarantine ORDER BY key_id"
        )
        return [row[0] for row in cursor.fetchall()]

    def clear_quarantine(self) -> None:
        self._conn.execute("DELETE FROM quarantine")
        self._conn.commit()

    def vacuum_leases(self) -> int:
        """Drop leases whose owning pid is provably dead on this host.

        Pids only identify processes on the machine that spawned them, so
        the sweep is restricted to leases stamped with our own hostname;
        remote workers are left to wall-clock expiry.  Returns the number
        of leases cleared.
        """
        host = socket.gethostname()
        rows = self._conn.execute(
            "SELECT key_id, pid FROM leases WHERE host = ?", (host,)
        ).fetchall()
        dead = [key_id for key_id, pid in rows if not pid_alive(int(pid))]
        for key_id in dead:
            self._conn.execute("DELETE FROM leases WHERE key_id = ?", (key_id,))
        if dead:
            self._conn.commit()
        return len(dead)

    def close(self) -> None:
        if not self._closed:
            self._conn.close()
            self._closed = True

    def describe(self) -> str:
        return f"SqliteStore({self.path}, {len(self)} runs)"
