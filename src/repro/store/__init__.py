"""Persistent run store + campaign orchestration.

This package makes experiment results durable across processes and turns
whole table/figure campaigns into resumable sweeps:

* :class:`RunKey` — canonical identity of one run (what the in-process run
  cache used to key on), JSON round-trippable.
* :class:`RunStore` — the storage protocol: latest-wins ``put``/``get`` plus
  a coordinate query API.
* :class:`MemoryStore` / :class:`JsonlStore` / :class:`SqliteStore` — the
  in-process reference, the append-only directory log, and the indexed
  database backends.
* :class:`Campaign` / :class:`CampaignSpec` — declarative grid sweeps that
  skip cells already in the store (kill-and-resume safe).
* :func:`open_run_store` — backend factory shared by the CLI and settings.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.store.base import RunKey, RunStore, StoredRun, make_run_key
from repro.store.campaign import Campaign, CampaignReport, CampaignSpec, RunRequest
from repro.store.jsonl import JsonlStore
from repro.store.memory import MemoryStore
from repro.store.sqlite import SqliteStore

#: Recognised store backends.
STORE_BACKENDS = ("memory", "jsonl", "sqlite")


def open_run_store(
    backend: str = "memory", directory: Optional[str] = None
) -> RunStore:
    """Open (creating if necessary) a run store.

    Args:
        backend: ``"memory"``, ``"jsonl"`` or ``"sqlite"``.
        directory: Store directory; required by the persistent backends.
    """
    if backend not in STORE_BACKENDS:
        raise ValueError(
            f"unknown store backend {backend!r}; expected one of {STORE_BACKENDS}"
        )
    if backend == "memory":
        return MemoryStore()
    if directory is None:
        raise ValueError(f"store backend {backend!r} requires a directory")
    directory = os.path.expanduser(str(directory))
    if backend == "jsonl":
        return JsonlStore(directory)
    return SqliteStore(directory)


__all__ = [
    "RunKey",
    "RunStore",
    "StoredRun",
    "make_run_key",
    "MemoryStore",
    "JsonlStore",
    "SqliteStore",
    "Campaign",
    "CampaignSpec",
    "CampaignReport",
    "RunRequest",
    "open_run_store",
    "STORE_BACKENDS",
]
