"""Canonical run keys and the :class:`RunStore` persistence protocol.

The experiment harness produces one :class:`~repro.experiments.records.RunRecord`
per (method, circuit, technology, seed, budget, FoM weighting, evaluator
stack) cell.  A :class:`RunStore` makes those records durable and queryable
across processes: the runner writes every completed run under its canonical
:class:`RunKey`, the tables/figures harness and the
:class:`~repro.store.campaign.Campaign` orchestrator read them back, and a
half-finished sweep resumes by simply skipping keys already present.

Three backends implement the protocol:

* :class:`~repro.store.memory.MemoryStore` — in-process dict (the reference
  implementation; what the old ``_RUN_CACHE`` used to be).
* :class:`~repro.store.jsonl.JsonlStore` — append-only ``runs.jsonl`` in a
  directory; crash-safe, human-greppable, latest-wins on replay.
* :class:`~repro.store.sqlite.SqliteStore` — indexed SQLite database for
  large campaigns and fast filtered queries.

All backends share one semantic contract, enforced by the conformance tests
in ``tests/test_store.py``: ``put`` is latest-wins on duplicate keys,
``get``/``__contains__`` address by canonical key, and ``query`` filters on
the indexed run coordinates (method/circuit/technology/seed).
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # runtime import is lazy: the runner imports repro.store
    from repro.experiments.records import RunRecord


def _freeze(value):
    """Recursively convert lists to tuples (canonical hashable form)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value):
    """Recursively convert tuples to lists (JSON-serializable form)."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class RunKey:
    """Canonical identity of one optimization run.

    Covers every setting that can change the produced record: the obvious
    coordinates (method, circuit, technology, budget, seed) plus the
    canonicalised FoM weight overrides, the hard-spec toggle, the evaluator
    stack, and a free-form ``extra`` axis for method-specific schedule knobs
    (RL warm-up, transfer budgets).  Two runs with equal keys are guaranteed
    to be bit-identical given the deterministic simulator.

    Attributes:
        method: Method registry name (``"gcn_rl"``, ``"bo"``, ...) or a
            transfer label (``"transfer"``, ``"no_transfer_topology"``, ...).
        circuit: Circuit registry name.
        technology: Technology node name.
        steps: Simulation budget.
        seed: Random seed.
        overrides: Sorted ``(metric, factor)`` FoM weight multipliers.
        apply_spec: Whether the circuit's hard spec was enforced.
        evaluator: The evaluator stack's :meth:`EvaluatorConfig.cache_key`.
        extra: Sorted ``(name, value)`` pairs of additional run-shaping
            settings (e.g. ``("warmup", 26)``).
    """

    method: str
    circuit: str
    technology: str
    steps: int
    seed: int
    overrides: Tuple[Tuple[str, float], ...] = ()
    apply_spec: bool = True
    evaluator: Tuple = ()
    extra: Tuple = ()

    def canonical(self) -> str:
        """Deterministic JSON form (the portable identity of the run)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def key_id(self) -> str:
        """Short stable hex digest of :meth:`canonical` (storage key)."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:32]

    def to_dict(self) -> Dict:
        """JSON-serializable dict form (round-trips via :meth:`from_dict`)."""
        return {
            "method": self.method,
            "circuit": self.circuit,
            "technology": self.technology,
            "steps": int(self.steps),
            "seed": int(self.seed),
            "overrides": _thaw(self.overrides),
            "apply_spec": bool(self.apply_spec),
            "evaluator": _thaw(self.evaluator),
            "extra": _thaw(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunKey":
        """Rebuild a key from its :meth:`to_dict` form."""
        return cls(
            method=data["method"],
            circuit=data["circuit"],
            technology=data["technology"],
            steps=int(data["steps"]),
            seed=int(data["seed"]),
            overrides=_freeze(data.get("overrides", ())),
            apply_spec=bool(data.get("apply_spec", True)),
            evaluator=_freeze(data.get("evaluator", ())),
            extra=_freeze(data.get("extra", ())),
        )


def make_run_key(
    method: str,
    circuit: str,
    technology: str,
    steps: int,
    seed: int,
    weight_overrides: Optional[Mapping[str, float]] = None,
    apply_spec: bool = True,
    evaluator_key: Tuple = (),
    extra: Mapping = (),
) -> RunKey:
    """Build a :class:`RunKey` from runner-style arguments.

    Canonicalises the weight overrides and the ``extra`` mapping by sorting,
    so keys compare (and hash) independently of construction order.
    """
    overrides = tuple(sorted((weight_overrides or {}).items()))
    extra_items = tuple(sorted(dict(extra).items()))
    return RunKey(
        method=method,
        circuit=circuit,
        technology=technology,
        steps=int(steps),
        seed=int(seed),
        overrides=overrides,
        apply_spec=bool(apply_spec),
        evaluator=_freeze(evaluator_key),
        extra=_freeze(extra_items),
    )


@dataclass
class StoredRun:
    """One (key, record) pair: the unit of iteration, export and file I/O.

    :meth:`to_dict`/:meth:`to_json` define the single serialized shape used
    by the JSONL log and the CLI ``export`` command.
    """

    key: RunKey
    record: RunRecord

    def to_dict(self) -> Dict:
        """``{"key": ..., "record": ...}`` (JSON-serializable)."""
        return {"key": self.key.to_dict(), "record": self.record.to_dict()}

    def to_json(self) -> str:
        """One-line JSON form (the JSONL log format)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping) -> "StoredRun":
        from repro.experiments.records import RunRecord

        return cls(
            key=RunKey.from_dict(data["key"]),
            record=RunRecord.from_dict(data["record"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "StoredRun":
        return cls.from_dict(json.loads(text))


class RunStore(abc.ABC):
    """Durable, queryable storage of completed optimization runs.

    The store is a mapping from :class:`RunKey` to
    :class:`~repro.experiments.records.RunRecord` with latest-wins semantics
    on duplicate puts, plus a filtered-scan query API over the run
    coordinates.  Implementations must be usable as context managers and must
    tolerate repeated :meth:`close` calls.
    """

    @abc.abstractmethod
    def put(self, key: RunKey, record: RunRecord) -> None:
        """Store ``record`` under ``key`` (replacing any previous record)."""

    @abc.abstractmethod
    def get(self, key: RunKey) -> Optional[RunRecord]:
        """Return the record stored under ``key``, or ``None``."""

    @abc.abstractmethod
    def items(self) -> Iterator[StoredRun]:
        """Iterate over every stored (key, record) pair."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of distinct keys in the store."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every stored run."""

    def __contains__(self, key: RunKey) -> bool:
        return self.get(key) is not None

    def query(
        self,
        method: Optional[str] = None,
        circuit: Optional[str] = None,
        technology: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> List[RunRecord]:
        """Records matching every given filter (``None`` matches anything).

        Backends with native indexes (SQLite) override this with an indexed
        lookup; the default is a full scan over :meth:`items`.
        """
        matches = []
        for stored in self.items():
            key = stored.key
            if method is not None and key.method != method:
                continue
            if circuit is not None and key.circuit != circuit:
                continue
            if technology is not None and key.technology != technology:
                continue
            if seed is not None and key.seed != seed:
                continue
            matches.append(stored.record)
        return matches

    def keys(self) -> List[RunKey]:
        """Every distinct key currently in the store."""
        return [stored.key for stored in self.items()]

    # --- mid-run checkpoints ------------------------------------------------------
    # A checkpoint is an opaque byte blob (the pickled driver state) stored
    # *next to* the run's final record: the OptimizationDriver writes one
    # every K steps under the run's canonical key, resumes from it after a
    # kill, and the runner deletes it once the completed record is put.
    # The base implementation keeps checkpoints in process memory (enough
    # for MemoryStore and same-process interruption workflows); durable
    # backends override with on-disk storage.

    def _checkpoint_rows(self) -> Dict[str, bytes]:
        rows = getattr(self, "_checkpoints", None)
        if rows is None:
            rows = {}
            self._checkpoints = rows
        return rows

    def put_checkpoint(self, key: RunKey, state: bytes) -> None:
        """Store the mid-run checkpoint blob for ``key`` (latest wins)."""
        self._checkpoint_rows()[key.key_id()] = bytes(state)

    def get_checkpoint(self, key: RunKey) -> Optional[bytes]:
        """Return the checkpoint blob stored for ``key``, or ``None``."""
        return self._checkpoint_rows().get(key.key_id())

    def delete_checkpoint(self, key: RunKey) -> None:
        """Drop the checkpoint for ``key`` (no-op when absent)."""
        self._checkpoint_rows().pop(key.key_id(), None)

    def clear_checkpoints(self) -> None:
        """Drop every stored checkpoint."""
        self._checkpoint_rows().clear()

    # --- quarantine ---------------------------------------------------------------
    # A quarantined cell is one whose execution terminally failed after
    # bounded retries: the worker records the failure here (kind, message,
    # attempts, worker id) so the scheduler stops handing the cell out, the
    # sweep drains instead of livelocking, and ``ls --status`` can show the
    # poison.  Deleting the entry re-queues the cell.  Like checkpoints,
    # the base keeps entries in process memory; durable backends override.

    def _quarantine_rows(self) -> Dict[str, Dict]:
        rows = getattr(self, "_quarantine", None)
        if rows is None:
            rows = {}
            self._quarantine = rows
        return rows

    def put_quarantine(self, key: RunKey, info: Mapping) -> None:
        """Mark ``key`` quarantined with a JSON-serializable ``info`` dict."""
        self._quarantine_rows()[key.key_id()] = dict(info)

    def get_quarantine(self, key: RunKey) -> Optional[Dict]:
        """The quarantine info stored for ``key``, or ``None``."""
        return self._quarantine_rows().get(key.key_id())

    def delete_quarantine(self, key: RunKey) -> None:
        """Lift the quarantine for ``key`` (no-op when absent)."""
        self._quarantine_rows().pop(key.key_id(), None)

    def quarantine_ids(self) -> List[str]:
        """``key_id`` of every quarantined cell."""
        return list(self._quarantine_rows().keys())

    def clear_quarantine(self) -> None:
        """Lift every quarantine."""
        self._quarantine_rows().clear()

    def refresh(self) -> None:
        """Make other handles' writes visible to this one.

        Backends that answer queries from a database (sqlite) or a shared
        dict (memory) are always current and keep this a no-op; backends
        with an in-memory index over a shared file (jsonl) re-read it.
        Cluster workers call this before every scheduling scan.
        """

    def close(self) -> None:
        """Release any resources (file handles, connections); idempotent."""

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        """One-line summary used by logs and the CLI."""
        return f"{type(self).__name__}({len(self)} runs)"
