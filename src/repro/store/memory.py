"""In-process reference :class:`RunStore` (what ``_RUN_CACHE`` used to be)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

from repro.store.base import RunKey, RunStore, StoredRun

if TYPE_CHECKING:  # runtime import is lazy: the runner imports repro.store
    from repro.experiments.records import RunRecord


class MemoryStore(RunStore):
    """Dict-backed store; fast, per-process, lost on exit.

    ``get`` returns the exact object that was ``put`` (no serialization), so
    repeated runs within a process share one record instance — the behaviour
    the old in-process run cache provided.
    """

    def __init__(self):
        self._rows: Dict[str, Tuple[RunKey, RunRecord]] = {}

    def put(self, key: RunKey, record: RunRecord) -> None:
        self._rows[key.key_id()] = (key, record)

    def get(self, key: RunKey) -> Optional[RunRecord]:
        row = self._rows.get(key.key_id())
        return row[1] if row is not None else None

    def items(self) -> Iterator[StoredRun]:
        for key, record in list(self._rows.values()):
            yield StoredRun(key=key, record=record)

    def __len__(self) -> int:
        return len(self._rows)

    def clear(self) -> None:
        self._rows.clear()
        self.clear_checkpoints()
