"""``determinism``: no ambient RNG or wall clock in keyed/solver modules.

Bit-identical reproduction keys every run on explicit seeds: cache keys,
run keys and checkpoints must be pure functions of their inputs, and the
solver stack must be a pure function of (circuit, sizing, seed).  Ambient
entropy breaks that silently — ``np.random.rand()`` depends on hidden
global state, ``time.time()`` smuggles the wall clock into what should be
a replayable computation.

Inside the scoped modules (cache-key / run-key / checkpoint / solver code,
see :data:`SCOPED_PATHS`) this rule forbids calls to:

* ``numpy.random`` *module-level* functions (``np.random.rand``,
  ``np.random.seed``, ...).  Seeded generator factories
  (``np.random.default_rng``, ``np.random.Generator``, bit generators)
  are the sanctioned idiom and stay allowed.
* stdlib ``random`` module functions (``random.random()``, ...); seeded
  ``random.Random(seed)`` instances stay allowed.
* wall clocks: ``time.time`` / ``time.time_ns``, ``datetime.now`` /
  ``utcnow`` / ``today``.  Monotonic telemetry clocks
  (``time.perf_counter`` / ``time.monotonic``) are allowed — they feed
  wall-time accounting, which is excluded from bit-identity diffs.

Legitimate exceptions (telemetry counters, backoff jitter) live outside
the scoped modules or carry a per-line
``# repro-lint: ignore[determinism]`` pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import (
    Checker,
    Finding,
    Project,
    SourceFile,
    register_checker,
)

#: Path fragments selecting the keyed/solver modules the rule applies to.
#: Everything else (service/cluster/resilience coordination layers, CLIs)
#: may use wall clocks for telemetry and jitter freely.
SCOPED_PATHS = (
    "repro/eval/",
    "repro/store/",
    "repro/spice/",
    "repro/nn/",
    "repro/optim/",
    "repro/rl/",
    "repro/circuits/",
    "repro/technology/",
    "repro/env/",
    "repro/experiments/driver",
)

#: ``numpy.random`` attributes that are explicitly fine: seeded construction.
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
        "RandomState",  # legacy but instance-seeded
    }
)

#: stdlib ``random`` attributes that are fine (seeded instances).
ALLOWED_RANDOM = frozenset({"Random", "SystemRandom"})

#: Forbidden wall-clock attributes per module.
WALL_CLOCKS = {
    "time": frozenset({"time", "time_ns"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}


def in_scope(path: str) -> bool:
    return any(fragment in path for fragment in SCOPED_PATHS)


def _attribute_chain(node: ast.expr) -> List[str]:
    """``np.random.rand`` -> ["np", "random", "rand"]; [] if not a chain."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return []


class _ImportMap:
    """Aliases under which the interesting modules are visible in a file."""

    def __init__(self, tree: ast.Module):
        #: module name -> set of local aliases (``numpy`` -> {"np"}).
        self.aliases: Dict[str, Set[str]] = {}
        #: local name -> (module, original) for ``from x import y [as z]``.
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    self.aliases.setdefault(top, set()).add(
                        (alias.asname or alias.name).split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def names_for(self, module: str) -> Set[str]:
        return self.aliases.get(module, set())


@register_checker
class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "no global-state RNG or wall clock inside cache-key, run-key, "
        "checkpoint and solver modules"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project:
            if not in_scope(source.path):
                continue
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterable[Finding]:
        imports = _ImportMap(source.tree)
        numpy_names = imports.names_for("numpy")
        random_names = imports.names_for("random")
        time_names = imports.names_for("time")
        datetime_mods = imports.names_for("datetime")

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            finding = None
            if chain:
                finding = self._classify_chain(
                    chain, numpy_names, random_names, time_names, datetime_mods
                )
            elif isinstance(node.func, ast.Name):
                finding = self._classify_bare(node.func.id, imports)
            if finding is not None:
                yield Finding(
                    rule=self.name,
                    path=source.path,
                    line=node.lineno,
                    message=finding,
                )

    def _classify_chain(
        self,
        chain: List[str],
        numpy_names: Set[str],
        random_names: Set[str],
        time_names: Set[str],
        datetime_mods: Set[str],
    ) -> Optional[str]:
        head, tail = chain[0], chain[-1]
        # np.random.<func>(...) with a module-level function.
        if (
            len(chain) >= 3
            and head in numpy_names
            and chain[1] == "random"
            and tail not in ALLOWED_NP_RANDOM
        ):
            return (
                f"np.random.{tail}() draws from numpy's hidden global RNG; "
                "thread a seeded np.random.Generator through instead"
            )
        # random.<func>(...) on the stdlib module.
        if (
            len(chain) == 2
            and head in random_names
            and tail not in ALLOWED_RANDOM
        ):
            return (
                f"random.{tail}() draws from the process-global RNG; use a "
                "seeded random.Random(seed) instance"
            )
        # time.time() / time.time_ns().
        if len(chain) == 2 and head in time_names and tail in WALL_CLOCKS["time"]:
            return (
                f"time.{tail}() reads the wall clock inside a keyed module; "
                "keyed computation must not depend on when it runs"
            )
        # datetime.datetime.now() / datetime.now() / date.today() ...
        if tail in WALL_CLOCKS["datetime"] and (
            head in datetime_mods or "datetime" in chain[:-1] or head == "datetime"
        ):
            return (
                f"datetime {tail}() reads the wall clock inside a keyed "
                "module; keyed computation must not depend on when it runs"
            )
        return None

    def _classify_bare(
        self, name: str, imports: _ImportMap
    ) -> Optional[str]:
        origin = imports.from_imports.get(name)
        if origin is None:
            return None
        module, original = origin
        if module == "time" and original in WALL_CLOCKS["time"]:
            return (
                f"{name}() (time.{original}) reads the wall clock inside a "
                "keyed module"
            )
        if module == "datetime" and original in ("datetime", "date"):
            return None  # constructor import, not a clock call
        if module == "random" and original not in ALLOWED_RANDOM:
            return (
                f"{name}() (random.{original}) draws from the process-global "
                "RNG; use a seeded random.Random(seed) instance"
            )
        if (
            module in ("numpy.random", "numpy")
            and original not in ALLOWED_NP_RANDOM
            and module == "numpy.random"
        ):
            return (
                f"{name}() (numpy.random.{original}) draws from numpy's "
                "hidden global RNG; thread a seeded Generator through instead"
            )
        return None
