"""``checkpoint-completeness``: ``state_dict()`` must cover mutable state.

The PR 5 resume guarantee — a SIGKILL'd run continues bit-identically from
its last checkpoint — holds only if every piece of state that evolves
during a run round-trips through ``state_dict()``.  A field added to a
strategy but forgotten in its ``state_dict`` doesn't fail any test until a
resume silently diverges.

Heuristic: for every class defining ``state_dict()``, an attribute is
*mutable run state* when it is assigned in ``__init__`` **and** mutated
again outside ``__init__`` (reassigned, augmented, subscript-assigned, or
hit with a container mutator like ``.append()``).  Every such attribute
must be referenced somewhere inside the ``state_dict`` method body (reads
through helpers count via the mention of the helper's attribute).

Escapes, for state that is legitimately rebuilt rather than checkpointed
(caches, derived workspaces, telemetry):

* ``# repro-lint: ignore[checkpoint-completeness]`` on the ``__init__``
  assignment line exempts that attribute;
* the same pragma on the ``def state_dict(...)`` line exempts the whole
  class.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.framework import (
    Checker,
    Finding,
    Project,
    SourceFile,
    register_checker,
)

from repro.analysis.checkers.locks import MUTATOR_METHODS


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.x`` -> "x"; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutation_roots(target: ast.expr) -> Iterable[str]:
    """Attributes a store-target mutates: ``self.x``, ``self.x[k]``."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _mutation_roots(element)
        return
    attr = _self_attr(target)
    if attr is not None:
        yield attr
        return
    if isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None:
            yield attr


class _ClassState:
    def __init__(self, node: ast.ClassDef, source: SourceFile):
        self.node = node
        self.source = source
        #: attr -> line of its (first) __init__ assignment.
        self.init_attrs: Dict[str, int] = {}
        #: attrs mutated outside __init__.
        self.mutated: Set[str] = set()
        self.state_dict_node: Optional[ast.FunctionDef] = None
        #: attrs mentioned anywhere inside state_dict's body.
        self.covered: Set[str] = set()
        self._scan()

    def _scan(self) -> None:
        for statement in self.node.body:
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if statement.name == "__init__":
                self._scan_init(statement)
            elif statement.name == "state_dict":
                self.state_dict_node = statement
                for sub in ast.walk(statement):
                    attr = _self_attr(sub) if isinstance(sub, ast.expr) else None
                    if attr is not None:
                        self.covered.add(attr)
            else:
                self._scan_mutations(statement)

    def _scan_init(self, node: ast.FunctionDef) -> None:
        for sub in ast.walk(node):
            targets: List[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is not None and attr not in self.init_attrs:
                    self.init_attrs[attr] = target.lineno

    def _scan_mutations(self, node: ast.FunctionDef) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    sub.targets
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    self.mutated.update(_mutation_roots(target))
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    self.mutated.update(_mutation_roots(target))
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                ):
                    attr = _self_attr(func.value)
                    if attr is not None:
                        self.mutated.add(attr)


@register_checker
class CheckpointCompletenessChecker(Checker):
    name = "checkpoint-completeness"
    description = (
        "classes defining state_dict() must cover every mutable attribute "
        "assigned in __init__"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(node, source)

    def _check_class(
        self, node: ast.ClassDef, source: SourceFile
    ) -> Iterable[Finding]:
        state = _ClassState(node, source)
        if state.state_dict_node is None:
            return
        # Class-wide escape: pragma on the ``def state_dict`` line.
        if source.ignored(self.name, state.state_dict_node.lineno):
            return
        for attr, line in sorted(state.init_attrs.items()):
            if attr not in state.mutated:
                continue  # config, never reassigned: not run state
            if attr in state.covered:
                continue
            if source.ignored(self.name, line):
                continue  # per-attribute escape on the __init__ assignment
            yield Finding(
                rule=self.name,
                path=source.path,
                line=line,
                message=(
                    f"self.{attr} is mutable run state (assigned in "
                    f"__init__ and mutated later) but {node.name}."
                    "state_dict() never references it; checkpoint it or "
                    "exempt the assignment with "
                    "'# repro-lint: ignore[checkpoint-completeness]'"
                ),
            )
