"""Project-invariant checkers; importing this package registers them all."""

from repro.analysis.checkers import checkpoint  # noqa: F401
from repro.analysis.checkers import determinism  # noqa: F401
from repro.analysis.checkers import locks  # noqa: F401
from repro.analysis.checkers import taxonomy  # noqa: F401
