"""``lock-discipline``: thread-shared attribute mutations must hold a lock.

The invariant (see README "Static analysis"): an instance attribute that is
*mutated* from code reachable from a thread entry point and *also touched*
from the main path is a data race unless every thread-side mutation happens
inside a ``with <lock>:`` block or the attribute carries a
``# guarded-by: <lock>`` annotation documenting why it is safe (event-loop
confinement, a handshake Event, a GIL-atomic flag write).

Thread entry points are collected project-wide:

* ``threading.Thread(target=...)`` targets,
* ``run()`` methods of ``threading.Thread`` subclasses,
* first arguments of ``executor.submit(...)``,
* callbacks handed to ``loop.call_soon_threadsafe(...)`` /
  ``loop.run_in_executor(...)`` / ``asyncio.to_thread(...)`` /
  ``future.add_done_callback(...)``.

Reachability is a name-based over-approximation (no type inference): a
method name passed to a spawner taints every same-named method in the
project, ``self.m()`` calls taint same-named methods (covering subclass
dispatch), and ``self.attr.m()`` calls from thread-reachable code taint
``m`` project-wide — that last hop is what lets the checker follow the
service coalescer's ``asyncio.to_thread(self.evaluator.evaluate_outcomes)``
into the evaluation stack in a different module.  Common container /
synchronisation method names are excluded from tainting to keep the
over-approximation from swallowing the whole codebase.

"Touched from the main path" means: read or written by a non-thread-
reachable method of the same class (``__init__`` excluded — construction
happens-before thread start), or accessed as ``<obj>.attr`` anywhere in the
project (cross-object sharing, e.g. a worker reading ``heartbeat.lost``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import (
    Checker,
    Finding,
    Project,
    SourceFile,
    register_checker,
)

#: Method names whose call on a ``self``-rooted attribute counts as a
#: mutation of that attribute (container state changes).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "add",
        "discard",
        "sort",
        "reverse",
    }
)

#: Names never used for cross-object taint propagation: container reads,
#: synchronisation primitives and future/queue plumbing.  Without this cut
#: a thread-reachable ``self._map.get(...)`` would taint every ``get()``
#: method in the project.
UNTAINTABLE = MUTATOR_METHODS | frozenset(
    {
        "get",
        "keys",
        "values",
        "items",
        "copy",
        "wait",
        "set",
        "join",
        "close",
        "result",
        "cancel",
        "cancelled",
        "done",
        "put",
        "put_nowait",
        "get_nowait",
        "task_done",
        "acquire",
        "release",
        "start",
    }
)

#: Substrings of an expression's final name that make a ``with`` block a
#: lock guard: ``with self._lock:``, ``with self.stats.lock:``,
#: ``with self._mutex:``, ``with self._flock(path):`` all qualify.
LOCKISH = ("lock", "mutex")


def _final_name(node: ast.expr) -> Optional[str]:
    """Rightmost identifier of a Name/Attribute/Call expression."""
    if isinstance(node, ast.Call):
        return _final_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lockish(node: ast.expr) -> bool:
    name = _final_name(node)
    return name is not None and any(part in name.lower() for part in LOCKISH)


def _self_root(node: ast.expr) -> Optional[Tuple[str, int]]:
    """For an attribute chain rooted at ``self``, the first attribute name
    and the chain depth (``self.a`` -> ("a", 1); ``self.a.b`` -> ("a", 2))."""
    chain: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name) and current.id == "self" and chain:
        return chain[-1], len(chain)
    return None


@dataclass
class Mutation:
    attr: str
    line: int
    guarded: bool
    function: str


@dataclass
class FunctionInfo:
    """One analysed function scope (method, nested function or lambda)."""

    module: str
    cls: Optional[str]
    name: str
    self_calls: Set[str] = field(default_factory=set)
    chain_calls: Set[str] = field(default_factory=set)
    local_calls: Set[str] = field(default_factory=set)
    mutations: List[Mutation] = field(default_factory=list)
    self_touches: Set[str] = field(default_factory=set)
    reachable: bool = False


class _ModuleScan:
    """All per-module facts the checker needs, gathered in one AST pass."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.functions: List[FunctionInfo] = []
        #: Names of local functions passed to a spawner in this module.
        self.local_targets: Set[str] = set()
        #: Method names passed to a spawner as ``obj.method``.
        self.method_targets: Set[str] = set()
        #: Classes subclassing threading.Thread (their ``run`` is an entry).
        self.thread_subclasses: Set[str] = set()
        #: attr -> guard text for ``# guarded-by:`` annotated assignments.
        self.annotations: Dict[Tuple[Optional[str], str], str] = {}
        #: Final attribute names accessed on non-``self`` objects.
        self.external_touches: Set[str] = set()
        self._walk_module(source.tree)

    # --- collection -----------------------------------------------------------
    def _register_target(self, node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            self.local_targets.add(node.id)
        elif isinstance(node, ast.Attribute):
            self.method_targets.add(node.attr)

    def _scan_spawner(self, call: ast.Call) -> None:
        func_name = _final_name(call.func)
        if func_name == "Thread":
            for keyword in call.keywords:
                if keyword.arg == "target":
                    self._register_target(keyword.value)
        elif func_name in ("submit", "call_soon_threadsafe", "to_thread",
                           "add_done_callback"):
            if call.args:
                self._register_target(call.args[0])
        elif func_name == "run_in_executor" and len(call.args) >= 2:
            self._register_target(call.args[1])

    def _walk_module(self, tree: ast.Module) -> None:
        for node in tree.body:
            self._walk_statement(node, cls=None)

    def _walk_statement(self, node: ast.stmt, cls: Optional[str]) -> None:
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                if _final_name(base) == "Thread":
                    self.thread_subclasses.add(node.name)
            for statement in node.body:
                if isinstance(statement, (ast.Assign, ast.AnnAssign)):
                    # Class-level attribute with a guarded-by annotation.
                    guard = self.source.guarded_by.get(statement.lineno)
                    if guard:
                        targets = (
                            statement.targets
                            if isinstance(statement, ast.Assign)
                            else [statement.target]
                        )
                        for target in targets:
                            if isinstance(target, ast.Name):
                                self.annotations[(node.name, target.id)] = guard
                self._walk_statement(statement, cls=node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_function(node, cls)
        else:
            # Module-level spawner calls and external touches still count.
            self._collect_expressions(node, info=None, cls=cls)

    def _walk_function(
        self, node: ast.stmt, cls: Optional[str]
    ) -> FunctionInfo:
        info = FunctionInfo(module=self.source.path, cls=cls, name=node.name)
        self.functions.append(info)
        self._visit_body(node.body, info, cls, guard_depth=0)
        return info

    # --- per-function traversal ----------------------------------------------
    def _visit_body(
        self,
        statements: Iterable[ast.stmt],
        info: FunctionInfo,
        cls: Optional[str],
        guard_depth: int,
    ) -> None:
        for statement in statements:
            self._visit_statement(statement, info, cls, guard_depth)

    def _visit_statement(
        self,
        node: ast.stmt,
        info: FunctionInfo,
        cls: Optional[str],
        guard_depth: int,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: a separate unit sharing the enclosing class
            # (it closes over the same ``self``).
            self._walk_function(node, cls)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            locked = any(_is_lockish(item.context_expr) for item in node.items)
            for item in node.items:
                self._collect_expression(item.context_expr, info, guard_depth)
                if item.optional_vars is not None:
                    self._collect_expression(item.optional_vars, info, guard_depth)
            self._visit_body(
                node.body, info, cls, guard_depth + (1 if locked else 0)
            )
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                self._record_mutation_target(target, node.lineno, info, guard_depth)
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_mutation_target(target, node.lineno, info, guard_depth)
        # Generic traversal of child statements/expressions.
        for child_field, value in ast.iter_fields(node):
            if child_field == "body" or child_field == "orelse" or child_field == "finalbody":
                if isinstance(value, list):
                    self._visit_body(
                        [v for v in value if isinstance(v, ast.stmt)],
                        info,
                        cls,
                        guard_depth,
                    )
                    continue
            if child_field == "handlers" and isinstance(value, list):
                for handler in value:
                    self._visit_body(handler.body, info, cls, guard_depth)
                continue
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.stmt):
                        self._visit_statement(item, info, cls, guard_depth)
                    elif isinstance(item, ast.expr):
                        self._collect_expression(item, info, guard_depth)
            elif isinstance(value, ast.expr):
                self._collect_expression(value, info, guard_depth)

    def _record_mutation_target(
        self,
        target: ast.expr,
        line: int,
        info: FunctionInfo,
        guard_depth: int,
    ) -> None:
        base: Optional[ast.expr] = None
        if isinstance(target, ast.Attribute):
            base = target
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute):
                base = target.value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_mutation_target(element, line, info, guard_depth)
            return
        if base is None:
            return
        root = _self_root(base)
        if root is None:
            # Store through a non-self object: record as external touch.
            name = _final_name(base)
            if name:
                self.external_touches.add(name)
            return
        attr, _ = root
        guard = self.source.guarded_by.get(line)
        if guard:
            self.annotations[(info.cls, attr)] = guard
        info.self_touches.add(attr)
        info.mutations.append(
            Mutation(attr=attr, line=line, guarded=guard_depth > 0,
                     function=info.name)
        )

    def _collect_expression(
        self, node: ast.expr, info: Optional[FunctionInfo], guard_depth: int
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._scan_spawner(sub)
                if info is not None:
                    self._classify_call(sub, info, guard_depth)
            elif isinstance(sub, ast.Attribute):
                root = _self_root(sub)
                if root is not None:
                    if info is not None:
                        info.self_touches.add(root[0])
                else:
                    self.external_touches.add(sub.attr)

    def _collect_expressions(
        self, node: ast.stmt, info: Optional[FunctionInfo], cls: Optional[str]
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._scan_spawner(sub)
            elif isinstance(sub, ast.Attribute):
                if _self_root(sub) is None:
                    self.external_touches.add(sub.attr)

    def _classify_call(
        self, call: ast.Call, info: FunctionInfo, guard_depth: int
    ) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            info.local_calls.add(func.id)
            return
        if not isinstance(func, ast.Attribute):
            return
        root = _self_root(func)
        if root is None:
            return
        _, depth = root  # chain: self.<...>.method()
        method = func.attr
        if depth == 1:
            info.self_calls.add(method)
        else:
            info.chain_calls.add(method)
            # A mutator call on a self attribute mutates that attribute.
            if method in MUTATOR_METHODS:
                # The mutated root is the first attribute after self.
                chain: List[str] = []
                current: ast.expr = func
                while isinstance(current, ast.Attribute):
                    chain.append(current.attr)
                    current = current.value
                attr = chain[-1]
                guard = self.source.guarded_by.get(call.lineno)
                if guard:
                    self.annotations[(info.cls, attr)] = guard
                info.self_touches.add(attr)
                info.mutations.append(
                    Mutation(
                        attr=attr,
                        line=call.lineno,
                        guarded=guard_depth > 0,
                        function=info.name,
                    )
                )


@register_checker
class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = (
        "attributes mutated from thread-reachable code and touched from the "
        "main path must be mutated under a lock or carry '# guarded-by:'"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        scans = [_ModuleScan(source) for source in project]

        by_module_name: Dict[Tuple[str, str], List[FunctionInfo]] = {}
        by_method_name: Dict[str, List[FunctionInfo]] = {}
        by_class: Dict[Tuple[str, str], List[FunctionInfo]] = {}
        external: Set[str] = set()
        annotations: Dict[Tuple[str, Optional[str], str], str] = {}
        for scan in scans:
            external |= scan.external_touches
            for (cls, attr), guard in scan.annotations.items():
                annotations[(scan.source.path, cls, attr)] = guard
            for info in scan.functions:
                by_module_name.setdefault((info.module, info.name), []).append(info)
                if info.cls is not None:
                    by_method_name.setdefault(info.name, []).append(info)
                    by_class.setdefault((info.module, info.cls), []).append(info)

        # --- seed the worklist ----------------------------------------------
        worklist: List[FunctionInfo] = []

        def mark(info: FunctionInfo) -> None:
            if not info.reachable and info.name != "__init__":
                info.reachable = True
                worklist.append(info)

        def taint_method(name: str) -> None:
            if name in UNTAINTABLE or name.startswith("__"):
                return
            for info in by_method_name.get(name, []):
                mark(info)

        for scan in scans:
            for name in scan.local_targets:
                for info in by_module_name.get((scan.source.path, name), []):
                    mark(info)
            for name in scan.method_targets:
                taint_method(name)
            for cls in scan.thread_subclasses:
                for info in by_class.get((scan.source.path, cls), []):
                    if info.name == "run":
                        mark(info)

        # --- propagate ------------------------------------------------------
        while worklist:
            info = worklist.pop()
            for name in info.self_calls:
                # Same-object dispatch: name-matched project-wide so that
                # subclass overrides (self._evaluate_bucket) are covered.
                taint_method(name)
            for name in info.chain_calls:
                taint_method(name)
            for name in info.local_calls:
                for other in by_module_name.get((info.module, name), []):
                    if other.cls is None or other.cls == info.cls:
                        mark(other)

        # --- report ---------------------------------------------------------
        for scan in scans:
            module = scan.source.path
            classes: Dict[str, List[FunctionInfo]] = {}
            for info in scan.functions:
                if info.cls is not None:
                    classes.setdefault(info.cls, []).append(info)
            for cls, infos in sorted(classes.items()):
                main_touched: Set[str] = set()
                for info in infos:
                    if not info.reachable and info.name != "__init__":
                        main_touched |= info.self_touches
                for info in infos:
                    if not info.reachable:
                        continue
                    for mutation in info.mutations:
                        if mutation.guarded:
                            continue
                        if (module, cls, mutation.attr) in annotations:
                            continue
                        if annotations.get((module, None, mutation.attr)):
                            continue
                        if (
                            mutation.attr not in main_touched
                            and mutation.attr not in external
                        ):
                            continue
                        yield Finding(
                            rule=self.name,
                            path=module,
                            line=mutation.line,
                            message=(
                                f"self.{mutation.attr} is mutated in "
                                f"thread-reachable {cls}.{mutation.function}() "
                                "without holding a lock, but is also touched "
                                "from the main path; wrap the mutation in "
                                "'with <lock>:' or annotate the attribute "
                                "with '# guarded-by: <lock>'"
                            ),
                        )
