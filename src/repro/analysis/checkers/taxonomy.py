"""``failure-taxonomy``: raises on evaluation paths must carry a kind.

PR 9's resilience layer keys retryability, wire encoding and quarantine
policy off a closed set of failure kinds (``resilience/failures.py``), not
off exception types.  That only works if exceptions crossing the
evaluation stack are classifiable: they either self-classify via a
``failure_kind``/``kind`` attribute, belong to a type
``classify_exception`` maps (``TimeoutError`` -> timeout, ``OSError`` ->
worker_crash), or are re-raises of something already in flight.

Inside the scoped paths (eval / spice / service / resilience) every
``raise`` must therefore be one of:

* a bare ``raise`` (re-raise in an except block),
* ``raise err`` of a bound name (re-raising a caught/stored exception),
* a constructor call of a *classified* exception type — one that defines
  a ``failure_kind`` class attribute, assigns ``self.failure_kind`` or
  ``self.kind`` in ``__init__``, or subclasses such a type (collected
  project-wide, so service-layer subclasses of ``EvaluationError`` count),
* a type ``classify_exception`` already understands (``TimeoutError``,
  ``OSError`` and subclasses named here), or ``NotImplementedError`` /
  ``AssertionError`` (programmer errors, not evaluation failures),
* a construction-time validation raise: ``ValueError`` / ``TypeError`` /
  ``KeyError`` inside ``__init__`` / ``__post_init__`` / a classmethod
  constructor — those fire before any evaluation exists to classify.

Everything else is a finding: either give the exception a kind, or
pragma/baseline it with a justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.framework import (
    Checker,
    Finding,
    Project,
    SourceFile,
    register_checker,
)

#: Path fragments the rule applies to: everything an evaluation flows
#: through between a strategy's ask() and its tell().
SCOPED_PATHS = (
    "repro/eval/",
    "repro/spice/",
    "repro/service/",
    "repro/resilience/",
)

#: Exception types ``classify_exception`` maps by isinstance, plus
#: programmer-error types that are bugs (not evaluation failures) by
#: definition.
ALLOWED_TYPES = frozenset(
    {
        "TimeoutError",
        "OSError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionRefusedError",
        "BrokenPipeError",
        "InterruptedError",
        "NotImplementedError",
        "AssertionError",
        "StopAsyncIteration",
        "StopIteration",
    }
)

#: Validation raises tolerated in constructor-shaped functions.
VALIDATION_TYPES = frozenset({"ValueError", "TypeError", "KeyError"})

#: Function names treated as construction/validation context.
CONSTRUCTOR_FUNCTIONS = frozenset(
    {"__init__", "__post_init__", "__new__", "from_dict", "build_spec"}
)


def in_scope(path: str) -> bool:
    return any(fragment in path for fragment in SCOPED_PATHS)


def _exception_name(node: ast.expr) -> Optional[str]:
    """Class name of ``raise X(...)`` / ``raise X`` (final attr for dotted)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _collect_classified(project: Project) -> Set[str]:
    """Names of exception classes that carry a failure kind, project-wide."""
    classified: Set[str] = set()
    bases: Dict[str, Set[str]] = {}
    for source in project:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases[node.name] = {
                name
                for base in node.bases
                if (name := _exception_name(base)) is not None
            }
            for statement in node.body:
                # Class attribute: failure_kind = "timeout"
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == "failure_kind"
                        ):
                            classified.add(node.name)
                elif isinstance(statement, ast.AnnAssign):
                    if (
                        isinstance(statement.target, ast.Name)
                        and statement.target.id == "failure_kind"
                    ):
                        classified.add(node.name)
                # self.failure_kind / self.kind assigned in __init__.
                elif (
                    isinstance(statement, ast.FunctionDef)
                    and statement.name == "__init__"
                ):
                    for sub in ast.walk(statement):
                        if (
                            isinstance(sub, ast.Assign)
                            and any(
                                isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                                and t.attr in ("failure_kind", "kind")
                                for t in sub.targets
                            )
                        ):
                            classified.add(node.name)
    # Propagate through (name-matched) inheritance to a fixpoint.
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in classified and parents & classified:
                classified.add(name)
                changed = True
    return classified


@register_checker
class FailureTaxonomyChecker(Checker):
    name = "failure-taxonomy"
    description = (
        "raises on eval/spice/service/resilience paths must re-raise or "
        "construct an exception carrying a failure kind"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        classified = _collect_classified(project)
        for source in project:
            if not in_scope(source.path):
                continue
            yield from self._check_file(source, classified)

    def _check_file(
        self, source: SourceFile, classified: Set[str]
    ) -> Iterable[Finding]:
        # Walk with enclosing-function context so validation raises inside
        # constructors can be exempted.
        stack: List[str] = []

        def visit(node: ast.AST) -> Iterable[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.append(node.name)
                for child in ast.iter_child_nodes(node):
                    yield from visit(child)
                stack.pop()
                return
            if isinstance(node, ast.Raise):
                finding = self._classify_raise(node, source, classified, stack)
                if finding is not None:
                    yield finding
            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        yield from visit(source.tree)

    def _classify_raise(
        self,
        node: ast.Raise,
        source: SourceFile,
        classified: Set[str],
        stack: List[str],
    ) -> Optional[Finding]:
        if node.exc is None:
            return None  # bare re-raise
        if isinstance(node.exc, (ast.Name, ast.Subscript, ast.Attribute)):
            # Re-raise of a bound/stored exception (``raise err``,
            # ``raise box["error"]``, ``raise self._error``).
            return None
        name = _exception_name(node.exc)
        if name is None:
            # ``raise factory()`` and similar — cannot resolve; flag it.
            return self._finding(source, node, "<dynamic>")
        if name in classified or name in ALLOWED_TYPES:
            return None
        if name.endswith("Warning"):
            return None
        if name in VALIDATION_TYPES and (
            not stack or stack[-1] in CONSTRUCTOR_FUNCTIONS
        ):
            return None
        return self._finding(source, node, name)

    def _finding(
        self, source: SourceFile, node: ast.Raise, name: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=source.path,
            line=node.lineno,
            message=(
                f"raise {name} on an evaluation path carries no failure "
                "kind; raise a taxonomy exception (failure_kind attribute), "
                "re-raise the caught error, or justify with a pragma"
            ),
        )
